//! Workspace-local stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — on top of a simple
//! wall-clock harness.
//!
//! Measurement model: each benchmark is warmed up, then its iteration count
//! is calibrated so one *sample* takes roughly [`TARGET_SAMPLE`], and
//! `sample_size` samples are collected.  The harness prints min / median /
//! mean per iteration.  `--test` (as passed by `cargo bench -- --test`) runs
//! every benchmark exactly once as a smoke test; positional arguments filter
//! benchmarks by substring, like criterion's CLI.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one measurement sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work (forwards to `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterised benchmark (`BenchmarkId::new("f", n)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkName {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.0
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The harness entry point.
pub struct Criterion {
    filters: Vec<String>,
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filters: Vec::new(),
            test_mode: false,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Builds a harness from the process CLI arguments (`cargo bench` passes
    /// `--bench`; `-- --test` requests smoke-test mode; positional args are
    /// substring filters).
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                a if a.starts_with("--") => {} // --bench, --nocapture, ...
                filter => c.filters.push(filter.to_string()),
            }
        }
        c
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            group_name: name,
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl IntoBenchmarkName,
        f: F,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(&name.into_name(), sample_size, f);
        self
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f.as_str()))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_name: &str, sample_size: usize, mut f: F) {
        if !self.matches_filter(full_name) {
            return;
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{full_name:<55} ok (smoke)");
            return;
        }
        // Calibrate: grow the per-sample iteration count until one sample
        // takes about TARGET_SAMPLE.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16) as u64
            };
            iters = iters.saturating_mul(grow.max(2));
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter.first().copied().unwrap_or(0.0);
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{full_name:<55} min {:>12} median {:>12} mean {:>12}  ({} iters x {} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            iters,
            sample_size
        );
    }

    /// Prints the closing summary line.
    pub fn final_summary(&mut self) {
        println!();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl IntoBenchmarkName,
        f: F,
    ) -> &mut Self {
        let full_name = format!("{}/{}", self.group_name, name.into_name());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full_name, sample_size, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).bench_function("f", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
            g.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn filters_select_by_substring() {
        let mut c = Criterion {
            test_mode: true,
            filters: vec!["match-me".into()],
            ..Criterion::default()
        };
        let mut matched = false;
        let mut skipped = false;
        c.bench_function("group/match-me", |b| b.iter(|| matched = true));
        c.bench_function("group/other", |b| b.iter(|| skipped = true));
        assert!(matched);
        assert!(!skipped);
    }

    #[test]
    fn measurement_mode_reports() {
        let mut c = Criterion {
            default_sample_size: 3,
            ..Criterion::default()
        };
        c.bench_function("tiny", |b| b.iter(|| black_box(1 + 1)));
    }
}
