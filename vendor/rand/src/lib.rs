//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the *small* subset of the `rand` 0.8 API that the AVM workspace actually
//! uses: the [`Rng`] extension trait with `gen()`, [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, statistically solid for tests and key generation, and
//! explicitly **not** a cryptographically secure generator.  The workspace
//! only ever uses seeded RNGs for reproducible experiments, so this matches
//! the existing usage; nothing in the repo relied on `rand`'s OS entropy.

#![forbid(unsafe_code)]

/// A source of random bits.
///
/// Mirrors `rand::RngCore` minus the fallible/byte-slice methods the
/// workspace does not use.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),* $(,)?) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        })*
    };
}

impl_standard_uint! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, u128 => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly in `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range with empty range");
        let span = range.end - range.start;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + v % span;
            }
        }
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng` (only the
/// `seed_from_u64` entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_types_and_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let _: u8 = rng.gen();
        let _: u32 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        for _ in 0..200 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
