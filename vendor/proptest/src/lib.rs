//! Workspace-local stand-in for the `proptest` crate.
//!
//! Supports the subset of proptest used by `tests/property_tests.rs`:
//!
//! * the `proptest! { #![proptest_config(...)] #[test] fn name(x in strat) {...} }` macro form,
//! * `any::<T>()` for integer types,
//! * integer range strategies (`0u8..8`),
//! * `proptest::collection::vec(strategy, size_range)`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * `ProptestConfig::with_cases(n)`.
//!
//! There is **no shrinking**: a failing case panics with the case index and
//! the deterministic seed, which is enough to reproduce (the runner derives
//! per-test seeds from a fixed constant, so failures are stable across runs).

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error type carried by `prop_assert*` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// Derives the deterministic RNG for one named test.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name, folded into a fixed session constant so
    // every test gets a distinct but stable stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ 0x9e37_79b9_7f4a_7c15)
}

/// A value generator.  Unlike real proptest there is no shrinking tree; a
/// strategy simply produces values.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (`Strategy::prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Boxes the strategy for use in heterogeneous unions ([`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union choosing uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.gen();
        }
        out
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: every representable value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                (self.start as u64 + rng.gen_range(0..span)) as $t
            }
        })*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.gen_range(0..span) as i64)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)` — a vector whose length is uniform in the
    /// given half-open range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.gen_range(0..span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>` (`proptest::option::of`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(element)` — `None` a quarter of the time, `Some` otherwise
    /// (matching real proptest's default 75% `Some` weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4u64) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Uniform choice between strategies producing the same value type.
///
/// Unlike real proptest, per-arm weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strategy:expr),+ $(,)? ) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Everything the tests import via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values compare equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r
                );
            }
        }
    };
}

/// Asserts two values compare unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// The `proptest!` block macro: expands each `fn name(arg in strategy) {...}`
/// item into a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item-by-item expansion for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Addition commutes (smoke-tests the macro plumbing).
        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn ranges_and_vecs(x in 0u8..8, v in collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(x < 8);
            prop_assert!(v.len() < 16);
        }
    }

    proptest! {
        #[test]
        fn default_config_form(x in 0u64..100) {
            prop_assert_ne!(x, 100);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        // Expand manually to keep the failing test out of the harness list.
        #[allow(unused)]
        fn inner() {}
        let config = ProptestConfig::with_cases(4);
        let mut rng = crate::rng_for("failing_property");
        for case in 0..config.cases {
            let x = crate::Strategy::generate(&(0u8..4), &mut rng);
            let outcome: Result<(), TestCaseError> = (|| {
                prop_assert!(x > 200, "x was {}", x);
                Ok(())
            })();
            if let Err(e) = outcome {
                panic!("property failed at case {}: {}", case + 1, e);
            }
        }
    }
}
