//! A durable provider surviving a crash and then serving a fleet audit.
//!
//! The paper's accountability story only works if the provider's log
//! outlives the provider's process: an auditor who shows up *after* a
//! power cut must still get the same tamper-evident chain.  This example
//! wires the pieces end to end on real files:
//!
//! 1. a [`Provider`] records a database workload with periodic snapshots,
//!    mirroring every log entry and snapshot manifest to a directory via
//!    `FileStorage`;
//! 2. the process "crashes" — the `Provider` is dropped and only the bytes
//!    on disk survive;
//! 3. [`Provider::recover`] rebuilds the log from the segment files,
//!    re-verifies the recorded state roots by replay, and resumes;
//! 4. a fleet of concurrent auditors spot-checks the *recovered* provider
//!    over the simulated network ([`run_fleet`]), sharing one response
//!    cache on the provider node.
//!
//! ```text
//! cargo run --release -p avm-examples --example persistent_provider
//! ```

use avm_core::config::AvmmOptions;
use avm_core::envelope::{Envelope, EnvelopeKind};
use avm_core::fleet::{run_fleet, FleetConfig};
use avm_core::persist::{PersistConfig, Provider};
use avm_core::recorder::HostClock;
use avm_crypto::keys::{Identity, SignatureScheme};
use avm_db::{db_image, db_registry, server::DbConfig, WorkloadGen};
use avm_store::FileStorage;
use avm_vm::packet::encode_guest_packet;
use avm_wire::Encode;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let registry = db_registry();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(17);
    let operator = Identity::generate(&mut rng, "cloud-host", scheme);
    let customer = Identity::generate(&mut rng, "customer", scheme);

    let cfg = DbConfig::new("customer");
    let image = db_image(&cfg);

    // Everything durable lives directly under this directory: log segment
    // files, seals, snapshot-manifest blobs.
    let root = std::env::temp_dir().join("avm_persistent_provider_example");
    let _ = std::fs::remove_dir_all(&root);
    let storage = FileStorage::open(&root).unwrap();

    // 1. Record: every log entry is flushed to the segment files as it is
    //    appended, every snapshot's manifest into a blob arena.
    let mut provider = Provider::create(
        storage,
        "cloud-host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
        PersistConfig::default(),
    )
    .unwrap();
    provider.add_peer("customer", customer.verifying_key());

    let mut clock = HostClock::at(1_000);
    let mut workload = WorkloadGen::new(33);
    let mut msg_id = 0;
    let mut since_snapshot = 0;
    provider.run_slice(&clock, 50_000).unwrap();
    while let Some(req) = workload.next_request() {
        msg_id += 1;
        clock.advance_to(clock.now() + 3_000);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "customer",
            "cloud-host",
            msg_id,
            encode_guest_packet("cloud-host", &req.encode_to_vec()),
            &customer.signing_key,
            None,
        );
        provider.deliver(&env).unwrap();
        provider.run_slice(&clock, 100_000).unwrap();
        since_snapshot += 1;
        if since_snapshot == 25 {
            provider.take_snapshot().unwrap();
            since_snapshot = 0;
        }
    }
    provider.take_snapshot().unwrap();
    let recorded_entries = provider.avmm().log().len();
    let recorded_snapshots = provider.avmm().snapshots().len();
    println!(
        "recorded: {} log entries, {} snapshots, {} requests -> {} segment files in {}",
        recorded_entries,
        recorded_snapshots,
        workload.issued(),
        provider.segment_files(),
        root.display()
    );

    // 2. Crash.  No shutdown hook runs; the in-memory AVMM, snapshot store
    //    and caches are simply gone.
    drop(provider);

    // 3. Recover from the bytes alone.  The chain is re-verified (hashes,
    //    seal signatures) and the tail replayed from the last durable
    //    snapshot, checking state roots like an auditor would.
    let storage = FileStorage::open(&root).unwrap();
    let (recovered, report) = Provider::recover(
        storage,
        "cloud-host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
        PersistConfig::default(),
    )
    .unwrap();
    println!(
        "recovered: {} entries, {} snapshots rebuilt, tail of {} entries replayed, {} state roots verified",
        report.entries_recovered,
        report.snapshots_recovered,
        report.entries_replayed,
        report.snapshots_verified
    );
    assert_eq!(recovered.avmm().log().len(), recorded_entries);
    assert_eq!(recovered.avmm().snapshots().len(), recorded_snapshots);

    // 4. Serve a fleet audit from the recovered segment image: 12 auditors
    //    spot-check the same chunk concurrently over one simulated network,
    //    so the provider's shared response cache pays the log/manifest
    //    encoding once.
    let fleet = FleetConfig {
        auditors: 12,
        start_snapshot: 1,
        chunk: 1,
        inter_arrival_us: 400,
        ..FleetConfig::default()
    };
    let outcome = run_fleet(
        recovered.segment_log(),
        recovered.avmm().snapshots(),
        &image,
        &registry,
        &fleet,
    );
    assert!(outcome.event_loop.quiescent);
    let mut consistent = 0;
    for report in &outcome.reports {
        let report = report.as_ref().expect("fleet session failed");
        assert!(report.consistent);
        consistent += 1;
    }
    let stats = &outcome.providers[0];
    println!(
        "fleet audit of the recovered provider: {}/{} sessions consistent, \
         {} requests served, cache {} hits / {} misses, slowest session {} µs",
        consistent,
        fleet.auditors,
        stats.requests_served,
        stats.cache.hits,
        stats.cache.misses,
        outcome.latencies_us.iter().max().copied().unwrap_or(0)
    );
    assert!(stats.cache.hits > 0);

    let _ = std::fs::remove_dir_all(&root);
    println!("ok: the crash cost nothing an auditor could notice");
}
