//! Spot-checking a long-running hosted service (the paper's cloud scenario).
//!
//! A database server runs inside an AVM on an operator's machine.  The
//! customer drives an `sql-bench`-style workload against it, the AVMM takes
//! periodic snapshots, and the customer later audits only a chunk of the
//! execution (a `k`-chunk between snapshots) instead of replaying everything
//! — the technique of §3.5 / Figure 9.
//!
//! ```text
//! cargo run --release -p avm-examples --example cloud_spot_check
//! ```

use avm_core::config::AvmmOptions;
use avm_core::envelope::{Envelope, EnvelopeKind};
use avm_core::recorder::{Avmm, HostClock};
use avm_core::spotcheck::spot_check;
use avm_crypto::keys::{Identity, SignatureScheme};
use avm_db::{db_image, db_registry, server::DbConfig, WorkloadGen};
use avm_vm::packet::encode_guest_packet;
use avm_wire::Encode;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let registry = db_registry();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(11);
    let operator = Identity::generate(&mut rng, "cloud-host", scheme);
    let customer = Identity::generate(&mut rng, "customer", scheme);

    let cfg = DbConfig::new("customer");
    let image = db_image(&cfg);
    let mut avmm = Avmm::new(
        "cloud-host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
    )
    .unwrap();
    avmm.add_peer("customer", customer.verifying_key());

    // The customer runs the benchmark; the operator snapshots every 30 requests.
    let mut clock = HostClock::at(1_000);
    let mut workload = WorkloadGen::new(45);
    let mut msg_id = 0;
    let mut since_snapshot = 0;
    avmm.run_slice(&clock, 50_000).unwrap();
    while let Some(req) = workload.next_request() {
        msg_id += 1;
        clock.advance_to(clock.now() + 3_000);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "customer",
            "cloud-host",
            msg_id,
            encode_guest_packet("cloud-host", &req.encode_to_vec()),
            &customer.signing_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 100_000).unwrap();
        since_snapshot += 1;
        if since_snapshot == 30 {
            avmm.take_snapshot();
            since_snapshot = 0;
        }
    }
    avmm.take_snapshot();
    println!(
        "execution recorded: {} log entries, {} snapshots, {} requests served",
        avmm.log().len(),
        avmm.snapshots().len(),
        workload.issued()
    );

    // The customer spot-checks the chunk between snapshot 1 and snapshot 2
    // instead of replaying the whole execution.
    let report = spot_check(avmm.log(), avmm.snapshots(), 1, 1, &image, &registry).unwrap();
    println!(
        "spot check of chunk (start=1, k=1): consistent={}  entries replayed={}  data transferred={} bytes",
        report.consistent,
        report.entries_replayed,
        report.total_transfer_bytes()
    );
    assert!(report.consistent);

    // For comparison: the cost of the full audit.
    let full_entries = avmm.log().len();
    println!(
        "full audit would replay {} entries ({}x the spot check)",
        full_entries,
        full_entries as u64 / report.entries_replayed.max(1)
    );
}
