//! Quickstart: record an accountable execution and audit it.
//!
//! Bob runs a small guest program inside an AVM; Alice exchanges a few
//! messages with it, then audits Bob's log against the reference image.
//!
//! ```text
//! cargo run -p avm-examples --example quickstart
//! ```

use avm_core::audit::audit_log;
use avm_core::config::AvmmOptions;
use avm_core::envelope::{Envelope, EnvelopeKind};
use avm_core::recorder::{Avmm, HostClock};
use avm_crypto::keys::{Identity, SignatureScheme};
use avm_vm::bytecode::assemble;
use avm_vm::packet::encode_guest_packet;
use avm_vm::{GuestRegistry, VmImage};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Everyone agrees on the software: a tiny guest that echoes every
    //    packet it receives back to Alice.
    let source = r"
            movi r1, 0x8000
            movi r2, 512
        loop:
            clock r4
            recv r0, r1, r2
            cmp r0, r6
            jne got
            idle
            jmp loop
        got:
            send r1, r0
            jmp loop
        ";
    let image = VmImage::bytecode(
        "echo-service",
        128 * 1024,
        assemble(source, 0).unwrap(),
        0,
        0,
    );
    let registry = GuestRegistry::new();

    // 2. Identities: Bob operates the machine, Alice uses and audits it.
    let mut rng = StdRng::seed_from_u64(42);
    let bob = Identity::generate(&mut rng, "bob", SignatureScheme::Rsa(768));
    let alice = Identity::generate(&mut rng, "alice", SignatureScheme::Rsa(768));

    // 3. Bob starts an AVMM around the agreed-upon image.
    let mut avmm = Avmm::new(
        "bob",
        &image,
        &registry,
        bob.signing_key.clone(),
        AvmmOptions::default(),
    )
    .expect("start AVMM");
    avmm.add_peer("alice", alice.verifying_key());

    // 4. Alice sends three requests; Bob's AVMM logs, acknowledges, and the
    //    guest echoes them back.
    let mut clock = HostClock::at(1_000);
    avmm.run_slice(&clock, 20_000).expect("run guest");
    for i in 0..3u64 {
        clock.advance_to(clock.now() + 10_000);
        let payload = encode_guest_packet("alice", format!("request-{i}").as_bytes());
        let envelope = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            i + 1,
            payload,
            &alice.signing_key,
            None,
        );
        let ack = avmm.deliver(&envelope).expect("deliver").expect("ack");
        println!("alice -> bob: request-{i}   (ack for msg {})", ack.msg_id);
        for out in avmm.run_slice(&clock, 100_000).expect("run guest") {
            println!(
                "bob -> {}: {} bytes (authenticator seq {:?})",
                out.envelope.to,
                out.envelope.payload.len(),
                out.envelope.authenticator.as_ref().map(|a| a.seq)
            );
        }
    }
    println!(
        "\nBob's log now has {} entries ({} bytes).",
        avmm.log().len(),
        avmm.log_bytes()
    );

    // 5. Alice audits Bob: syntactic check + deterministic replay against the
    //    reference image.
    let (prev, segment) = avmm.log().segment(1, avmm.log().len() as u64).unwrap();
    let report = audit_log(
        "bob",
        &prev,
        &segment,
        &[],
        &bob.verifying_key(),
        &image,
        &registry,
    );
    match report.fault() {
        None => println!(
            "Audit verdict: PASS — Bob's execution is consistent with the reference image."
        ),
        Some(fault) => println!("Audit verdict: FAULT — {fault}"),
    }
    assert!(report.passed());
}
