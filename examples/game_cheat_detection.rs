//! Cheat detection in a multiplayer game (the paper's headline application).
//!
//! Three players and a server play a short session.  One player has the
//! `unlimited-ammo` cheat installed in his image but claims to run the
//! official image.  After the game, every player is audited; the honest
//! players pass and the cheater is exposed with transferable evidence.
//!
//! ```text
//! cargo run --release -p avm-examples --example game_cheat_detection
//! ```

use avm_core::audit::{audit_log, AuditOutcome};
use avm_core::config::{AvmmOptions, ExecConfig};
use avm_core::recorder::Avmm;
use avm_core::runtime::Runtime;
use avm_crypto::keys::{Identity, SignatureScheme};
use avm_game::{cheats, client_image, game_registry, server_image, ClientConfig, ServerConfig};
use avm_net::LinkConfig;
use avm_vm::devices::InputEvent;
use avm_wire::Encode;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let registry = game_registry();
    let players = ["alice", "bob", "charlie"];
    let cheat = cheats::cheat_by_name("unlimited-ammo").unwrap();
    println!("players: {players:?}; bob has '{}' installed\n", cheat.name);

    // Keys for everyone (512-bit keys keep the example fast; the paper uses 768).
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(7);
    let ids: Vec<Identity> = players
        .iter()
        .map(|p| Identity::generate(&mut rng, p, scheme))
        .collect();
    let server_id = Identity::generate(&mut rng, "server", scheme);
    let options = AvmmOptions::for_config(ExecConfig::AvmmRsa768).with_scheme(scheme);

    // The official images everyone agreed on (and the cheater's private variant).
    let official: Vec<_> = players
        .iter()
        .map(|p| client_image(&ClientConfig::new(p, "server")))
        .collect();
    let mut rt = Runtime::new(LinkConfig::default());
    rt.set_steps_per_slice(8_000);
    for (i, p) in players.iter().enumerate() {
        let image = if *p == "bob" {
            client_image(&ClientConfig::new(p, "server").with_cheat(cheat.id))
        } else {
            official[i].clone()
        };
        let mut avmm = Avmm::new(
            p,
            &image,
            &registry,
            ids[i].signing_key.clone(),
            options.clone(),
        )
        .unwrap();
        avmm.add_peer("server", server_id.verifying_key());
        rt.add_host(avmm);
    }
    let server_cfg = ServerConfig::new(
        "server",
        &players.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let server_img = server_image(&server_cfg);
    let mut server = Avmm::new(
        "server",
        &server_img,
        &registry,
        server_id.signing_key.clone(),
        options,
    )
    .unwrap();
    for (i, p) in players.iter().enumerate() {
        server.add_peer(p, ids[i].verifying_key());
    }
    rt.add_host(server);

    // Play for a third of a simulated second; everyone holds the fire button.
    for p in &players {
        let host = rt.host_mut(p).unwrap();
        host.inject_input(InputEvent {
            device: 0,
            code: avm_game::client::INPUT_MOVE_X,
            value: 1,
        });
        host.inject_input(InputEvent {
            device: 0,
            code: avm_game::client::INPUT_FIRE,
            value: 1,
        });
    }
    rt.run_for(300_000, 10_000).expect("game session");

    // After the game: audit every player against the official image.
    println!("| player | audit verdict |");
    println!("|---|---|");
    for (i, p) in players.iter().enumerate() {
        let avmm = rt.host(p).unwrap();
        // A cheater hides the installed cheat by claiming the official image
        // in his log; rebuild the META entry the way a cheater would.
        let mut log = avm_log::TamperEvidentLog::new();
        for e in avmm.log().entries() {
            let content = if e.kind == avm_log::EntryKind::Meta {
                avm_core::events::MetaRecord {
                    image_digest: official[i].digest(),
                    node_name: p.to_string(),
                    scheme_label: scheme.label(),
                }
                .encode_to_vec()
            } else {
                e.content.clone()
            };
            log.append(e.kind, content);
        }
        let (prev, segment) = log.segment(1, log.len() as u64).unwrap();
        let report = audit_log(
            p,
            &prev,
            &segment,
            &[],
            &ids[i].verifying_key(),
            &official[i],
            &registry,
        );
        match &report.outcome {
            AuditOutcome::Pass(summary) => println!(
                "| {p} | pass ({} outputs matched, {} inputs re-injected) |",
                summary.outputs_matched, summary.inputs_reinjected
            ),
            AuditOutcome::Fail(evidence) => {
                println!("| {p} | FAULT: {} |", evidence.fault);
                // The evidence is independently verifiable by any third party.
                let third_party_agrees =
                    evidence.verify(&ids[i].verifying_key(), &official[i], &registry);
                println!("|   | third-party verification of the evidence: {third_party_agrees} |");
            }
        }
        if *p == "bob" {
            assert!(!report.passed(), "the cheater must be caught");
        } else {
            assert!(report.passed(), "honest players must pass");
        }
    }
}
