//! A confidential service that proves *what it booted* before anyone
//! trusts *how it ran* — and keeps that proof across a crash.
//!
//! Attestation and accountability meet in the middle: the attestation
//! envelope binds the guest image measurement and the sealed boot event
//! log to the genesis authenticator of the provider's tamper-evident log,
//! so the auditor who verifies the launch holds the anchor of the very
//! chain they then spot-check.  This example runs the whole arc on real
//! files:
//!
//! 1. a [`Provider`] boots the avm-db guest with durable storage, records
//!    a workload, and serves an attested fleet: every auditor challenges
//!    the launch (nonce → quote → verdict) before auditing;
//! 2. the process crashes — only the bytes on disk survive;
//! 3. [`Provider::recover`] rebuilds log, snapshots *and attestor*; the
//!    recovered envelope is byte-identical to the original, so a second
//!    fleet verifies the same launch and audits the same chain;
//! 4. a provider that booted a tampered image is challenged by the same
//!    fleet and rejected at the door ([`AttestVerdict::ImageMismatch`]),
//!    with zero audit traffic spent on it.
//!
//! ```text
//! cargo run --release -p avm-examples --example attested_service
//! ```

use avm_core::attest::LaunchPolicy;
use avm_core::config::AvmmOptions;
use avm_core::envelope::{Envelope, EnvelopeKind};
use avm_core::fleet::{run_attested_fleet, FleetConfig};
use avm_core::persist::{PersistConfig, Provider};
use avm_core::recorder::HostClock;
use avm_crypto::keys::{Identity, SignatureScheme};
use avm_db::{db_image, db_registry, server::DbConfig, WorkloadGen};
use avm_store::FileStorage;
use avm_vm::VmImage;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let registry = db_registry();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(23);
    let operator = Identity::generate(&mut rng, "enclave-host", scheme);
    let customer = Identity::generate(&mut rng, "customer", scheme);

    let cfg = DbConfig::new("customer");
    let image = db_image(&cfg);

    let root = std::env::temp_dir().join("avm_attested_service_example");
    let _ = std::fs::remove_dir_all(&root);

    // 1. Boot the guest with durable storage and record a workload.  The
    //    attestation envelope is built at launch from the image measurement
    //    and the META log entry, and persisted alongside the log.
    let storage = FileStorage::open(&root).unwrap();
    let mut provider = Provider::create(
        storage,
        "enclave-host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
        PersistConfig::default(),
    )
    .unwrap();
    provider.add_peer("customer", customer.verifying_key());
    let envelope_at_launch = provider.attestation_envelope_bytes().to_vec();

    let mut clock = HostClock::at(1_000);
    let mut workload = WorkloadGen::new(6);
    let mut msg_id = 0;
    provider.run_slice(&clock, 50_000).unwrap();
    while let Some(packet) = workload.next_packet("enclave-host") {
        msg_id += 1;
        clock.advance_to(clock.now() + 3_000);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "customer",
            "enclave-host",
            msg_id,
            packet,
            &customer.signing_key,
            None,
        );
        provider.deliver(&env).unwrap();
        provider.run_slice(&clock, 100_000).unwrap();
        if msg_id % 8 == 0 {
            provider.take_snapshot().unwrap();
        }
    }
    provider.take_snapshot().unwrap();
    let snapshots = provider.avmm().snapshots().len() as u64;
    println!(
        "recorded: {} log entries, {snapshots} snapshots, envelope {} bytes",
        provider.avmm().log().len(),
        envelope_at_launch.len()
    );

    // The auditors' reference: the image they expect, the name and scheme it
    // must run under, and the operator's public key.
    let policy = LaunchPolicy::new(&image, "enclave-host", scheme, operator.verifying_key());
    let fleet = FleetConfig {
        auditors: 8,
        start_snapshot: snapshots - 2,
        chunk: 1,
        inter_arrival_us: 400,
        ..FleetConfig::default()
    };

    let outcome = run_attested_fleet(
        provider.segment_log(),
        provider.avmm().snapshots(),
        &image,
        &registry,
        &fleet,
        provider.attestor(),
        &policy,
    );
    report("live provider", &outcome, true);

    // 2. Crash: drop the provider; only the directory remains.
    drop(provider);

    // 3. Recover and re-attest.  Envelope construction is deterministic
    //    (same image, name, key), so the recovered provider serves *the*
    //    envelope, byte for byte — attestation survives the crash exactly
    //    as the accountability chain does.
    let storage = FileStorage::open(&root).unwrap();
    let (recovered, recovery) = Provider::recover(
        storage,
        "enclave-host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
        PersistConfig::default(),
    )
    .unwrap();
    assert_eq!(
        recovered.attestation_envelope_bytes(),
        &envelope_at_launch[..]
    );
    println!(
        "recovered: {} entries, {} snapshots, envelope byte-identical to launch",
        recovery.entries_recovered, recovery.snapshots_recovered
    );

    let outcome = run_attested_fleet(
        recovered.segment_log(),
        recovered.avmm().snapshots(),
        &image,
        &registry,
        &fleet,
        recovered.attestor(),
        &policy,
    );
    report("recovered provider", &outcome, true);

    // 4. A provider that booted something else entirely: same operator key,
    //    same node name, different image bytes.  Its quotes are honest about
    //    what it measured — which is exactly how it gets caught.
    let rogue_image = tampered(&image);
    let rogue_root = std::env::temp_dir().join("avm_attested_service_rogue");
    let _ = std::fs::remove_dir_all(&rogue_root);
    let rogue = Provider::create(
        FileStorage::open(&rogue_root).unwrap(),
        "enclave-host",
        &rogue_image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
        PersistConfig::default(),
    )
    .unwrap();
    let outcome = run_attested_fleet(
        rogue.segment_log(),
        rogue.avmm().snapshots(),
        &rogue_image,
        &registry,
        &FleetConfig {
            auditors: 4,
            start_snapshot: 0,
            chunk: 1,
            inter_arrival_us: 400,
            ..FleetConfig::default()
        },
        rogue.attestor(),
        &policy,
    );
    report("rogue provider", &outcome, false);

    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&rogue_root);
    println!("ok: verified launches audited, the rogue rejected at the door");
}

/// The booted image with its disk contents swapped — a different workload
/// hiding behind the same name.
fn tampered(image: &VmImage) -> VmImage {
    image.clone().with_disk(vec![0xEEu8; 512])
}

/// Prints one fleet's outcome and asserts the expected shape.
fn report(label: &str, outcome: &avm_core::fleet::FleetOutcome, expect_verified: bool) {
    let verified = outcome
        .attest_verdicts
        .iter()
        .filter(|v| matches!(v, Some(avm_attest::AttestVerdict::Verified)))
        .count();
    let audited = outcome
        .reports
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|r| r.consistent))
        .count();
    println!(
        "{label}: {}/{} launches verified, {audited} consistent audits",
        verified,
        outcome.attest_verdicts.len()
    );
    if expect_verified {
        assert_eq!(verified, outcome.attest_verdicts.len());
        assert_eq!(audited, outcome.reports.len());
    } else {
        assert_eq!(verified, 0);
        assert_eq!(audited, 0, "rejected sessions must carry no audit traffic");
        for verdict in &outcome.attest_verdicts {
            assert_eq!(*verdict, Some(avm_attest::AttestVerdict::ImageMismatch));
        }
    }
}
