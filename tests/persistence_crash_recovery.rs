//! Fault-injected crash-recovery properties for the durable provider.
//!
//! A durable provider runs a random interleaving of deliveries, runs,
//! snapshots and prunes over a [`SimStorage`] armed with a byte-granular
//! crash point.  Whenever the crash kills it, recovery from the rebooted
//! storage must yield a provider whose log is an exact, chain-verified
//! prefix of the reference execution, whose spot-check reports are
//! indistinguishable whether the log is served from memory or from the
//! recovered disk segments, and whose arenas already hold every payload
//! blob the rebuilt snapshot store references (nothing is re-fetched or
//! re-stored).  An unkilled durable provider must be audit-identical to a
//! plain in-memory recorder fed the same inputs.

use avm_core::endpoint::{AuditClient, AuditServer, DirectTransport};
use avm_core::persist::{PersistConfig, Provider};
use avm_core::spotcheck::SpotCheckReport;
use avm_core::{Avmm, AvmmOptions, Envelope, EnvelopeKind, HostClock};
use avm_crypto::keys::{SignatureScheme, SigningKey};
use avm_log::{EntryKind, LogSource, TamperEvidentLog};
use avm_store::{ArenaConfig, SegmentConfig, SegmentLog, SegmentStore, SimStorage, SyncPolicy};
use avm_vm::bytecode::assemble;
use avm_vm::packet::encode_guest_packet;
use avm_vm::{GuestRegistry, VmImage};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RSA-512 key (mirrors avm-core's private test fixture —
/// integration tests cannot reach it).
fn key(seed: u64) -> SigningKey {
    let mut rng = StdRng::seed_from_u64(seed);
    SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
}

/// The worker guest the avm-core test suites record: accumulates received
/// bytes, writes a counter to disk, echoes every packet.
fn worker_image() -> VmImage {
    let src = r"
            movi r1, 0x8000
            movi r2, 512
            movi r5, 0x9000
        loop:
            clock r4
            recv r0, r1, r2
            cmp r0, r6
            jne got
            idle
            jmp loop
        got:
            load r3, r5
            add r3, r0
            store r3, r5
            movi r7, 0
            movi r8, 8
            diskwr r7, r5, r8
            send r1, r0
            jmp loop
        ";
    VmImage::bytecode("worker", 128 * 1024, assemble(src, 0).unwrap(), 0, 0)
        .with_disk(vec![0u8; 8192])
}

fn small_cfg() -> PersistConfig {
    PersistConfig {
        segments: SegmentConfig {
            max_segment_bytes: 2048,
            seal_every_entries: 3,
            sync_policy: SyncPolicy::PerBatch,
            ..SegmentConfig::default()
        },
        arenas: ArenaConfig {
            max_arena_bytes: 8 * 1024,
            ..ArenaConfig::default()
        },
    }
}

fn options() -> AvmmOptions {
    AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512))
}

/// One step of the randomised workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Deliver a packet and run the guest (it echoes).
    Deliver,
    /// Run the guest without input.
    Run,
    /// Take a snapshot.
    Snapshot,
    /// Prune everything below the newest snapshot.
    Prune,
}

fn decode_op(raw: u8) -> Op {
    match raw % 6 {
        0 | 1 => Op::Deliver,
        2 => Op::Run,
        3 | 4 => Op::Snapshot,
        _ => Op::Prune,
    }
}

/// Applies `op` to a durable provider.  `Err` means the injected crash
/// fired; the provider is dead.
fn apply_durable(
    bob: &mut Provider<SimStorage>,
    alice_key: &SigningKey,
    clock: &mut HostClock,
    round: u64,
    op: Op,
) -> Result<(), ()> {
    clock.advance_to(clock.now() + 1_000);
    let fail = |_| ();
    match op {
        Op::Deliver => {
            let payload = encode_guest_packet("alice", format!("work-{round}").as_bytes());
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                round + 1,
                payload,
                alice_key,
                None,
            );
            bob.deliver(&env).map_err(fail)?;
            bob.run_slice(clock, 100_000).map_err(fail)?;
        }
        Op::Run => {
            bob.run_slice(clock, 20_000).map_err(fail)?;
        }
        Op::Snapshot => {
            bob.take_snapshot().map_err(fail)?;
        }
        Op::Prune => {
            let store = bob.avmm().snapshots();
            if store.next_id() > store.base_id() + 1 {
                let target = store.next_id() - 1;
                bob.prune_snapshots_upto(target).map_err(fail)?;
            }
        }
    }
    Ok(())
}

/// Applies `op` to the plain in-memory reference recorder.
fn apply_reference(
    bob: &mut Avmm,
    alice_key: &SigningKey,
    clock: &mut HostClock,
    round: u64,
    op: Op,
) {
    clock.advance_to(clock.now() + 1_000);
    match op {
        Op::Deliver => {
            let payload = encode_guest_packet("alice", format!("work-{round}").as_bytes());
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                round + 1,
                payload,
                alice_key,
                None,
            );
            bob.deliver(&env).unwrap();
            bob.run_slice(clock, 100_000).unwrap();
        }
        Op::Run => {
            bob.run_slice(clock, 20_000).unwrap();
        }
        Op::Snapshot => {
            bob.take_snapshot();
        }
        Op::Prune => {
            let store = bob.snapshots();
            if store.next_id() > store.base_id() + 1 {
                let target = store.next_id() - 1;
                bob.prune_snapshots_upto(target).unwrap();
            }
        }
    }
}

fn spot_check_report(server: AuditServer<'_>, image: &VmImage, start: u64) -> SpotCheckReport {
    let mut client = AuditClient::new(DirectTransport::new(server));
    client
        .spot_check(start, 1_000, image, &GuestRegistry::new())
        .expect("spot check over a recovered provider must run")
}

/// The newest snapshot id whose SNAPSHOT entry is in the log and which the
/// store retains — the strongest spot-check start an auditor can pick.
fn newest_auditable_snapshot(provider: &Provider<SimStorage>) -> Option<u64> {
    use avm_wire::Decode;
    let store = provider.avmm().snapshots();
    provider
        .avmm()
        .log()
        .entries()
        .iter()
        .filter(|e| e.kind == EntryKind::Snapshot)
        .filter_map(|e| avm_core::SnapshotRecord::decode_exact(&e.content).ok())
        .map(|rec| rec.snapshot_id)
        .rfind(|id| store.get(*id).is_some())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random write/snapshot/prune/crash interleavings: the recovered
    /// provider is an honest prefix of the reference execution, its
    /// disk-served audits match its memory-served audits, and its arenas
    /// already hold every blob its snapshot store references.
    #[test]
    fn crashed_provider_recovers_an_audit_identical_prefix(
        raw_ops in proptest::collection::vec(0u8..6, 2..7),
        budget in 400u64..20_000,
    ) {
        let image = worker_image();
        let registry = GuestRegistry::new();
        let alice_key = key(2);
        let ops: Vec<Op> = raw_ops.iter().map(|r| decode_op(*r)).collect();

        // Reference: the same inputs into a plain in-memory recorder.
        let mut reference = Avmm::new("bob", &image, &registry, key(1), options()).unwrap();
        reference.add_peer("alice", alice_key.verifying_key());
        let mut ref_clock = HostClock::at(10);
        reference.run_slice(&ref_clock, 10_000).unwrap();
        for (round, op) in ops.iter().enumerate() {
            apply_reference(&mut reference, &alice_key, &mut ref_clock, round as u64, *op);
        }

        // Durable provider with an armed crash point.
        let storage = SimStorage::new();
        let mut bob = Provider::create(
            storage.clone(), "bob", &image, &registry, key(1), options(), small_cfg(),
        ).unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let mut clock = HostClock::at(10);
        bob.run_slice(&clock, 10_000).unwrap();
        storage.set_crash_point(budget);
        for (round, op) in ops.iter().enumerate() {
            if apply_durable(&mut bob, &alice_key, &mut clock, round as u64, *op).is_err() {
                break;
            }
        }
        let survived = !storage.crashed();
        drop(bob);

        // Recovery must always succeed: crashes tear, they never tamper.
        let (recovered, report) = Provider::recover(
            storage.reboot(), "bob", &image, &registry, key(1), options(), small_cfg(),
        ).expect("crash recovery must never fail on honest storage");

        // The recovered log is an exact prefix of the reference execution.
        let ref_entries = reference.log().entries();
        let n = report.entries_recovered as usize;
        prop_assert!(n >= 1, "the META entry is always durable");
        prop_assert!(n <= ref_entries.len());
        prop_assert_eq!(recovered.avmm().log().entries(), &ref_entries[..n]);
        if survived {
            prop_assert_eq!(n, ref_entries.len());
        }

        // The arenas hold every blob the rebuilt store references: a
        // spot-checking auditor (or the next flush) re-fetches nothing.
        for digest in recovered.avmm().snapshots().pooled_digests() {
            prop_assert!(recovered.blob_persisted(&digest));
        }

        // Disk-served and memory-served audits are indistinguishable, and
        // both are consistent; when nothing was lost (and the prune windows
        // agree) the unkilled reference reports the same verdict, replay
        // work and transfer accounting.
        if let Some(start) = newest_auditable_snapshot(&recovered) {
            let from_disk = spot_check_report(recovered.audit_server(), &image, start);
            let from_memory = spot_check_report(
                AuditServer::new(recovered.avmm().log(), recovered.avmm().snapshots()),
                &image,
                start,
            );
            prop_assert!(from_disk.consistent, "{:?}", from_disk.fault);
            prop_assert_eq!(&from_disk, &from_memory);
            if survived
                && reference.snapshots().base_id() == recovered.avmm().snapshots().base_id()
            {
                let unkilled = spot_check_report(
                    AuditServer::new(reference.log(), reference.snapshots()),
                    &image,
                    start,
                );
                prop_assert_eq!(&from_disk, &unkilled);
            }
        }
    }
}

/// An unkilled durable provider and a plain in-memory recorder given the
/// same inputs produce byte-identical logs and spot-check reports — the
/// persistence layer is invisible to auditors.
#[test]
fn durable_provider_is_audit_identical_to_in_memory_recorder() {
    let image = worker_image();
    let registry = GuestRegistry::new();
    let alice_key = key(2);
    let ops = [
        Op::Deliver,
        Op::Snapshot,
        Op::Deliver,
        Op::Snapshot,
        Op::Prune,
        Op::Deliver,
        Op::Snapshot,
    ];

    let mut reference = Avmm::new("bob", &image, &registry, key(1), options()).unwrap();
    reference.add_peer("alice", alice_key.verifying_key());
    let mut ref_clock = HostClock::at(10);
    reference.run_slice(&ref_clock, 10_000).unwrap();

    let mut bob = Provider::create(
        SimStorage::new(),
        "bob",
        &image,
        &registry,
        key(1),
        options(),
        small_cfg(),
    )
    .unwrap();
    bob.add_peer("alice", alice_key.verifying_key());
    let mut clock = HostClock::at(10);
    bob.run_slice(&clock, 10_000).unwrap();

    for (round, op) in ops.iter().enumerate() {
        apply_reference(
            &mut reference,
            &alice_key,
            &mut ref_clock,
            round as u64,
            *op,
        );
        apply_durable(&mut bob, &alice_key, &mut clock, round as u64, *op).unwrap();
    }

    assert_eq!(bob.avmm().log().entries(), reference.log().entries());
    let start = newest_auditable_snapshot(&bob).expect("snapshots were taken");
    let durable = spot_check_report(bob.audit_server(), &image, start);
    let in_memory = spot_check_report(
        AuditServer::new(reference.log(), reference.snapshots()),
        &image,
        start,
    );
    assert!(durable.consistent, "{:?}", durable.fault);
    assert_eq!(durable, in_memory);
}

/// Regression (the malformed-record-at-a-segment-boundary case): a provider
/// whose own SNAPSHOT record is undecodable serves its honest log *prefix*,
/// and serving that prefix from recovered disk segments — with the
/// malformed record sitting at a segment file boundary — behaves exactly
/// like serving it from memory.
#[test]
fn malformed_snapshot_record_prefix_is_identical_from_disk_segments() {
    let image = worker_image();
    let registry = GuestRegistry::new();
    let signing = key(1);

    // Record a session, then rebuild the log with the second SNAPSHOT
    // record's content replaced by undecodable bytes (correctly chained —
    // the recorder really logged garbage).
    let mut recorder = Avmm::new("bob", &image, &registry, signing.clone(), options()).unwrap();
    recorder.add_peer("alice", key(2).verifying_key());
    let mut clock = HostClock::at(10);
    recorder.run_slice(&clock, 10_000).unwrap();
    for i in 0..3u64 {
        clock.advance_to(clock.now() + 1_000);
        let payload = encode_guest_packet("alice", format!("work-{i}").as_bytes());
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            i + 1,
            payload,
            &key(2),
            None,
        );
        recorder.deliver(&env).unwrap();
        recorder.run_slice(&clock, 100_000).unwrap();
        recorder.take_snapshot();
    }
    let mut rebuilt = TamperEvidentLog::new();
    let mut snapshot_entries_seen = 0;
    for e in recorder.log().entries() {
        let content = if e.kind == EntryKind::Snapshot {
            snapshot_entries_seen += 1;
            if snapshot_entries_seen == 2 {
                vec![0xff, 0x01]
            } else {
                e.content.clone()
            }
        } else {
            e.content.clone()
        };
        rebuilt.append(e.kind, content);
    }

    // Persist the rebuilt log with one-entry segments: every entry — the
    // malformed SNAPSHOT record included — sits at a segment boundary.
    let storage = SimStorage::new();
    let cfg = SegmentConfig {
        max_segment_bytes: 1,
        seal_every_entries: 1,
        sync_policy: SyncPolicy::PerSeal,
        ..SegmentConfig::default()
    };
    let mut segments = SegmentStore::create(storage.clone(), cfg).unwrap();
    let mut prev = avm_crypto::sha256::Digest::ZERO;
    for entry in rebuilt.entries() {
        segments.append_entry(entry).unwrap();
        let auth = avm_log::Authenticator::create(&signing, entry, prev);
        segments.seal(&auth).unwrap();
        prev = entry.hash;
    }
    assert!(segments.segment_files() > rebuilt.len() as u64 / 2);
    drop(segments);

    let (_, scan) =
        SegmentStore::recover(storage.reboot(), cfg, Some(&signing.verifying_key())).unwrap();
    let disk_log = SegmentLog::from_entries(scan.entries);
    assert_eq!(disk_log.entries(), rebuilt.entries());

    let from_memory =
        spot_check_report(AuditServer::new(&rebuilt, recorder.snapshots()), &image, 0);
    let from_disk = spot_check_report(
        AuditServer::with_log_source(&disk_log, recorder.snapshots()),
        &image,
        0,
    );
    assert!(matches!(
        from_memory.fault,
        Some(avm_core::FaultReason::MalformedLog { .. })
    ));
    assert_eq!(from_disk, from_memory);
}
