//! Differential battery pinning the raw-speed crypto floor to its references.
//!
//! Each optimised core introduced by the crypto-floor work has a slower,
//! independently-written counterpart that stays in the tree precisely so these
//! tests can compare them on arbitrary inputs:
//!
//! * multi-buffer SHA-256 (`sha256_multi`) vs. the scalar one-message path,
//! * the 64-bit-limb Montgomery context (`MontgomeryCtx64`) vs. the retained
//!   32-bit `MontgomeryCtx` and the plain div-rem `modpow_slow`,
//! * constant-time fixed-window table selection (`ct_select64`) vs. naive
//!   indexing,
//! * the RSA-CRT fast path vs. its 32-bit reference signer.
//!
//! A mismatch on any lane, limb width, or window index is a soundness bug in
//! the accountability chain — hashes and signatures are what auditors check —
//! so these run on every `cargo test`, plus in release mode in CI where the
//! vectorised code paths actually engage.

use avm_crypto::rsa::RsaKeyPair;
use avm_crypto::sha256::{sha256, sha256_multi, sha256_multi_prefixed};
use avm_crypto::{ct_select64, BigUint, MontgomeryCtx, MontgomeryCtx64};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The SHA-256 padding boundaries: an empty message, 55 bytes (last block
/// with room for the length), 56 bytes (length spills into an extra block),
/// one full block, and one byte past it.
const SHA_BOUNDARY_LENS: [usize; 7] = [0, 1, 55, 56, 63, 64, 65];

#[test]
fn multi_buffer_sha256_matches_scalar_at_padding_boundaries() {
    // Every combination of boundary lengths across 1..=9 lanes, so each
    // group width (8-wide, 4-wide, scalar remainder) sees ragged tails.
    for lanes in 1..=9usize {
        let messages: Vec<Vec<u8>> = (0..lanes)
            .map(|i| {
                let len = SHA_BOUNDARY_LENS[i % SHA_BOUNDARY_LENS.len()];
                (0..len)
                    .map(|b| (b as u8).wrapping_mul(31).wrapping_add(i as u8))
                    .collect()
            })
            .collect();
        let views: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let multi = sha256_multi(&views);
        for (message, digest) in messages.iter().zip(&multi) {
            assert_eq!(
                *digest,
                sha256(message),
                "lane disagreed with scalar SHA-256"
            );
        }
    }
}

#[test]
fn empty_lane_list_is_empty() {
    assert!(sha256_multi(&[]).is_empty());
}

/// Builds an odd modulus of at least two bytes from arbitrary input bytes.
fn odd_modulus(bytes: &[u8]) -> BigUint {
    let mut raw = bytes.to_vec();
    if raw.len() < 2 {
        raw.resize(2, 0x5a);
    }
    raw[0] |= 0x80; // keep the declared width
    let last = raw.len() - 1;
    raw[last] |= 0x01; // Montgomery requires an odd modulus
    BigUint::from_be_bytes(&raw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multi-buffer SHA-256 equals the scalar path for arbitrary lane counts
    /// and arbitrary (independently sized) message bodies.
    #[test]
    fn sha256_multi_matches_scalar(
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            0..12,
        )
    ) {
        let views: Vec<&[u8]> = messages.iter().map(Vec::as_slice).collect();
        let multi = sha256_multi(&views);
        prop_assert_eq!(multi.len(), messages.len());
        for (message, digest) in messages.iter().zip(&multi) {
            prop_assert_eq!(*digest, sha256(message));
        }
    }

    /// The shared-prefix variant equals hashing prefix ‖ body per lane.
    #[test]
    fn sha256_multi_prefixed_matches_concatenation(
        prefix in proptest::collection::vec(any::<u8>(), 0..100),
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..150),
            1..6,
        )
    ) {
        let views: Vec<&[u8]> = bodies.iter().map(Vec::as_slice).collect();
        let multi = sha256_multi_prefixed(&prefix, &views);
        for (body, digest) in bodies.iter().zip(&multi) {
            let mut whole = prefix.clone();
            whole.extend_from_slice(body);
            prop_assert_eq!(*digest, sha256(&whole));
        }
    }

    /// 64-bit Montgomery multiplication and squaring agree with the 32-bit
    /// context and with schoolbook mul + div-rem, over random odd moduli of
    /// odd and even limb counts (the 64-bit context packs 32-bit limb pairs,
    /// so odd counts exercise the half-filled top limb).
    #[test]
    fn montgomery64_mulmod_matches_reference(
        modulus_bytes in proptest::collection::vec(any::<u8>(), 2..48),
        a_bytes in proptest::collection::vec(any::<u8>(), 0..48),
        b_bytes in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let n = odd_modulus(&modulus_bytes);
        let ctx32 = MontgomeryCtx::new(&n).expect("odd modulus");
        let ctx64 = MontgomeryCtx64::new(&n).expect("odd modulus");
        let a = BigUint::from_be_bytes(&a_bytes).rem(&n);
        let b = BigUint::from_be_bytes(&b_bytes).rem(&n);
        prop_assert_eq!(ctx64.mulmod(&a, &b), ctx32.mulmod(&a, &b));
        prop_assert_eq!(ctx64.mulmod(&a, &b), a.mulmod(&b, &n));
        prop_assert_eq!(ctx64.sqrmod(&a), ctx32.sqrmod(&a));
        prop_assert_eq!(ctx64.sqrmod(&a), a.mulmod(&a, &n));
    }

    /// Windowed 64-bit modpow agrees with the 32-bit reference dispatch and
    /// the binary square-and-multiply fallback.
    #[test]
    fn montgomery64_modpow_matches_reference(
        modulus_bytes in proptest::collection::vec(any::<u8>(), 2..32),
        base_bytes in proptest::collection::vec(any::<u8>(), 0..32),
        exp_bytes in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let n = odd_modulus(&modulus_bytes);
        let base = BigUint::from_be_bytes(&base_bytes).rem(&n);
        let exp = BigUint::from_be_bytes(&exp_bytes);
        let fast = base.modpow(&exp, &n);
        prop_assert_eq!(&fast, &base.modpow_ref32(&exp, &n));
        prop_assert_eq!(&fast, &base.modpow_slow(&exp, &n));
    }

    /// Constant-time window selection returns exactly the naively indexed
    /// table entry for every in-range index.
    #[test]
    fn ct_select64_matches_naive_indexing(
        entries in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..8),
            1..33,
        ),
        index in any::<usize>(),
    ) {
        // All rows of a window table share one width; pad to the widest.
        let width = entries.iter().map(Vec::len).max().unwrap();
        let table: Vec<Vec<u64>> = entries
            .into_iter()
            .map(|mut row| { row.resize(width, 0); row })
            .collect();
        let index = index % table.len();
        prop_assert_eq!(ct_select64(&table, index), table[index].clone());
    }
}

/// End-to-end pin: the RSA-CRT signer riding 64-bit Montgomery produces the
/// same signatures as the retained 32-bit reference signer, bit for bit.
#[test]
fn rsa_sign_fast_path_matches_ref32() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_c0de);
    let keys = RsaKeyPair::generate(&mut rng, 512);
    for round in 0u8..4 {
        let digest = sha256(&[round; 17]);
        assert_eq!(
            keys.sign_digest(&digest),
            keys.private.sign_digest_ref32(&digest)
        );
    }
}
