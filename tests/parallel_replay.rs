//! Segment-parallel audit replay equivalence properties: for any recorded
//! workload, chunk choice, worker count and tamper pattern, the parallel
//! spot check must produce a report *field-identical* to the serial one —
//! same verdict, same `FaultReason` attributed to the same entry, same
//! replay progress counters, and same byte/round-trip accounting.  The
//! partition/merge machinery must be observationally invisible.

use avm_core::config::AvmmOptions;
use avm_core::envelope::{Envelope, EnvelopeKind};
use avm_core::events::SendRecord;
use avm_core::recorder::{Avmm, HostClock};
use avm_core::spotcheck::{snapshot_positions, spot_check, spot_check_parallel};
use avm_crypto::keys::{SignatureScheme, SigningKey};
use avm_log::{EntryKind, TamperEvidentLog};
use avm_vm::bytecode::assemble;
use avm_vm::packet::encode_guest_packet;
use avm_vm::{GuestRegistry, VmImage};
use avm_wire::{Decode, Encode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Records a worker AVMM whose state diverges with every packet, taking
/// snapshots where the workload says so (at least one so there is a chunk
/// to check).  Returns the recorder and the number of snapshots taken.
fn record_workload(
    image: &VmImage,
    registry: &GuestRegistry,
    workload: &[(u8, bool)],
) -> (Avmm, u64) {
    let mut rng = StdRng::seed_from_u64(19);
    let operator_key = SigningKey::generate(&mut rng, SignatureScheme::Rsa(512));
    let alice_key = SigningKey::generate(&mut rng, SignatureScheme::Rsa(512));
    let mut avmm = Avmm::new(
        "bob",
        image,
        registry,
        operator_key,
        AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
    )
    .unwrap();
    avmm.add_peer("alice", alice_key.verifying_key());
    let mut clock = HostClock::at(5);
    avmm.run_slice(&clock, 10_000).unwrap();
    let mut snapshots_taken = 0u64;
    for (i, (sel, snap)) in workload.iter().enumerate() {
        clock.advance_to(clock.now() + 500);
        let payload = encode_guest_packet("alice", &[b'w', *sel, i as u8]);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            i as u64 + 1,
            payload,
            &alice_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 100_000).unwrap();
        if *snap {
            avmm.take_snapshot();
            snapshots_taken += 1;
        }
    }
    if snapshots_taken == 0 {
        avmm.take_snapshot();
        snapshots_taken = 1;
    }
    (avmm, snapshots_taken)
}

fn worker_image() -> VmImage {
    let src = r"
            movi r1, 0x8000
            movi r2, 512
            movi r5, 0x9000
        loop:
            clock r4
            recv r0, r1, r2
            cmp r0, r6
            jne got
            idle
            jmp loop
        got:
            load r3, r5
            add r3, r0
            store r3, r5
            movi r7, 0
            movi r8, 8
            diskwr r7, r5, r8
            send r1, r0
            jmp loop
        ";
    VmImage::bytecode("par-prop", 128 * 1024, assemble(src, 0).unwrap(), 0, 0)
        .with_disk(vec![0u8; 8192])
}

/// Rebuilds the log with the SEND record at `seq` rewritten to a forged
/// payload — the §2.2 cheat a spot check exists to catch.  Rebuilding keeps
/// the hash chain syntactically intact, so the fault surfaces as a replay
/// divergence, not a broken chain.
fn tamper_send(log: &TamperEvidentLog, seq: u64) -> TamperEvidentLog {
    let mut rebuilt = TamperEvidentLog::new();
    for e in log.entries() {
        let content = if e.seq == seq {
            let mut rec = SendRecord::decode_exact(&e.content).unwrap();
            rec.payload = encode_guest_packet("alice", b"cheated");
            rec.encode_to_vec()
        } else {
            e.content.clone()
        };
        rebuilt.append(e.kind, content);
    }
    rebuilt
}

proptest! {
    // Every case records a full AVMM session (RSA keygen + signing) and
    // replays the checked chunk nine times (serial + eight worker counts),
    // so the case count is kept small; the workload/chunk/tamper
    // interleavings inside each case are what the property quantifies over.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For every worker count 1..=8 the parallel spot check's report — the
    /// full struct: verdict, `FaultReason`, `entries_replayed` /
    /// `steps_replayed` progress, transfer and transport columns — equals
    /// the serial one, on honest logs and on logs with a forged SEND in the
    /// first or in a later replay segment (lowest-index fault must win
    /// regardless of which unit finishes first).
    #[test]
    fn parallel_spot_check_is_field_identical_to_serial(
        workload in proptest::collection::vec((0u8..6, any::<bool>()), 2..7),
        start_pick in any::<u8>(),
        k in 1u64..4,
        tamper in 0usize..3,
    ) {
        let image = worker_image();
        let registry = GuestRegistry::new();
        let (avmm, snapshots_taken) = record_workload(&image, &registry, &workload);
        let start = start_pick as u64 % snapshots_taken;

        // tamper = 0: honest log.  1: forge the first SEND after the start
        // snapshot (fault in unit 0).  2: forge the last SEND (fault in the
        // last unit that replays it, if any).
        let positions = snapshot_positions(avmm.log()).unwrap();
        let start_pos = positions.iter().find(|(_, id, _)| *id == start).unwrap().0;
        let send_seqs: Vec<u64> = avmm.log().entries()[start_pos + 1..]
            .iter()
            .filter(|e| e.kind == EntryKind::Send)
            .map(|e| e.seq)
            .collect();
        let tampered;
        let log = match (tamper, send_seqs.as_slice()) {
            (1, [first, ..]) => {
                tampered = true;
                tamper_send(avmm.log(), *first)
            }
            (2, [.., last]) => {
                tampered = true;
                tamper_send(avmm.log(), *last)
            }
            _ => {
                tampered = false;
                avmm.log().clone()
            }
        };

        let serial = spot_check(&log, avmm.snapshots(), start, k, &image, &registry).unwrap();
        if !tampered {
            prop_assert!(serial.consistent, "honest chunk must pass");
            prop_assert!(serial.fault.is_none());
        }

        for workers in 1..=8usize {
            let parallel = spot_check_parallel(
                &log,
                avmm.snapshots(),
                start,
                k,
                &image,
                &registry,
                workers,
            )
            .unwrap();
            prop_assert_eq!(&parallel, &serial, "workers={}", workers);
            prop_assert_eq!(parallel.semantic(), serial.semantic());
        }
    }
}
