//! Cross-crate integration tests: end-to-end accountability scenarios that
//! span the VM, the tamper-evident log, the AVMM, the workloads and the
//! audit tool.

use avm_core::audit::audit_log;
use avm_core::config::{AvmmOptions, ExecConfig};
use avm_core::envelope::{Envelope, EnvelopeKind};
use avm_core::multiparty::{AuthenticatorStore, Challenge, ChallengeTracker, EvidencePool};
use avm_core::recorder::{Avmm, HostClock};
use avm_core::spotcheck::spot_check;
use avm_crypto::keys::{Identity, SignatureScheme};
use avm_db::{db_image, db_registry, server::DbConfig, WorkloadGen};
use avm_game::{cheats, client_image, game_registry, ClientConfig};
use avm_log::EntryKind;
use avm_vm::packet::encode_guest_packet;
use avm_wire::Encode;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng() -> StdRng {
    StdRng::seed_from_u64(20101004) // OSDI'10
}

/// Records a short game-client session driven directly (no network runtime):
/// the server side is emulated by the test.
fn record_game_session(cheat: Option<u32>) -> (Avmm, Identity, Identity, avm_vm::VmImage) {
    let registry = game_registry();
    let mut rng = rng();
    let scheme = SignatureScheme::Rsa(512);
    let player_id = Identity::generate(&mut rng, "player", scheme);
    let server_id = Identity::generate(&mut rng, "server", scheme);
    let mut cfg = ClientConfig::new("player", "server");
    if let Some(c) = cheat {
        cfg = cfg.with_cheat(c);
    }
    let image = client_image(&cfg);
    let reference = client_image(&ClientConfig::new("player", "server"));
    let mut avmm = Avmm::new(
        "player",
        &image,
        &registry,
        player_id.signing_key.clone(),
        AvmmOptions::for_config(ExecConfig::AvmmRsa768).with_scheme(scheme),
    )
    .unwrap();
    avmm.add_peer("server", server_id.verifying_key());

    let mut clock = HostClock::at(1_000);
    avmm.inject_input(avm_vm::devices::InputEvent {
        device: 0,
        code: avm_game::client::INPUT_FIRE,
        value: 1,
    });
    for _ in 0..12 {
        clock.advance_to(clock.now() + 40_000);
        avmm.run_slice(&clock, 20_000).unwrap();
    }
    (avmm, player_id, server_id, reference)
}

#[test]
fn honest_game_client_passes_end_to_end_audit() {
    let (avmm, player_id, _, reference) = record_game_session(None);
    assert!(avmm.stats().packets_out > 0, "the client sent no updates");
    let (prev, segment) = avmm.log().segment(1, avmm.log().len() as u64).unwrap();
    let report = audit_log(
        "player",
        &prev,
        &segment,
        &[],
        &player_id.verifying_key(),
        &reference,
        &game_registry(),
    );
    assert!(report.passed(), "{:?}", report.fault());
}

#[test]
fn every_class2_cheat_is_caught_even_with_forged_meta() {
    // The four network-visible cheats of Table 1: caught regardless of how
    // the cheater frames his log.
    for name in [
        "unlimited-ammo",
        "unlimited-health",
        "rapid-fire",
        "teleport",
    ] {
        let cheat = cheats::cheat_by_name(name).unwrap();
        let (avmm, player_id, _, reference) = record_game_session(Some(cheat.id));
        // The cheater claims the official image.
        let mut forged = avm_log::TamperEvidentLog::new();
        for e in avmm.log().entries() {
            let content = if e.kind == EntryKind::Meta {
                avm_core::events::MetaRecord {
                    image_digest: reference.digest(),
                    node_name: "player".into(),
                    scheme_label: "rsa512".into(),
                }
                .encode_to_vec()
            } else {
                e.content.clone()
            };
            forged.append(e.kind, content);
        }
        let (prev, segment) = forged.segment(1, forged.len() as u64).unwrap();
        let report = audit_log(
            "player",
            &prev,
            &segment,
            &[],
            &player_id.verifying_key(),
            &reference,
            &game_registry(),
        );
        assert!(!report.passed(), "cheat '{name}' was not detected");
    }
}

#[test]
fn evidence_against_cheater_convinces_third_party_and_fills_pool() {
    let cheat = cheats::cheat_by_name("speedhack").unwrap();
    let (avmm, player_id, _, reference) = record_game_session(Some(cheat.id));
    let (prev, segment) = avmm.log().segment(1, avmm.log().len() as u64).unwrap();
    let report = audit_log(
        "player",
        &prev,
        &segment,
        &[],
        &player_id.verifying_key(),
        &reference,
        &game_registry(),
    );
    let avm_core::audit::AuditOutcome::Fail(evidence) = report.outcome else {
        panic!("cheater passed the audit");
    };
    // Charlie verifies Alice's evidence independently and blacklists the cheater.
    let mut pool = EvidencePool::new();
    assert!(pool.submit(
        *evidence,
        &player_id.verifying_key(),
        &reference,
        &game_registry()
    ));
    assert!(pool.is_exposed("player"));
}

#[test]
fn multiparty_authenticator_collection_and_challenge_flow() {
    let (avmm, player_id, _, reference) = record_game_session(None);
    // Another user collected authenticators from the player's messages.
    let mut store = AuthenticatorStore::new();
    if let Some(head) = avmm.head_authenticator() {
        store.add("player", head);
    }
    let collected = store.for_machine("player");
    assert!(!collected.is_empty());

    // An audit using the collected authenticators still passes for the
    // honest machine.
    let last_seq = collected.last().unwrap().seq;
    let (prev, segment) = avmm.log().segment(1, avmm.log().len() as u64).unwrap();
    let in_range: Vec<_> = collected
        .into_iter()
        .filter(|a| a.seq <= last_seq)
        .collect();
    let report = audit_log(
        "player",
        &prev,
        &segment,
        &in_range,
        &player_id.verifying_key(),
        &reference,
        &game_registry(),
    );
    assert!(report.passed(), "{:?}", report.fault());

    // If the player stopped responding, a challenge suspends communication
    // until it is answered.
    let mut tracker = ChallengeTracker::new();
    tracker.open_challenge(Challenge {
        target: "player".into(),
        issued_by: "alice".into(),
        from_seq: 1,
        to_seq: last_seq,
    });
    assert!(tracker.is_suspended("player"));
    tracker.resolve("player");
    assert!(!tracker.is_suspended("player"));
}

#[test]
fn database_workload_spot_check_end_to_end() {
    let registry = db_registry();
    let mut rng = rng();
    let scheme = SignatureScheme::Rsa(512);
    let operator = Identity::generate(&mut rng, "host", scheme);
    let customer = Identity::generate(&mut rng, "customer", scheme);
    let cfg = DbConfig::new("customer");
    let image = db_image(&cfg);
    let mut avmm = Avmm::new(
        "host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
    )
    .unwrap();
    avmm.add_peer("customer", customer.verifying_key());

    let mut clock = HostClock::at(500);
    avmm.run_slice(&clock, 20_000).unwrap();
    let mut workload = WorkloadGen::new(12);
    let mut msg = 0u64;
    let mut n = 0u64;
    while let Some(req) = workload.next_request() {
        msg += 1;
        n += 1;
        clock.advance_to(clock.now() + 2_000);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "customer",
            "host",
            msg,
            encode_guest_packet("host", &req.encode_to_vec()),
            &customer.signing_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 50_000).unwrap();
        if n.is_multiple_of(16) {
            avmm.take_snapshot();
        }
    }
    avmm.take_snapshot();
    assert!(avmm.snapshots().len() >= 3);

    // Spot-check a middle chunk; it passes and costs less than a full audit.
    let report = spot_check(avmm.log(), avmm.snapshots(), 1, 1, &image, &registry).unwrap();
    assert!(report.consistent, "{:?}", report.fault);
    assert!(report.entries_replayed < avmm.log().len() as u64);

    // A full audit passes too.
    let (prev, segment) = avmm.log().segment(1, avmm.log().len() as u64).unwrap();
    let full = audit_log(
        "host",
        &prev,
        &segment,
        &[],
        &operator.verifying_key(),
        &image,
        &registry,
    );
    assert!(full.passed(), "{:?}", full.fault());
}

#[test]
fn exec_config_matrix_is_consistent_with_options() {
    for config in ExecConfig::ALL {
        let options = AvmmOptions::for_config(config);
        assert_eq!(options.tamper_evident, config.tamper_evident());
        assert_eq!(options.signature_scheme, config.signature_scheme());
    }
}
