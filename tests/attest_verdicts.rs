//! Property test for accountable attestation: random interleavings of
//! honest and tampered attestation sessions — tampered initial image,
//! boot event log extended after sealing, replayed (stale-nonce) quote,
//! and post-launch execution tampering — must each map to their distinct
//! verdict, under arbitrary challenge identities and times.  Honest
//! sessions verify end-to-end: launch `Verified`, then a consistent spot
//! check over the same recording.

use std::sync::OnceLock;

use avm_attest::{AttestVerdict, AttestationEnvelope, BootEvent, BootEventLog};
use avm_core::attest::{challenge_nonce, Attestor, LaunchPolicy};
use avm_core::config::AvmmOptions;
use avm_core::envelope::{Envelope, EnvelopeKind};
use avm_core::recorder::{Avmm, HostClock};
use avm_core::snapshot::SnapshotStore;
use avm_core::spotcheck::spot_check;
use avm_crypto::keys::{Identity, SignatureScheme};
use avm_crypto::sha256::sha256;
use avm_log::TamperEvidentLog;
use avm_vm::bytecode::assemble;
use avm_vm::packet::encode_guest_packet;
use avm_vm::{GuestRegistry, VmImage};
use avm_wire::attest::AttestChallenge;
use avm_wire::{Decode, Encode, Reader};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SCHEME: SignatureScheme = SignatureScheme::Rsa(512);
const NODE: &str = "bob";
const ROUNDS: u64 = 3;

/// Everything the per-case sessions need, built once: recording an AVMM
/// (RSA keygen + guest execution) is far too slow to repeat per proptest
/// case, and every artifact below is deterministic anyway.
struct Fixture {
    image: VmImage,
    operator: Identity,
    client: Identity,
    /// Honest recording: log + snapshots + the envelope its launch attests.
    honest_log: TamperEvidentLog,
    honest_store: SnapshotStore,
    honest_envelope: Vec<u8>,
    /// A provider that booted a tampered image (envelope bytes it serves).
    image_tamper_envelope: Vec<u8>,
    /// The honest envelope with its sealed boot log extended by one event
    /// (original seal kept — the recomputed register breaks it).
    fork_envelope: Vec<u8>,
    /// Same honest launch, guest memory overwritten mid-run.
    post_log: TamperEvidentLog,
    post_store: SnapshotStore,
    post_envelope: Vec<u8>,
    /// Chunk start for spot checks (the tampered snapshot's predecessor).
    start: u64,
}

fn echo_image() -> VmImage {
    let source = r"
            movi r1, 0x8000
            movi r2, 512
        loop:
            clock r4
            recv r0, r1, r2
            cmp r0, r6
            jne got
            idle
            jmp loop
        got:
            send r1, r0
            jmp loop
        ";
    VmImage::bytecode("echo", 128 * 1024, assemble(source, 0).unwrap(), 0, 0)
}

/// Records `ROUNDS` request/snapshot rounds; when `tamper` is set, guest
/// memory is overwritten right before the last snapshot is captured.
fn record(image: &VmImage, operator: &Identity, client: &Identity, tamper: bool) -> Avmm {
    let registry = GuestRegistry::new();
    let mut avmm = Avmm::new(
        NODE,
        image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(SCHEME),
    )
    .unwrap();
    avmm.add_peer("alice", client.verifying_key());
    let mut clock = HostClock::at(1_000);
    avmm.run_slice(&clock, 20_000).unwrap();
    for i in 0..ROUNDS {
        clock.advance_to(clock.now() + 2_000);
        let payload = encode_guest_packet("alice", &[i as u8, 7]);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            NODE,
            i + 1,
            payload,
            &client.signing_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 20_000).unwrap();
        if tamper && i == ROUNDS - 1 {
            let addr = avmm.machine_mut().memory().size() - 64;
            avmm.machine_mut()
                .memory_mut()
                .write_u8(addr, 0xAA)
                .unwrap();
        }
        avmm.take_snapshot();
    }
    avmm
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let image = echo_image();
        let mut rng = StdRng::seed_from_u64(97);
        let operator = Identity::generate(&mut rng, NODE, SCHEME);
        let client = Identity::generate(&mut rng, "alice", SCHEME);

        let honest = record(&image, &operator, &client, false);
        let honest_envelope = Attestor::for_avmm(&honest, &image)
            .unwrap()
            .envelope_bytes()
            .to_vec();

        // Tampered initial image: same name, same key, different bytes.
        let tampered_image = image.clone().with_disk(vec![0x5Au8; 256]);
        let registry = GuestRegistry::new();
        let tampered = Avmm::new(
            NODE,
            &tampered_image,
            &registry,
            operator.signing_key.clone(),
            AvmmOptions::default().with_scheme(SCHEME),
        )
        .unwrap();
        let image_tamper_envelope = Attestor::for_avmm(&tampered, &tampered_image)
            .unwrap()
            .envelope_bytes()
            .to_vec();

        // Boot log extended after sealing, original seal kept.
        let envelope = AttestationEnvelope::decode_exact(&honest_envelope).unwrap();
        let boot_bytes = envelope.boot.encode_to_vec();
        let mut reader = Reader::new(&boot_bytes);
        let mut events = Vec::<BootEvent>::decode(&mut reader).unwrap();
        let seal = Option::<Vec<u8>>::decode(&mut reader).unwrap();
        events.push(BootEvent {
            label: "avm.extra".to_string(),
            payload_digest: sha256(b"measured after the seal"),
        });
        let fork_envelope = AttestationEnvelope {
            boot: BootEventLog::from_parts(events, seal),
            ..envelope
        }
        .encode_to_vec();

        // Post-launch execution tamper: identical launch, poked mid-run.
        let post = record(&image, &operator, &client, true);
        let post_envelope = Attestor::for_avmm(&post, &image)
            .unwrap()
            .envelope_bytes()
            .to_vec();

        Fixture {
            image,
            operator,
            client,
            honest_log: honest.log().clone(),
            honest_store: honest.snapshots().clone(),
            honest_envelope,
            image_tamper_envelope,
            fork_envelope,
            post_log: post.log().clone(),
            post_store: post.snapshots().clone(),
            post_envelope,
            start: ROUNDS - 2,
        }
    })
}

/// The tamper classes a session can run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tamper {
    Honest,
    Image,
    LogFork,
    NonceReplay,
    PostLaunch,
}

fn tamper_strategy() -> impl Strategy<Value = Tamper> {
    (0u64..5).prop_map(|i| match i {
        0 => Tamper::Honest,
        1 => Tamper::Image,
        2 => Tamper::LogFork,
        3 => Tamper::NonceReplay,
        _ => Tamper::PostLaunch,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of honest and tampered attestation sessions, under
    /// arbitrary session ids and issue times, classifies every session with
    /// its distinct verdict — and the honest / post-launch cases continue
    /// into the spot check that settles what attestation alone cannot.
    #[test]
    fn interleaved_sessions_map_to_their_distinct_verdicts(
        sessions in proptest::collection::vec(
            (tamper_strategy(), 1u64..1 << 48, 1u64..1 << 40), 1..6),
        skew in 0u64..4_000_000,
    ) {
        let fx = fixture();
        let policy = LaunchPolicy::new(&fx.image, NODE, SCHEME, fx.operator.verifying_key());
        let registry = GuestRegistry::new();
        let honest_attestor = Attestor::from_envelope_bytes(
            fx.honest_envelope.clone(), fx.operator.signing_key.clone());

        for &(tamper, session_id, issued_at_us) in &sessions {
            let challenge = AttestChallenge {
                nonce: challenge_nonce(session_id, issued_at_us),
                issued_at_us,
            };
            // Any verification time inside the freshness window.
            let now = issued_at_us + skew % policy.freshness_us;
            let attestor = match tamper {
                Tamper::Honest => honest_attestor.clone(),
                Tamper::Image => Attestor::from_envelope_bytes(
                    fx.image_tamper_envelope.clone(), fx.operator.signing_key.clone()),
                Tamper::LogFork => Attestor::from_envelope_bytes(
                    fx.fork_envelope.clone(), fx.operator.signing_key.clone()),
                Tamper::NonceReplay => {
                    // A canned quote for a different (older) challenge.
                    let old = AttestChallenge {
                        nonce: challenge_nonce(session_id.wrapping_add(1), issued_at_us / 2),
                        issued_at_us: issued_at_us / 2,
                    };
                    honest_attestor.clone().with_replayed_quote(honest_attestor.quote(&old))
                }
                Tamper::PostLaunch => Attestor::from_envelope_bytes(
                    fx.post_envelope.clone(), fx.operator.signing_key.clone()),
            };
            let (verdict, _) = policy.verify(&attestor.quote(&challenge), &challenge, now);
            let expected = match tamper {
                Tamper::Honest | Tamper::PostLaunch => AttestVerdict::Verified,
                Tamper::Image => AttestVerdict::ImageMismatch,
                Tamper::LogFork => AttestVerdict::BootLogForged,
                Tamper::NonceReplay => AttestVerdict::StaleNonce,
            };
            prop_assert_eq!(verdict, expected, "tamper {:?}", tamper);
        }

        // The audit settles what the launch envelope cannot: run the spot
        // check once per class that appeared in this interleaving.
        if sessions.iter().any(|&(t, _, _)| t == Tamper::Honest) {
            let report = spot_check(&fx.honest_log, &fx.honest_store, fx.start, 1,
                                    &fx.image, &registry).unwrap();
            prop_assert!(report.consistent, "honest run must audit clean end-to-end");
        }
        if sessions.iter().any(|&(t, _, _)| t == Tamper::PostLaunch) {
            let report = spot_check(&fx.post_log, &fx.post_store, fx.start, 1,
                                    &fx.image, &registry).unwrap();
            prop_assert!(!report.consistent,
                "post-launch tamper attests Verified but must fail the audit");
        }
    }

    /// The post-launch-tampered provider serves the *same* envelope bytes
    /// as the honest one (the launch really was identical), and expired
    /// challenges are classified as such for every session identity.
    #[test]
    fn envelope_determinism_and_expiry(session_id in 1u64..1 << 48, age in option::of(1u64..1 << 20)) {
        let fx = fixture();
        prop_assert_eq!(&fx.post_envelope, &fx.honest_envelope);

        let policy = LaunchPolicy::new(&fx.image, NODE, SCHEME, fx.operator.verifying_key());
        let attestor = Attestor::from_envelope_bytes(
            fx.honest_envelope.clone(), fx.operator.signing_key.clone());
        let issued_at_us = 1_000;
        let challenge = AttestChallenge {
            nonce: challenge_nonce(session_id, issued_at_us),
            issued_at_us,
        };
        let late = issued_at_us + policy.freshness_us + age.unwrap_or(1);
        let (verdict, _) = policy.verify(&attestor.quote(&challenge), &challenge, late);
        prop_assert_eq!(verdict, AttestVerdict::Expired);
    }
}

/// The client identity is part of the fixture so the recording compiles the
/// same either way; referenced here to keep the struct field honest.
#[test]
fn fixture_builds_once_and_is_consistent() {
    let fx = fixture();
    assert_eq!(fx.client.name, "alice");
    assert_ne!(fx.honest_envelope, fx.image_tamper_envelope);
    assert_ne!(fx.honest_envelope, fx.fork_envelope);
}
