//! Fleet-auditing equivalence properties: N concurrent sessionful auditors
//! interleaved on one provider node must be *observationally serial* — every
//! session reaches the same report a lone `SimNetTransport` client would
//! have, under arbitrary write/snapshot interleavings, chunk choices,
//! download modes, deterministic link loss, and arbitrary session
//! interleavings (inter-arrival gaps, provider fan-out).

use avm_core::config::AvmmOptions;
use avm_core::endpoint::{AuditClient, AuditServer, SimNetTransport};
use avm_core::envelope::{Envelope, EnvelopeKind};
use avm_core::fleet::{
    run_fleet, AuditTask, FleetAuditor, FleetConfig, ProviderConfig, ProviderNode,
};
use avm_core::recorder::{Avmm, HostClock};
use avm_crypto::keys::{SignatureScheme, SigningKey};
use avm_net::{run_event_loop, Endpoint, LinkConfig, NodeId, SimNet};
use avm_vm::bytecode::assemble;
use avm_vm::packet::encode_guest_packet;
use avm_vm::{GuestRegistry, VmImage};
use avm_wire::audit::CLIENT_SESSION;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Records a worker AVMM whose state diverges with every packet, taking
/// snapshots where the workload says so (at least one).  Returns the
/// recorder and the number of snapshots taken.
fn record_workload(
    image: &VmImage,
    registry: &GuestRegistry,
    workload: &[(u8, bool)],
) -> (Avmm, u64) {
    let mut rng = StdRng::seed_from_u64(19);
    let operator_key = SigningKey::generate(&mut rng, SignatureScheme::Rsa(512));
    let alice_key = SigningKey::generate(&mut rng, SignatureScheme::Rsa(512));
    let mut avmm = Avmm::new(
        "bob",
        image,
        registry,
        operator_key,
        AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
    )
    .unwrap();
    avmm.add_peer("alice", alice_key.verifying_key());
    let mut clock = HostClock::at(5);
    avmm.run_slice(&clock, 10_000).unwrap();
    let mut snapshots_taken = 0u64;
    for (i, (sel, snap)) in workload.iter().enumerate() {
        clock.advance_to(clock.now() + 500);
        let payload = encode_guest_packet("alice", &[b'w', *sel, i as u8]);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            i as u64 + 1,
            payload,
            &alice_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 100_000).unwrap();
        if *snap {
            avmm.take_snapshot();
            snapshots_taken += 1;
        }
    }
    if snapshots_taken == 0 {
        avmm.take_snapshot();
        snapshots_taken = 1;
    }
    (avmm, snapshots_taken)
}

fn worker_image() -> VmImage {
    let src = r"
            movi r1, 0x8000
            movi r2, 512
            movi r5, 0x9000
        loop:
            clock r4
            recv r0, r1, r2
            cmp r0, r6
            jne got
            idle
            jmp loop
        got:
            load r3, r5
            add r3, r0
            store r3, r5
            movi r7, 0
            movi r8, 8
            diskwr r7, r5, r8
            send r1, r0
            jmp loop
        ";
    VmImage::bytecode("fleet-prop", 128 * 1024, assemble(src, 0).unwrap(), 0, 0)
        .with_disk(vec![0u8; 8192])
}

proptest! {
    // Every case records a full AVMM session (RSA keygen + signing) and then
    // replays the checked chunk once per auditor, so the case count is kept
    // small; the interleavings inside each case are what the property
    // quantifies over.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (1) A single-session fleet run is *field-identical* (full `==`,
    /// transport timings included) to the blocking `SimNetTransport` client.
    /// (2) With N interleaved sessions across M providers, every session's
    /// report is semantically identical to that serial baseline — same
    /// verdict, fault, replay progress, transfer accounting and fetched
    /// digests — for any inter-arrival gap and link-loss pattern.
    /// (3) The shared response cache pays each cacheable encoding once per
    /// provider: exactly 2 misses (log chunk + manifest-or-sections), and
    /// every further serve of those keys is a hit.
    #[test]
    fn interleaved_fleet_sessions_match_serial_client(
        workload in proptest::collection::vec((0u8..6, any::<bool>()), 2..6),
        start_pick in any::<u8>(),
        k in 1u64..3,
        loss_pick in 0usize..4,
        on_demand in any::<bool>(),
        auditors in 2usize..6,
        providers in 1usize..3,
        gap_pick in 0usize..4,
    ) {
        let image = worker_image();
        let registry = GuestRegistry::new();
        let (avmm, snapshots_taken) = record_workload(&image, &registry, &workload);
        let start = start_pick as u64 % snapshots_taken;
        // drop_every = 1 would drop *every* packet (a black hole); quantify
        // over lossless and partial-loss links.
        let drop_every = [0u64, 2, 3, 5][loss_pick];
        let link = LinkConfig { drop_every, ..LinkConfig::default() };
        let inter_arrival_us = [0u64, 130, 500, 1_700][gap_pick];

        // Serial baseline: one blocking client over its own simulated link.
        let mut client = AuditClient::new(SimNetTransport::new(
            AuditServer::new(avmm.log(), avmm.snapshots()),
            link,
        ));
        let baseline = if on_demand {
            client.spot_check_on_demand(start, k, &image, &registry).unwrap()
        } else {
            client.spot_check(start, k, &image, &registry).unwrap()
        };

        // (1) N=1: the sessionful event-loop path must be indistinguishable
        // down to every retransmission count and microsecond.
        let single = run_fleet(avmm.log(), avmm.snapshots(), &image, &registry, &FleetConfig {
            link,
            auditors: 1,
            start_snapshot: start,
            chunk: k,
            on_demand,
            ..FleetConfig::default()
        });
        prop_assert!(single.event_loop.quiescent);
        let single_report = single.reports[0].as_ref().unwrap();
        prop_assert_eq!(single_report, &baseline);

        // (2) N interleaved sessions across M providers.
        let config = FleetConfig {
            link,
            auditors,
            providers,
            inter_arrival_us,
            start_snapshot: start,
            chunk: k,
            on_demand,
            ..FleetConfig::default()
        };
        let outcome = run_fleet(avmm.log(), avmm.snapshots(), &image, &registry, &config);
        prop_assert!(outcome.event_loop.quiescent);
        prop_assert_eq!(outcome.reports.len(), auditors);
        prop_assert_eq!(outcome.latencies_us.len(), auditors);
        for report in &outcome.reports {
            let report = report.as_ref().unwrap();
            prop_assert_eq!(baseline.semantic(), report.semantic());
            if drop_every == 0 {
                prop_assert_eq!(report.transport.retransmissions, 0);
            }
            prop_assert!(report.transport.round_trips >= 1);
        }

        // (3) Shared-cache accounting: each provider with at least one
        // session encodes the two cacheable responses once; every further
        // serve (other sessions, loss-induced re-requests) hits the cache.
        let active = providers.min(auditors) as u64;
        let mut hits = 0;
        for stats in &outcome.providers {
            if stats.sessions_created == 0 {
                prop_assert_eq!(stats.cache.misses, 0);
                continue;
            }
            prop_assert_eq!(stats.cache.entries, 2);
            prop_assert_eq!(stats.cache.misses, 2);
            hits += stats.cache.hits;
        }
        prop_assert!(
            hits >= 2 * (auditors as u64 - active),
            "expected at least {} shared-cache hits, saw {}",
            2 * (auditors as u64 - active),
            hits
        );
    }
}

/// Heterogeneous tasks on one provider: auditors checking *different* chunk
/// ranges force cache misses — one per distinct cacheable encoding (a
/// `LogChunk{start,k}` per distinct task, a `Manifest(start)` per distinct
/// start) — while auditors sharing a range still hit.  Every session must
/// also match its own serial baseline, so the mixed hit/miss traffic is
/// provably not leaking one task's bytes into another's audit.
#[test]
fn heterogeneous_chunk_ranges_miss_per_distinct_key() {
    let image = worker_image();
    let registry = GuestRegistry::new();
    let workload = [(0u8, true), (1, true), (2, true), (3, false)];
    let (avmm, snapshots_taken) = record_workload(&image, &registry, &workload);
    assert_eq!(snapshots_taken, 3);

    // Five sessions over four distinct (start, k) tasks and three distinct
    // starts; the last task repeats the first so at least one pair shares
    // *both* cacheable keys.
    let tasks: [(u64, u64); 5] = [(0, 1), (1, 1), (0, 2), (2, 1), (0, 1)];
    let distinct_chunks = 4u64; // |{(start, k)}|
    let distinct_manifests = 3u64; // |{start}|

    // Serial baselines, one blocking client per task.
    let baselines: Vec<_> = tasks
        .iter()
        .map(|&(start, k)| {
            let mut client = AuditClient::new(SimNetTransport::new(
                AuditServer::new(avmm.log(), avmm.snapshots()),
                LinkConfig::default(),
            ));
            client
                .spot_check_on_demand(start, k, &image, &registry)
                .unwrap()
        })
        .collect();

    let link = LinkConfig::default();
    let timeout_us = 8 * link.latency_us + link.serialise_micros(1 << 20);
    let mut net = SimNet::new(link);
    let mut provider = ProviderNode::new(
        NodeId(1),
        AuditServer::new(avmm.log(), avmm.snapshots()),
        ProviderConfig::default(),
    );
    let mut auditors: Vec<FleetAuditor> = tasks
        .iter()
        .enumerate()
        .map(|(i, &(start, k))| {
            FleetAuditor::new(
                NodeId(2 + i as u32),
                NodeId(1),
                CLIENT_SESSION + i as u64,
                avmm.snapshots(),
                &image,
                &registry,
                AuditTask {
                    start_snapshot: start,
                    chunk: k,
                    on_demand: true,
                    start_at_us: i as u64 * 150,
                },
                timeout_us,
            )
        })
        .collect();
    let mut endpoints: Vec<&mut dyn Endpoint> = vec![&mut provider];
    for auditor in auditors.iter_mut() {
        endpoints.push(auditor);
    }
    let report = run_event_loop(&mut net, &mut endpoints, 10_000_000);
    assert!(report.quiescent);
    drop(endpoints);

    // Hit/miss accounting: on a lossless link each session serves exactly
    // one chunk and one manifest request, so the cacheable traffic is
    // 2 × sessions, of which only the distinct encodings miss.
    let stats = provider.stats();
    assert_eq!(stats.sessions_created, tasks.len() as u64);
    assert_eq!(stats.cache.misses, distinct_chunks + distinct_manifests);
    assert_eq!(stats.cache.entries, distinct_chunks + distinct_manifests);
    assert_eq!(
        stats.cache.hits,
        2 * tasks.len() as u64 - (distinct_chunks + distinct_manifests)
    );

    for (auditor, baseline) in auditors.into_iter().zip(&baselines) {
        assert!(auditor.finished());
        let (outcome, _cache) = auditor.into_parts();
        let fleet_report = outcome.unwrap();
        assert_eq!(fleet_report.semantic(), baseline.semantic());
        assert_eq!(fleet_report.transport.retransmissions, 0);
    }
}
