//! Property-based tests over the core data structures and invariants.

use avm_compress::{compress, decompress, CompressionLevel};
use avm_core::snapshot::{build_state_tree_uncached, capture_with_cache, StateTreeCache};
use avm_crypto::merkle::MerkleTree;
use avm_crypto::sha256::{sha256, Digest};
use avm_log::{verify_segment, EntryKind, LogEntry, TamperEvidentLog};
use avm_vm::bytecode::{assemble, Instruction, Reg};
use avm_vm::{GuestRegistry, Machine, StopCondition, VmExit, VmImage};
use avm_wire::varint::{read_varint, varint_len, write_varint, zigzag_decode, zigzag_encode};
use avm_wire::{read_frame, write_frame};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Varints round-trip for every value and their length prediction is exact.
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        let n = write_varint(&mut buf, v);
        prop_assert_eq!(n, varint_len(v));
        let (decoded, used) = read_varint(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, n);
    }

    /// ZigZag encoding is a bijection.
    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    /// Frames survive arbitrary payloads and detect single-byte corruption.
    #[test]
    fn frame_roundtrip_and_corruption(payload in proptest::collection::vec(any::<u8>(), 0..512), flip in any::<usize>()) {
        let mut out = Vec::new();
        write_frame(&mut out, &payload);
        let (decoded, consumed) = read_frame(&out).unwrap();
        prop_assert_eq!(decoded, &payload[..]);
        prop_assert_eq!(consumed, out.len());
        if !out.is_empty() {
            let idx = flip % out.len();
            let mut corrupted = out.clone();
            corrupted[idx] ^= 0x01;
            // Either an error, or (only if the flipped bit is inside the
            // varint length redundancy) a different payload — never a silent
            // identical success.
            if let Ok((p, _)) = read_frame(&corrupted) {
                prop_assert_ne!(p, &payload[..]);
            }
        }
    }

    /// Compression is lossless for arbitrary data at every level.
    #[test]
    fn compression_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for level in [CompressionLevel::Fast, CompressionLevel::Default] {
            let c = compress(&data, level);
            prop_assert_eq!(decompress(&c).unwrap(), data.clone());
        }
    }

    /// Merkle proofs verify for every leaf and fail for the wrong leaf data.
    #[test]
    fn merkle_proofs(leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..24)) {
        let tree = MerkleTree::from_leaves(&leaves);
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.verify(leaf, &root));
            prop_assert!(!proof.verify(b"definitely not the leaf", &root));
        }
    }

    /// The hash chain of a log built from arbitrary entries is intact, and
    /// tampering with any single entry breaks verification.
    #[test]
    fn log_chain_integrity(
        contents in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..32),
        victim in any::<usize>()
    ) {
        let mut log = TamperEvidentLog::new();
        for c in &contents {
            log.append(EntryKind::NdEvent, c.clone());
        }
        let (prev, segment) = log.segment(1, log.len() as u64).unwrap();
        // Chain verifies without any authenticators.
        let null_key = avm_crypto::keys::SigningKey::Null.verifying_key();
        prop_assert!(verify_segment(&prev, &segment, &[], &null_key).is_ok());

        // Tamper with one entry: verification must fail.
        let idx = victim % segment.len();
        let mut tampered: Vec<LogEntry> = segment.clone();
        tampered[idx].content.push(0xAB);
        prop_assert!(verify_segment(&prev, &tampered, &[], &null_key).is_err());
    }

    /// SHA-256 incremental hashing equals one-shot hashing for any split.
    #[test]
    fn sha256_incremental(data in proptest::collection::vec(any::<u8>(), 0..2048), split in any::<usize>()) {
        let cut = if data.is_empty() { 0 } else { split % data.len() };
        let mut h = avm_crypto::sha256::Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Every instruction encoding round-trips through decode.
    #[test]
    fn instruction_roundtrip(op in 0u8..8, a in 0u8..16, b in 0u8..16, imm in any::<u64>()) {
        let ins = match op {
            0 => Instruction::MovImm(Reg(a), imm),
            1 => Instruction::Add(Reg(a), Reg(b)),
            2 => Instruction::Load(Reg(a), Reg(b), imm),
            3 => Instruction::Jmp(imm),
            4 => Instruction::Cmp(Reg(a), Reg(b)),
            5 => Instruction::Send(Reg(a), Reg(b)),
            6 => Instruction::Push(Reg(a)),
            _ => Instruction::Clock(Reg(a)),
        };
        let bytes = ins.encode_to_vec();
        let (decoded, len) = Instruction::decode(&bytes, 0).unwrap();
        prop_assert_eq!(decoded, ins);
        prop_assert_eq!(len as usize, bytes.len());
    }

    /// The incremental state-root pipeline agrees with a from-scratch
    /// rebuild after arbitrary interleavings of memory writes, disk block
    /// writes and snapshots.
    ///
    /// Each op is `(kind, location, value)`: kind 0-3 writes memory, 4-6
    /// writes the disk, 7 takes a snapshot (which refreshes the long-lived
    /// cache and clears dirty tracking, exactly like the recorder does).
    #[test]
    fn incremental_state_root_matches_full_recompute(
        ops in proptest::collection::vec((0u8..8, any::<u16>(), any::<u8>()), 1..48)
    ) {
        let pages = 16usize;
        let image = VmImage::bytecode(
            "root-prop",
            (pages * avm_vm::PAGE_SIZE) as u64,
            assemble("halt", 0).unwrap(),
            0,
            0,
        )
        .with_disk(vec![0u8; 8 * avm_vm::devices::DISK_BLOCK_SIZE]);
        let mut m = Machine::from_image(&image, &GuestRegistry::new()).unwrap();
        let mut cache = StateTreeCache::new();
        let mut snapshots = 0u64;
        for (kind, loc, val) in ops {
            match kind {
                0..=3 => {
                    let addr = loc as u64 % m.memory().size();
                    m.memory_mut().write_u8(addr, val).unwrap();
                }
                4..=6 => {
                    let off = loc as u64 % m.devices().disk.size();
                    m.devices_mut().disk.write(off, &[val]).unwrap();
                }
                _ => {
                    let snap = capture_with_cache(&mut m, &mut cache, snapshots, val % 2 == 0);
                    snapshots += 1;
                    prop_assert_eq!(
                        snap.state_root,
                        build_state_tree_uncached(&m).root(),
                        "snapshot root diverged"
                    );
                }
            }
        }
        // Final root must agree regardless of where the op stream stopped.
        prop_assert_eq!(cache.refresh(&m), build_state_tree_uncached(&m).root());
    }

    /// Transfer accounting equals the bytes materialization consumes, for
    /// every snapshot in a chain built from an arbitrary interleaving of
    /// memory writes, disk writes, and full/incremental captures — and the
    /// content-addressed store never holds more than the logical payload.
    ///
    /// Each op is `(kind, location, value)`: kind 0-2 writes memory, 3-5
    /// writes the disk, 6-7 takes a snapshot (full when `value` is even).
    #[test]
    fn transfer_accounting_matches_materialize_consumption(
        ops in proptest::collection::vec((0u8..8, any::<u16>(), any::<u8>()), 1..32)
    ) {
        use avm_core::snapshot::SnapshotStore;
        let pages = 16usize;
        let image = VmImage::bytecode(
            "transfer-prop",
            (pages * avm_vm::PAGE_SIZE) as u64,
            assemble("halt", 0).unwrap(),
            0,
            0,
        )
        .with_disk(vec![0u8; 8 * avm_vm::devices::DISK_BLOCK_SIZE]);
        let registry = GuestRegistry::new();
        let mut m = Machine::from_image(&image, &registry).unwrap();
        let mut cache = StateTreeCache::new();
        let mut store = SnapshotStore::new();
        let mut captures = 0u64;
        for (kind, loc, val) in ops {
            match kind {
                0..=2 => {
                    let addr = loc as u64 % m.memory().size();
                    m.memory_mut().write_u8(addr, val).unwrap();
                }
                3..=5 => {
                    let off = loc as u64 % m.devices().disk.size();
                    m.devices_mut().disk.write(off, &[val]).unwrap();
                }
                _ => {
                    let snap = capture_with_cache(&mut m, &mut cache, captures, val % 2 == 0);
                    store.push(snap);
                    captures += 1;
                }
            }
        }
        // Always end on a capture so there is at least one snapshot.
        store.push(capture_with_cache(&mut m, &mut cache, captures, true));
        captures += 1;

        for id in 0..captures {
            // materialize authenticates the rebuilt state against the
            // recorded root internally, so this doubles as a round-trip test.
            let (_restored, consumed) = store.materialize_with_cost(id, &image, &registry).unwrap();
            prop_assert_eq!(
                consumed,
                store.transfer_bytes_upto(id),
                "transfer accounting diverged from materialization at snapshot {}",
                id
            );
            prop_assert_eq!(
                store.transfer_stream_upto(id).len() as u64,
                store.transfer_bytes_upto(id),
                "serialised transfer stream length diverged at snapshot {}",
                id
            );
        }
        // The final capture left the machine state untouched since its root
        // was recorded, so the last materialization is bit-identical.
        let last = store.materialize(captures - 1, &image, &registry).unwrap();
        prop_assert_eq!(last.state_digest(), m.state_digest());

        // Content addressing: storage is bounded by the logical payload, and
        // a repeated idle full capture adds nothing.
        prop_assert!(store.stored_payload_bytes() <= store.logical_payload_bytes());
        let stored_before = store.stored_payload_bytes();
        store.push(capture_with_cache(&mut m, &mut cache, captures, true));
        captures += 1;
        prop_assert_eq!(store.stored_payload_bytes(), stored_before);

        // Pruning at an arbitrary retained point must preserve every
        // surviving snapshot bit-for-bit (materialize re-authenticates the
        // root internally) and keep the accounting equality intact, while
        // never growing the pool.
        let prune_at = captures / 2;
        store.prune_upto(prune_at).unwrap();
        prop_assert!(store.stored_payload_bytes() <= stored_before);
        for id in prune_at..captures {
            let (_, consumed) = store.materialize_with_cost(id, &image, &registry).unwrap();
            prop_assert_eq!(
                consumed,
                store.transfer_bytes_upto(id),
                "post-prune accounting diverged at snapshot {}",
                id
            );
        }
        let last = store.materialize(captures - 1, &image, &registry).unwrap();
        prop_assert_eq!(last.state_digest(), m.state_digest());
    }

    /// On-demand (lazy, demand-paged) reconstruction is equivalent to a full
    /// snapshot download under arbitrary interleavings of memory writes,
    /// disk writes, packet-driven guest activity and full/incremental
    /// captures: for every snapshot in the chain the lazily materialized
    /// machine reaches the same state roots as the fully materialized one —
    /// before and after replaying more work — and the auditor's persistent
    /// blob cache never downloads the same digest twice across checks.
    ///
    /// Each op is `(kind, location, value)`: kind 0-2 writes guest memory
    /// (in the guest-visible data region), kind 3-4 writes the disk, kind 5
    /// injects a packet and runs the guest (which bumps a page selected by
    /// the packet and mirrors it to disk), kind 6-7 takes a snapshot (full
    /// when `value` is even).
    #[test]
    fn on_demand_replay_matches_full_materialization(
        ops in proptest::collection::vec((0u8..8, any::<u16>(), any::<u8>()), 1..24)
    ) {
        use avm_core::ondemand::{materialize_on_demand, AuditorBlobCache};
        use avm_core::snapshot::{compute_state_root, SnapshotStore};
        use std::collections::HashSet;

        // Guest: each packet's first byte selects one of 6 data pages; the
        // guest bumps a counter there and mirrors 8 bytes to disk block
        // (sel % 4).
        let src = r"
                movi r1, 0x7000     ; rx buffer
                movi r2, 64
                movi r5, 0x8000     ; data region base (page 8)
            loop:
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                loadb r3, r1        ; page selector
                movi r4, 4096
                mul r3, r4
                add r3, r5
                load r7, r3
                addi r7, 1
                store r7, r3
                movi r4, 8
                loadb r8, r1
                movi r9, 3
                and r8, r9
                movi r9, 4096
                mul r8, r9
                diskwr r8, r3, r4
                jmp loop
            ";
        let pages = 16usize;
        let image = VmImage::bytecode(
            "ondemand-prop",
            (pages * avm_vm::PAGE_SIZE) as u64,
            assemble(src, 0).unwrap(),
            0,
            0,
        )
        .with_disk(vec![0u8; 4 * avm_vm::devices::DISK_BLOCK_SIZE]);
        let registry = GuestRegistry::new();
        let mut m = Machine::from_image(&image, &registry).unwrap();
        let run_until_idle = |m: &mut Machine| loop {
            match m.run(StopCondition::Unbounded).unwrap() {
                VmExit::Idle | VmExit::Halted => break,
                _ => {}
            }
        };
        run_until_idle(&mut m);
        let mut cache = StateTreeCache::new();
        let mut store = SnapshotStore::new();
        let mut captures = 0u64;
        for (kind, loc, val) in ops {
            match kind {
                0..=2 => {
                    // Stay inside the guest-visible data region so operator
                    // tampering never corrupts the guest code.
                    let addr = 0x8000 + (loc as u64 % 0x8000);
                    m.memory_mut().write_u8(addr, val).unwrap();
                }
                3..=4 => {
                    let off = loc as u64 % m.devices().disk.size();
                    m.devices_mut().disk.write(off, &[val]).unwrap();
                }
                5 => {
                    m.inject_packet(vec![val % 6]);
                    run_until_idle(&mut m);
                }
                _ => {
                    store.push(capture_with_cache(&mut m, &mut cache, captures, val % 2 == 0));
                    captures += 1;
                }
            }
        }
        store.push(capture_with_cache(&mut m, &mut cache, captures, true));
        captures += 1;

        // One persistent auditor cache across every check; a digest fetched
        // once must never be fetched again.
        let mut auditor = AuditorBlobCache::new();
        let mut ever_fetched: HashSet<avm_crypto::sha256::Digest> = HashSet::new();
        for id in 0..captures {
            let full = store.materialize(id, &image, &registry).unwrap();
            let (mut lazy, session) =
                materialize_on_demand(&store, id, &image, &registry, &auditor).unwrap();
            prop_assert_eq!(
                compute_state_root(&lazy),
                compute_state_root(&full),
                "starting root diverged at snapshot {}",
                id
            );
            // Drive both machines identically past the snapshot.
            let mut full = full;
            for sel in [id as u8 % 6, (id as u8 + 2) % 6] {
                lazy.inject_packet(vec![sel]);
                full.inject_packet(vec![sel]);
                run_until_idle(&mut lazy);
                run_until_idle(&mut full);
            }
            prop_assert_eq!(
                compute_state_root(&lazy),
                compute_state_root(&full),
                "post-replay root diverged at snapshot {}",
                id
            );
            let cost = session
                .finish(&lazy, &store, &mut auditor, CompressionLevel::Default)
                .unwrap();
            for digest in &cost.fetched {
                prop_assert!(
                    ever_fetched.insert(*digest),
                    "digest {} was downloaded twice",
                    digest.short_hex()
                );
            }
            // Whatever was fetched is now cached.
            for digest in &cost.fetched {
                prop_assert!(auditor.contains(digest));
            }
        }
    }

    /// The chunk-granular pipeline is equivalent to page granularity under
    /// arbitrary write/snapshot/fault interleavings: sub-page writes at
    /// arbitrary offsets and lengths produce incremental chunk-leaf state
    /// roots equal to an uncached rebuild, chunk-granular materialization
    /// reproduces the exact raw contents (the page-agnostic `state_digest`)
    /// the live machine had at each capture, staged-chunk demand faulting
    /// reaches the same roots as a full download, and the batched blob
    /// exchange returns the same blobs as one-at-a-time for any batch size.
    ///
    /// Each op is `(kind, location, value)`: kind 0-3 writes 1-9 bytes at an
    /// arbitrary (chunk-straddling) address, kind 4 writes the disk, kind
    /// 5-7 takes a snapshot (full when `value` is even).
    #[test]
    fn chunk_granular_pipeline_equals_page_granular_reference(
        ops in proptest::collection::vec((0u8..8, any::<u16>(), any::<u8>()), 1..32),
        batch in 1usize..9,
        fault_byte in any::<u8>()
    ) {
        use avm_core::ondemand::{fetch_blobs, materialize_on_demand, AuditorBlobCache};
        use avm_core::snapshot::{compute_state_root, SnapshotStore};

        let pages = 8usize;
        let image = VmImage::bytecode(
            "chunk-prop",
            (pages * avm_vm::PAGE_SIZE) as u64,
            assemble("halt", 0).unwrap(),
            0,
            0,
        )
        .with_disk(vec![0u8; 4 * avm_vm::devices::DISK_BLOCK_SIZE]);
        let registry = GuestRegistry::new();
        let mut m = Machine::from_image(&image, &registry).unwrap();
        let mut cache = StateTreeCache::new();
        let mut store = SnapshotStore::new();
        let mut captures = 0u64;
        let mut live_digests = Vec::new();
        for (kind, loc, val) in ops {
            match kind {
                0..=3 => {
                    // 1-9 byte writes at arbitrary addresses: most stay
                    // inside one 512 B chunk, some straddle chunk and page
                    // boundaries.
                    let len = 1 + (val as usize % 9);
                    let addr = (loc as u64) % (m.memory().size() - len as u64);
                    m.memory_mut().write(addr, &vec![val; len]).unwrap();
                }
                4 => {
                    let off = loc as u64 % m.devices().disk.size();
                    m.devices_mut().disk.write(off, &[val]).unwrap();
                }
                _ => {
                    let snap = capture_with_cache(&mut m, &mut cache, captures, val % 2 == 0);
                    prop_assert_eq!(
                        snap.state_root,
                        build_state_tree_uncached(&m).root(),
                        "incremental chunk root diverged at snapshot {}",
                        captures
                    );
                    store.push(snap);
                    captures += 1;
                    live_digests.push(m.state_digest());
                }
            }
        }
        store.push(capture_with_cache(&mut m, &mut cache, captures, true));
        captures += 1;
        live_digests.push(m.state_digest());

        let auditor = AuditorBlobCache::new();
        for id in 0..captures {
            // Materialized contents equal the page-agnostic raw contents the
            // live machine had at capture — what a page-granular pipeline
            // reconstructs, byte for byte.
            let full = store.materialize(id, &image, &registry).unwrap();
            prop_assert_eq!(
                full.state_digest(),
                live_digests[id as usize],
                "materialized contents diverged at snapshot {}",
                id
            );
            // Fault interleaving: stage the divergent chunks lazily, touch a
            // pseudo-random subset, and require root equality throughout.
            let (mut lazy, session) =
                materialize_on_demand(&store, id, &image, &registry, &auditor).unwrap();
            prop_assert_eq!(compute_state_root(&lazy), compute_state_root(&full));
            let addr = (fault_byte as u64).wrapping_mul(131) % lazy.memory().size();
            let _ = lazy.memory_mut().read_u8(addr).unwrap();
            let mut settle = AuditorBlobCache::new();
            let cost = session
                .finish(&lazy, &store, &mut settle, CompressionLevel::Default)
                .unwrap();
            prop_assert_eq!(compute_state_root(&lazy), compute_state_root(&full));
            prop_assert_eq!(
                cost.chunks_faulted as usize,
                lazy.memory().faulted_chunks().len()
            );
        }

        // Batched blob exchange: any batch size returns the same blobs in
        // the same order as one-at-a-time, never with more round trips per
        // blob.
        let manifest = store.chain_manifest_upto(captures - 1).unwrap();
        let needed: Vec<Digest> = manifest
            .mem_refs
            .iter()
            .chain(&manifest.disk_refs)
            .map(|(_, d)| *d)
            .collect();
        let mut a = AuditorBlobCache::new();
        let mut b = AuditorBlobCache::new();
        let batched = fetch_blobs(&mut a, &store, &needed, batch, CompressionLevel::Default).unwrap();
        let unbatched = fetch_blobs(&mut b, &store, &needed, 1, CompressionLevel::Default).unwrap();
        prop_assert_eq!(&batched.fetched, &unbatched.fetched);
        prop_assert_eq!(batched.payload_bytes, unbatched.payload_bytes);
        prop_assert!(batched.round_trips <= unbatched.round_trips);
        prop_assert_eq!(unbatched.round_trips, unbatched.fetched.len() as u64);
    }

    /// The machine is deterministic: the same guest program with the same
    /// injected clock values always reaches the same state digest.
    #[test]
    fn machine_determinism(clocks in proptest::collection::vec(0u64..1_000_000, 1..8)) {
        let src = r"
                movi r2, 0
            loop:
                clock r1
                add r2, r1
                store r2, r3, 0x4000
                cmp r1, r4
                jne loop
                halt
            ";
        let run = |values: &[u64]| -> (u64, Digest) {
            let image = VmImage::bytecode("det", 64 * 1024, assemble(src, 0).unwrap(), 0, 0);
            let mut m = Machine::from_image(&image, &GuestRegistry::new()).unwrap();
            let mut it = values.iter().copied().chain(std::iter::repeat(0));
            loop {
                match m.run(StopCondition::Unbounded).unwrap() {
                    VmExit::ClockRead => m.provide_clock(it.next().unwrap()).unwrap(),
                    VmExit::Halted => break,
                    _ => {}
                }
            }
            (m.step_count(), m.state_digest())
        };
        let a = run(&clocks);
        let b = run(&clocks);
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Networked audit endpoints
// ---------------------------------------------------------------------------

proptest! {
    // Every case records a full AVMM session (RSA keygen + signing), so the
    // case count is kept small; the interleavings inside each case are what
    // the property quantifies over.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A spot check driven over the simulated network reaches the identical
    /// verdict, fault, progress counters, and transfer-byte/round-trip
    /// accounting as the in-process path, under arbitrary write/snapshot
    /// interleavings, chunk choices, download modes, and deterministic link
    /// loss — and a lossless link never retransmits.
    #[test]
    fn networked_spot_check_equals_in_process(
        workload in proptest::collection::vec((0u8..6, any::<bool>()), 2..6),
        start_pick in any::<u8>(),
        k in 1u64..3,
        loss_pick in 0usize..4,
        on_demand in any::<bool>(),
    ) {
        use avm_core::config::AvmmOptions;
        use avm_core::endpoint::{AuditClient, AuditServer, SimNetTransport};
        use avm_core::envelope::{Envelope, EnvelopeKind};
        use avm_core::ondemand::AuditorBlobCache;
        use avm_core::recorder::{Avmm, HostClock};
        use avm_core::spotcheck::{spot_check, spot_check_on_demand};
        use avm_crypto::keys::{SignatureScheme, SigningKey};
        use avm_net::LinkConfig;
        use avm_vm::packet::encode_guest_packet;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // A worker guest whose state diverges with every packet.
        let src = r"
                movi r1, 0x8000
                movi r2, 512
                movi r5, 0x9000
            loop:
                clock r4
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                load r3, r5
                add r3, r0
                store r3, r5
                movi r7, 0
                movi r8, 8
                diskwr r7, r5, r8
                send r1, r0
                jmp loop
            ";
        let image = VmImage::bytecode("net-prop", 128 * 1024, assemble(src, 0).unwrap(), 0, 0)
            .with_disk(vec![0u8; 8192]);
        let registry = GuestRegistry::new();
        let mut rng = StdRng::seed_from_u64(7);
        let operator_key = SigningKey::generate(&mut rng, SignatureScheme::Rsa(512));
        let alice_key = SigningKey::generate(&mut rng, SignatureScheme::Rsa(512));
        let mut avmm = Avmm::new(
            "bob",
            &image,
            &registry,
            operator_key,
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
        )
        .unwrap();
        avmm.add_peer("alice", alice_key.verifying_key());
        let mut clock = HostClock::at(5);
        avmm.run_slice(&clock, 10_000).unwrap();
        let mut snapshots_taken = 0u64;
        for (i, (sel, snap)) in workload.iter().enumerate() {
            clock.advance_to(clock.now() + 500);
            let payload = encode_guest_packet("alice", &[b'w', *sel, i as u8]);
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                i as u64 + 1,
                payload,
                &alice_key,
                None,
            );
            avmm.deliver(&env).unwrap();
            avmm.run_slice(&clock, 100_000).unwrap();
            if *snap {
                avmm.take_snapshot();
                snapshots_taken += 1;
            }
        }
        if snapshots_taken == 0 {
            avmm.take_snapshot();
            snapshots_taken = 1;
        }
        let start = start_pick as u64 % snapshots_taken;
        // drop_every = 1 would drop *every* packet (a black hole, tested
        // separately); quantify over lossless and partial-loss links.
        let drop_every = [0u64, 2, 3, 5][loss_pick];
        let link = LinkConfig { drop_every, ..LinkConfig::default() };

        // In-process baseline and the same check over the simulated network.
        let (baseline, net_report, fetched_equal) = if on_demand {
            let mut free_cache = AuditorBlobCache::new();
            let baseline = spot_check_on_demand(
                avmm.log(), avmm.snapshots(), start, k, &image, &registry, &mut free_cache,
            ).unwrap();
            let mut client = AuditClient::new(SimNetTransport::new(
                AuditServer::new(avmm.log(), avmm.snapshots()),
                link,
            ));
            let net_report = client.spot_check_on_demand(start, k, &image, &registry).unwrap();
            let fetched_equal = baseline.on_demand.as_ref().map(|c| c.fetched.clone())
                == net_report.on_demand.as_ref().map(|c| c.fetched.clone());
            (baseline, net_report, fetched_equal)
        } else {
            let baseline = spot_check(
                avmm.log(), avmm.snapshots(), start, k, &image, &registry,
            ).unwrap();
            let mut client = AuditClient::new(SimNetTransport::new(
                AuditServer::new(avmm.log(), avmm.snapshots()),
                link,
            ));
            let net_report = client.spot_check(start, k, &image, &registry).unwrap();
            (baseline, net_report, true)
        };

        prop_assert_eq!(baseline.semantic(), net_report.semantic());
        prop_assert!(fetched_equal, "transferred digests diverged across transports");
        if drop_every == 0 {
            prop_assert_eq!(net_report.transport.retransmissions, 0);
        }
        prop_assert!(net_report.transport.round_trips >= 1);
        prop_assert!(net_report.measured_latency_micros() > 0);
    }
}
