//! Modelled durability costs, in the spirit of `avm_wire::RttModel`.
//!
//! The simulator does not sleep on an fsync any more than the network layer
//! sleeps on a round trip.  Instead every sync is *priced* — a fixed device
//! flush latency plus the unsynced bytes at sequential-write bandwidth — and
//! the accumulated model time is reported next to real wall times by the
//! `persist` experiment.  That makes the classic durability trade-off
//! (sync per entry / per batch / per seal) measurable without real disks.

use crate::error::StoreError;
use crate::storage::Storage;

/// When the segment writer issues an fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every appended record: nothing is ever lost, at one device
    /// flush per log entry.
    PerEntry,
    /// Sync once per flushed batch (one flush per provider event).
    PerBatch,
    /// Sync only at seals and other commit points — the fastest option; at
    /// most one seal interval of recent, un-authenticated log is at risk in
    /// a real power cut.
    PerSeal,
}

impl SyncPolicy {
    /// Short label for tables and JSON keys.
    pub fn label(&self) -> &'static str {
        match self {
            SyncPolicy::PerEntry => "per_entry",
            SyncPolicy::PerBatch => "per_batch",
            SyncPolicy::PerSeal => "per_seal",
        }
    }
}

/// Prices an fsync the way `RttModel` prices a round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsyncModel {
    /// Fixed device-flush latency per sync, in microseconds.
    pub fsync_micros: u64,
    /// Sequential write bandwidth used to price the unsynced bytes.
    pub bytes_per_sec: u64,
}

impl FsyncModel {
    /// A 2010-era commodity disk (the paper's evaluation hardware class):
    /// ~8 ms flush, ~80 MB/s sequential writes.
    pub const DISK_2010: FsyncModel = FsyncModel {
        fsync_micros: 8_000,
        bytes_per_sec: 80_000_000,
    };

    /// An SSD-class device, for contrast in the benches.
    pub const SSD: FsyncModel = FsyncModel {
        fsync_micros: 150,
        bytes_per_sec: 400_000_000,
    };

    /// Modelled cost of syncing `unsynced_bytes`, in microseconds.
    pub fn sync_micros(&self, unsynced_bytes: u64) -> u64 {
        self.fsync_micros + unsynced_bytes * 1_000_000 / self.bytes_per_sec.max(1)
    }
}

impl Default for FsyncModel {
    fn default() -> Self {
        FsyncModel::DISK_2010
    }
}

/// Counters for a durable write path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Bytes appended (framing included).
    pub appended_bytes: u64,
    /// Number of fsyncs issued.
    pub syncs: u64,
    /// Bytes that were unsynced at the time a sync covered them.
    pub synced_bytes: u64,
    /// Accumulated modelled sync time, in microseconds.
    pub modelled_sync_micros: u64,
}

impl DurabilityStats {
    /// Field-wise sum, for reporting segment + arena costs together.
    pub fn merged(&self, other: &DurabilityStats) -> DurabilityStats {
        DurabilityStats {
            appended_bytes: self.appended_bytes + other.appended_bytes,
            syncs: self.syncs + other.syncs,
            synced_bytes: self.synced_bytes + other.synced_bytes,
            modelled_sync_micros: self.modelled_sync_micros + other.modelled_sync_micros,
        }
    }
}

/// Shared append/sync meter used by the segment and arena writers.
#[derive(Debug, Clone, Default)]
pub(crate) struct DurabilityMeter {
    model: FsyncModel,
    stats: DurabilityStats,
    unsynced_bytes: u64,
}

impl DurabilityMeter {
    pub(crate) fn new(model: FsyncModel) -> DurabilityMeter {
        DurabilityMeter {
            model,
            ..DurabilityMeter::default()
        }
    }

    pub(crate) fn record_append(&mut self, bytes: u64) {
        self.stats.appended_bytes += bytes;
        self.unsynced_bytes += bytes;
    }

    /// Syncs `storage` if there is anything unsynced, pricing the flush.
    pub(crate) fn sync<S: Storage>(&mut self, storage: &mut S) -> Result<(), StoreError> {
        if self.unsynced_bytes == 0 {
            return Ok(());
        }
        storage.sync()?;
        self.stats.syncs += 1;
        self.stats.synced_bytes += self.unsynced_bytes;
        self.stats.modelled_sync_micros += self.model.sync_micros(self.unsynced_bytes);
        self.unsynced_bytes = 0;
        Ok(())
    }

    pub(crate) fn stats(&self) -> DurabilityStats {
        self.stats
    }

    pub(crate) fn unsynced_bytes(&self) -> u64 {
        self.unsynced_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimStorage;

    #[test]
    fn model_prices_flush_plus_bandwidth() {
        let m = FsyncModel::DISK_2010;
        assert_eq!(m.sync_micros(0), 8_000);
        // 80 MB at 80 MB/s is one second on top of the flush.
        assert_eq!(m.sync_micros(80_000_000), 8_000 + 1_000_000);
        assert!(FsyncModel::SSD.sync_micros(4096) < m.sync_micros(4096));
    }

    #[test]
    fn meter_accumulates_and_skips_empty_syncs() {
        let mut storage = SimStorage::new();
        let mut meter = DurabilityMeter::new(FsyncModel::DISK_2010);
        meter.sync(&mut storage).unwrap(); // nothing unsynced: no fsync
        assert_eq!(storage.sync_count(), 0);

        meter.record_append(1000);
        meter.record_append(500);
        assert_eq!(meter.unsynced_bytes(), 1500);
        meter.sync(&mut storage).unwrap();
        assert_eq!(storage.sync_count(), 1);

        let stats = meter.stats();
        assert_eq!(stats.appended_bytes, 1500);
        assert_eq!(stats.synced_bytes, 1500);
        assert_eq!(stats.syncs, 1);
        assert_eq!(
            stats.modelled_sync_micros,
            FsyncModel::DISK_2010.sync_micros(1500)
        );

        let merged = stats.merged(&stats);
        assert_eq!(merged.syncs, 2);
        assert_eq!(merged.appended_bytes, 3000);
    }
}
