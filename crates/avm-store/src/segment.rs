//! Append-only log segment files.
//!
//! # On-disk layout
//!
//! The log lives in files `seg-000000`, `seg-000001`, … each a stream of
//! CRC-framed records (`avm_wire::write_frame`: magic, varint length,
//! payload, crc32).  Record payloads start with a one-byte tag:
//!
//! | tag | record   | payload after the tag                              |
//! |-----|----------|----------------------------------------------------|
//! | 0   | HEADER   | varint segment index, varint first seq, `h` anchor |
//! | 1   | ENTRY    | an encoded [`LogEntry`]                            |
//! | 2   | SEAL     | an encoded [`Authenticator`] for the last entry    |
//! | 3   | MANIFEST | varint snapshot id, manifest digest                |
//! | 4   | PRUNE    | varint base snapshot id, base manifest digest      |
//!
//! Every file opens with a HEADER whose anchor is the chained hash of the
//! last entry in the previous segment (`h_0 = 0` for `seg-000000`), so each
//! file is independently verifiable and the set of files is totally ordered.
//! A SEAL carries the provider's own signed authenticator for the chain
//! head; seals are written every `seal_every_entries` entries, always
//! fsynced, and a segment only rotates immediately after a seal — so every
//! file except the last ends with a SEAL, and recovery can classify damage:
//!
//! * an **incomplete final frame in the final file** is a torn write — the
//!   one thing a crash can produce — and is silently truncated;
//! * anything else (bad CRC mid-file, hash-chain break, bad seal, missing
//!   trailing seal in a non-final file) required rewriting durable bytes and
//!   is reported as [`StoreError::Tamper`].

use avm_crypto::keys::VerifyingKey;
use avm_crypto::sha256::Digest;
use avm_log::{Authenticator, LogEntry, LogSource};
use avm_wire::{read_frame, write_frame, Decode, Encode, FrameError, Reader, Writer};

use crate::error::{StoreError, TamperKind};
use crate::fsync::{DurabilityMeter, DurabilityStats, FsyncModel, SyncPolicy};
use crate::storage::Storage;

/// File-name prefix for segment files.
pub const SEGMENT_PREFIX: &str = "seg-";

const REC_HEADER: u8 = 0;
const REC_ENTRY: u8 = 1;
const REC_SEAL: u8 = 2;
const REC_MANIFEST: u8 = 3;
const REC_PRUNE: u8 = 4;

/// Configuration for the segment writer.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Rotate to a new file once the current one reaches this size.
    /// Rotation only happens at a seal, so files overshoot by up to one
    /// seal interval.
    pub max_segment_bytes: u64,
    /// Seal (and fsync) after this many entries.
    pub seal_every_entries: u64,
    /// When appends are fsynced.
    pub sync_policy: SyncPolicy,
    /// How syncs are priced.
    pub fsync_model: FsyncModel,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            max_segment_bytes: 64 * 1024,
            seal_every_entries: 32,
            sync_policy: SyncPolicy::PerSeal,
            fsync_model: FsyncModel::DISK_2010,
        }
    }
}

fn segment_file_name(index: u64) -> String {
    format!("{SEGMENT_PREFIX}{index:06}")
}

/// Result of a read-only scan of the segment files.
#[derive(Debug, Clone)]
pub struct SegmentScan {
    /// Decoded, chain-verified log entries in sequence order.
    pub entries: Vec<LogEntry>,
    /// `(snapshot_id, manifest_digest)` records, in persistence order.
    pub manifests: Vec<(u64, Digest)>,
    /// `(base_id, base_manifest_digest)` prune records, in order.
    pub prunes: Vec<(u64, Digest)>,
    /// Highest sequence number covered by a valid seal.
    pub sealed_upto: u64,
    /// Bytes in the torn tail (0 when the tail is clean).
    pub torn_bytes: u64,
    /// Torn tail location: file name and the byte length to keep.
    pub torn: Option<(String, u64)>,
    /// Index of the final (writable) segment file.
    resume_index: u64,
    /// Length of the final file after the torn tail is dropped.
    resume_file_len: u64,
    /// True when the final file needs its HEADER (re)written — either no
    /// files exist yet, or a crash tore the header append itself.
    needs_header: bool,
}

fn tamper(kind: TamperKind) -> StoreError {
    StoreError::Tamper(kind)
}

/// Scans the segment files in `storage` without modifying anything.
///
/// Verifies framing, the hash chain across file boundaries, and (when
/// `verifier` is given) every seal signature.  A torn tail in the final file
/// is reported in the scan, not an error; all other damage is
/// [`StoreError::Tamper`].
pub fn scan_segments<S: Storage>(
    storage: &S,
    verifier: Option<&VerifyingKey>,
) -> Result<SegmentScan, StoreError> {
    let names: Vec<String> = storage
        .list()?
        .into_iter()
        .filter(|n| n.starts_with(SEGMENT_PREFIX))
        .collect();

    let mut scan = SegmentScan {
        entries: Vec::new(),
        manifests: Vec::new(),
        prunes: Vec::new(),
        sealed_upto: 0,
        torn_bytes: 0,
        torn: None,
        resume_index: 0,
        resume_file_len: 0,
        needs_header: true,
    };
    let mut last_hash = Digest::ZERO;
    let mut prev_of_last = Digest::ZERO;

    for (fi, name) in names.iter().enumerate() {
        let data = storage.read(name)?;
        let is_last = fi + 1 == names.len();
        let mut off = 0usize;
        let mut saw_header = false;
        let mut last_was_seal = false;
        let mut keep_len = data.len();

        while off < data.len() {
            let (payload, consumed) = match read_frame(&data[off..]) {
                Ok(frame) => frame,
                Err(FrameError::Truncated) if is_last => {
                    // A torn append: the one kind of damage a crash produces.
                    scan.torn = Some((name.clone(), off as u64));
                    scan.torn_bytes = (data.len() - off) as u64;
                    keep_len = off;
                    break;
                }
                Err(e) => {
                    return Err(tamper(TamperKind::BadRecord {
                        file: name.clone(),
                        detail: e.to_string(),
                    }))
                }
            };
            let mut r = Reader::new(payload);
            let tag = r.get_u8().map_err(|e| {
                tamper(TamperKind::BadRecord {
                    file: name.clone(),
                    detail: format!("empty record: {e:?}"),
                })
            })?;
            let bad_record = |detail: String| {
                tamper(TamperKind::BadRecord {
                    file: name.clone(),
                    detail,
                })
            };
            if !saw_header {
                if tag != REC_HEADER {
                    return Err(tamper(TamperKind::BadSegment {
                        file: name.clone(),
                        detail: "file does not start with a segment header".into(),
                    }));
                }
                let index = r
                    .get_varint()
                    .map_err(|e| bad_record(format!("header: {e:?}")))?;
                let first_seq = r
                    .get_varint()
                    .map_err(|e| bad_record(format!("header: {e:?}")))?;
                let anchor = Digest::from_slice(
                    r.get_raw(32)
                        .map_err(|e| bad_record(format!("header: {e:?}")))?,
                )
                .expect("32 bytes");
                let expected_seq = scan.entries.len() as u64 + 1;
                if index != fi as u64 || first_seq != expected_seq || anchor != last_hash {
                    return Err(tamper(TamperKind::BadSegment {
                        file: name.clone(),
                        detail: format!(
                            "header (index {index}, first seq {first_seq}) does not \
                             anchor to the preceding segment"
                        ),
                    }));
                }
                saw_header = true;
                last_was_seal = false;
                off += consumed;
                continue;
            }
            match tag {
                REC_HEADER => {
                    return Err(tamper(TamperKind::BadSegment {
                        file: name.clone(),
                        detail: "unexpected mid-file segment header".into(),
                    }));
                }
                REC_ENTRY => {
                    let entry = LogEntry::decode(&mut r)
                        .map_err(|e| bad_record(format!("entry: {e:?}")))?;
                    let expected = scan.entries.len() as u64 + 1;
                    if entry.seq != expected || !entry.verify_against(&last_hash) {
                        return Err(tamper(TamperKind::BrokenHashChain {
                            file: name.clone(),
                            seq: entry.seq,
                        }));
                    }
                    prev_of_last = last_hash;
                    last_hash = entry.hash;
                    scan.entries.push(entry);
                    last_was_seal = false;
                }
                REC_SEAL => {
                    let auth = Authenticator::decode(&mut r)
                        .map_err(|e| bad_record(format!("seal: {e:?}")))?;
                    let last_seq = scan.entries.len() as u64;
                    let bad_seal = |detail: &str| {
                        tamper(TamperKind::BadSeal {
                            file: name.clone(),
                            seq: auth.seq,
                            detail: detail.into(),
                        })
                    };
                    if auth.seq != last_seq
                        || auth.hash != last_hash
                        || auth.prev_hash != prev_of_last
                    {
                        return Err(bad_seal("seal does not commit to the chain head"));
                    }
                    if let Some(key) = verifier {
                        auth.verify_signature(key)
                            .map_err(|_| bad_seal("invalid seal signature"))?;
                    }
                    scan.sealed_upto = last_seq;
                    last_was_seal = true;
                }
                REC_MANIFEST => {
                    let id = r
                        .get_varint()
                        .map_err(|e| bad_record(format!("manifest: {e:?}")))?;
                    let digest = Digest::from_slice(
                        r.get_raw(32)
                            .map_err(|e| bad_record(format!("manifest: {e:?}")))?,
                    )
                    .expect("32 bytes");
                    scan.manifests.push((id, digest));
                    last_was_seal = false;
                }
                REC_PRUNE => {
                    let id = r
                        .get_varint()
                        .map_err(|e| bad_record(format!("prune: {e:?}")))?;
                    let digest = Digest::from_slice(
                        r.get_raw(32)
                            .map_err(|e| bad_record(format!("prune: {e:?}")))?,
                    )
                    .expect("32 bytes");
                    scan.prunes.push((id, digest));
                    last_was_seal = false;
                }
                other => {
                    return Err(tamper(TamperKind::BadSegment {
                        file: name.clone(),
                        detail: format!("unknown record tag {other}"),
                    }));
                }
            }
            off += consumed;
        }

        if !is_last && !last_was_seal {
            // Rotation happens only right after a seal; a non-final file
            // without a trailing seal lost durable bytes.
            return Err(tamper(TamperKind::BadSegment {
                file: name.clone(),
                detail: "non-final segment does not end with a seal".into(),
            }));
        }
        if is_last {
            scan.resume_index = fi as u64;
            scan.resume_file_len = keep_len as u64;
            scan.needs_header = !saw_header;
        }
    }
    Ok(scan)
}

/// Appender over a chain of segment files.
#[derive(Debug)]
pub struct SegmentStore<S: Storage> {
    storage: S,
    cfg: SegmentConfig,
    file: String,
    file_len: u64,
    segment_index: u64,
    last_seq: u64,
    last_hash: Digest,
    prev_of_last: Digest,
    entries_since_seal: u64,
    sealed_upto: u64,
    meter: DurabilityMeter,
}

impl<S: Storage> SegmentStore<S> {
    /// Creates a fresh segment chain; errors if segment files already exist
    /// (use [`SegmentStore::recover`] for those).
    pub fn create(storage: S, cfg: SegmentConfig) -> Result<SegmentStore<S>, StoreError> {
        if storage
            .list()?
            .iter()
            .any(|n| n.starts_with(SEGMENT_PREFIX))
        {
            return Err(StoreError::Io(
                "segment files already exist; use recover".into(),
            ));
        }
        let mut store = SegmentStore {
            storage,
            cfg,
            file: segment_file_name(0),
            file_len: 0,
            segment_index: 0,
            last_seq: 0,
            last_hash: Digest::ZERO,
            prev_of_last: Digest::ZERO,
            entries_since_seal: 0,
            sealed_upto: 0,
            meter: DurabilityMeter::new(cfg.fsync_model),
        };
        store.append_header()?;
        store.sync()?;
        Ok(store)
    }

    /// Recovers a writer from existing segment files: scans and verifies
    /// them, truncates a torn tail, and positions the writer at the chain
    /// head.  Genuine tampering fails with [`StoreError::Tamper`].
    pub fn recover(
        mut storage: S,
        cfg: SegmentConfig,
        verifier: Option<&VerifyingKey>,
    ) -> Result<(SegmentStore<S>, SegmentScan), StoreError> {
        let scan = scan_segments(&storage, verifier)?;
        if let Some((file, keep)) = &scan.torn {
            storage.truncate(file, *keep)?;
        }
        let (last_hash, prev_of_last) = match scan.entries.len() {
            0 => (Digest::ZERO, Digest::ZERO),
            1 => (scan.entries[0].hash, Digest::ZERO),
            n => (scan.entries[n - 1].hash, scan.entries[n - 2].hash),
        };
        let last_seq = scan.entries.len() as u64;
        let mut store = SegmentStore {
            storage,
            cfg,
            file: segment_file_name(scan.resume_index),
            file_len: scan.resume_file_len,
            segment_index: scan.resume_index,
            last_seq,
            last_hash,
            prev_of_last,
            entries_since_seal: last_seq - scan.sealed_upto,
            sealed_upto: scan.sealed_upto,
            meter: DurabilityMeter::new(cfg.fsync_model),
        };
        if scan.needs_header {
            store.append_header()?;
            store.sync()?;
        }
        Ok((store, scan))
    }

    fn append_frame(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(payload.len() + 8);
        let n = write_frame(&mut buf, payload);
        self.storage.append(&self.file, &buf)?;
        self.file_len += n as u64;
        self.meter.record_append(n as u64);
        Ok(())
    }

    fn append_header(&mut self) -> Result<(), StoreError> {
        let mut w = Writer::new();
        w.put_u8(REC_HEADER);
        w.put_varint(self.segment_index);
        w.put_varint(self.last_seq + 1);
        w.put_raw(self.last_hash.as_bytes());
        self.append_frame(&w.into_bytes())
    }

    /// Appends a log entry; it must extend the persisted chain exactly.
    pub fn append_entry(&mut self, entry: &LogEntry) -> Result<(), StoreError> {
        if entry.seq != self.last_seq + 1 || !entry.verify_against(&self.last_hash) {
            return Err(StoreError::Io(format!(
                "entry {} does not extend the persisted chain (head {})",
                entry.seq, self.last_seq
            )));
        }
        let mut w = Writer::new();
        w.put_u8(REC_ENTRY);
        entry.encode(&mut w);
        self.append_frame(&w.into_bytes())?;
        self.prev_of_last = self.last_hash;
        self.last_hash = entry.hash;
        self.last_seq = entry.seq;
        self.entries_since_seal += 1;
        if matches!(self.cfg.sync_policy, SyncPolicy::PerEntry) {
            self.sync()?;
        }
        Ok(())
    }

    /// True when enough entries accumulated since the last seal.
    pub fn needs_seal(&self) -> bool {
        self.entries_since_seal >= self.cfg.seal_every_entries.max(1)
    }

    /// Appends a seal — the provider's signed authenticator for the chain
    /// head — and fsyncs.  Rotates to a new segment file afterwards when the
    /// current one is over the size limit.
    pub fn seal(&mut self, auth: &Authenticator) -> Result<(), StoreError> {
        if auth.seq != self.last_seq
            || auth.hash != self.last_hash
            || auth.prev_hash != self.prev_of_last
        {
            return Err(StoreError::Io(
                "seal authenticator does not match the chain head".into(),
            ));
        }
        let mut w = Writer::new();
        w.put_u8(REC_SEAL);
        auth.encode(&mut w);
        self.append_frame(&w.into_bytes())?;
        self.sync()?; // a seal is a durability point under every policy
        self.sealed_upto = self.last_seq;
        self.entries_since_seal = 0;
        if self.file_len >= self.cfg.max_segment_bytes {
            self.segment_index += 1;
            self.file = segment_file_name(self.segment_index);
            self.file_len = 0;
            self.append_header()?;
            self.sync()?;
        }
        Ok(())
    }

    /// Records that the manifest for `snapshot_id` (with digest `manifest`)
    /// is durable in the arenas.  Written *after* the arena blobs, *before*
    /// the SNAPSHOT log entry, so a surviving SNAPSHOT entry implies its
    /// snapshot is reconstructible.
    pub fn append_manifest(
        &mut self,
        snapshot_id: u64,
        manifest: Digest,
    ) -> Result<(), StoreError> {
        let mut w = Writer::new();
        w.put_u8(REC_MANIFEST);
        w.put_varint(snapshot_id);
        w.put_raw(manifest.as_bytes());
        self.append_frame(&w.into_bytes())?;
        if matches!(self.cfg.sync_policy, SyncPolicy::PerEntry) {
            self.sync()?;
        }
        Ok(())
    }

    /// Records a prune: snapshots below `base_id` collapsed into the rebased
    /// base whose manifest digest is `base_manifest`.  Always fsynced —
    /// arena compaction may delete blobs the moment this record is durable.
    pub fn append_prune(&mut self, base_id: u64, base_manifest: Digest) -> Result<(), StoreError> {
        let mut w = Writer::new();
        w.put_u8(REC_PRUNE);
        w.put_varint(base_id);
        w.put_raw(base_manifest.as_bytes());
        self.append_frame(&w.into_bytes())?;
        self.sync()
    }

    /// Fsyncs outstanding appends (priced by the fsync model).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.meter.sync(&mut self.storage)
    }

    /// Commit point for [`SyncPolicy::PerBatch`]: syncs unless the policy is
    /// seal-only.
    pub fn flush_batch(&mut self) -> Result<(), StoreError> {
        match self.cfg.sync_policy {
            SyncPolicy::PerSeal => Ok(()),
            SyncPolicy::PerEntry | SyncPolicy::PerBatch => self.sync(),
        }
    }

    /// Sequence number of the last persisted entry.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Highest sequence number covered by a seal.
    pub fn sealed_upto(&self) -> u64 {
        self.sealed_upto
    }

    /// Number of segment files written so far.
    pub fn segment_files(&self) -> u64 {
        self.segment_index + 1
    }

    /// Durability counters for this writer.
    pub fn stats(&self) -> DurabilityStats {
        self.meter.stats()
    }

    /// Bytes appended but not yet covered by a sync.
    pub fn unsynced_bytes(&self) -> u64 {
        self.meter.unsynced_bytes()
    }
}

/// Log entries recovered from (or mirrored alongside) the segment files,
/// serving auditors directly — the disk granularity *is* the §3.5 fetch
/// granularity.
#[derive(Debug, Clone, Default)]
pub struct SegmentLog {
    entries: Vec<LogEntry>,
}

impl SegmentLog {
    /// An empty log.
    pub fn new() -> SegmentLog {
        SegmentLog::default()
    }

    /// Wraps entries already verified by [`scan_segments`].
    pub fn from_entries(entries: Vec<LogEntry>) -> SegmentLog {
        SegmentLog { entries }
    }

    /// Mirrors a newly persisted entry.
    pub fn push(&mut self, entry: LogEntry) {
        debug_assert_eq!(entry.seq, self.entries.len() as u64 + 1);
        self.entries.push(entry);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl LogSource for SegmentLog {
    fn entries(&self) -> &[LogEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimStorage;
    use avm_crypto::keys::{SignatureScheme, SigningKey};
    use avm_log::{EntryKind, TamperEvidentLog};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> SigningKey {
        let mut rng = StdRng::seed_from_u64(42);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    fn small_cfg() -> SegmentConfig {
        SegmentConfig {
            max_segment_bytes: 512,
            seal_every_entries: 4,
            sync_policy: SyncPolicy::PerSeal,
            fsync_model: FsyncModel::DISK_2010,
        }
    }

    /// Appends `n` entries with seals (and rotation) driven by the config.
    fn write_log(
        store: &mut SegmentStore<SimStorage>,
        log: &mut TamperEvidentLog,
        signing: &SigningKey,
        n: usize,
    ) -> Result<(), StoreError> {
        for i in 0..n {
            let prev = log.last_hash();
            let entry = log
                .append(EntryKind::Meta, format!("payload-{i}").into_bytes())
                .clone();
            store.append_entry(&entry)?;
            if store.needs_seal() {
                let auth = Authenticator::create(signing, &entry, prev);
                store.seal(&auth)?;
            }
        }
        Ok(())
    }

    #[test]
    fn roundtrip_with_rotation_and_seals() {
        let signing = key();
        let storage = SimStorage::new();
        let mut store = SegmentStore::create(storage.clone(), small_cfg()).unwrap();
        let mut log = TamperEvidentLog::new();
        write_log(&mut store, &mut log, &signing, 25).unwrap();
        assert!(store.segment_files() > 1, "expected rotation");
        assert_eq!(store.last_seq(), 25);
        assert_eq!(store.sealed_upto(), 24);

        let scan = scan_segments(&storage, Some(&signing.verifying_key())).unwrap();
        assert_eq!(scan.entries, log.entries());
        assert_eq!(scan.sealed_upto, 24);
        assert_eq!(scan.torn_bytes, 0);
        assert!(scan.torn.is_none());
    }

    #[test]
    fn recover_resumes_appending() {
        let signing = key();
        let storage = SimStorage::new();
        let mut store = SegmentStore::create(storage.clone(), small_cfg()).unwrap();
        let mut log = TamperEvidentLog::new();
        write_log(&mut store, &mut log, &signing, 10).unwrap();
        drop(store);

        let (mut store, scan) =
            SegmentStore::recover(storage.clone(), small_cfg(), Some(&signing.verifying_key()))
                .unwrap();
        assert_eq!(scan.entries.len(), 10);
        write_log(&mut store, &mut log, &signing, 10).unwrap();
        let scan = scan_segments(&storage, Some(&signing.verifying_key())).unwrap();
        assert_eq!(scan.entries, log.entries());
        assert_eq!(scan.entries.len(), 20);
    }

    #[test]
    fn torn_tail_is_truncated_silently() {
        let signing = key();
        let storage = SimStorage::new();
        let mut store = SegmentStore::create(storage.clone(), small_cfg()).unwrap();
        let mut log = TamperEvidentLog::new();
        write_log(&mut store, &mut log, &signing, 6).unwrap();

        // Crash mid-way through the next entry's frame.
        storage.set_crash_point(3);
        let entry = log.append(EntryKind::Meta, b"doomed".to_vec()).clone();
        assert_eq!(store.append_entry(&entry), Err(StoreError::Crashed));

        let rebooted = storage.reboot();
        let (store, scan) = SegmentStore::recover(
            rebooted.clone(),
            small_cfg(),
            Some(&signing.verifying_key()),
        )
        .unwrap();
        assert_eq!(scan.entries.len(), 6, "torn entry dropped");
        assert!(scan.torn_bytes > 0);
        assert_eq!(store.last_seq(), 6);
        // After truncation a rescan sees a clean tail.
        let rescan = scan_segments(&rebooted, Some(&signing.verifying_key())).unwrap();
        assert_eq!(rescan.torn_bytes, 0);
    }

    #[test]
    fn crash_inside_frame_header_is_torn_tail_not_tamper() {
        let signing = key();
        // Tear the next append inside the frame header itself: after just
        // the magic byte (budget 1) or mid-way through the multi-byte
        // length varint (budget 2 — the payload is over 127 bytes).
        for budget in [1u64, 2] {
            let storage = SimStorage::new();
            let mut store = SegmentStore::create(storage.clone(), small_cfg()).unwrap();
            let mut log = TamperEvidentLog::new();
            write_log(&mut store, &mut log, &signing, 6).unwrap();

            storage.set_crash_point(budget);
            let entry = log.append(EntryKind::Meta, vec![9u8; 200]).clone();
            assert_eq!(store.append_entry(&entry), Err(StoreError::Crashed));

            let (store, scan) = SegmentStore::recover(
                storage.reboot(),
                small_cfg(),
                Some(&signing.verifying_key()),
            )
            .unwrap();
            assert_eq!(
                scan.entries.len(),
                6,
                "torn entry dropped (budget {budget})"
            );
            assert_eq!(scan.torn_bytes, budget);
            assert_eq!(store.last_seq(), 6);
        }
    }

    #[test]
    fn crash_during_first_header_recovers_to_empty() {
        let storage = SimStorage::new();
        storage.set_crash_point(2);
        assert!(matches!(
            SegmentStore::create(storage.clone(), small_cfg()),
            Err(StoreError::Crashed)
        ));
        let rebooted = storage.reboot();
        let (store, scan) = SegmentStore::recover(rebooted, small_cfg(), None).unwrap();
        assert!(scan.entries.is_empty());
        assert_eq!(store.last_seq(), 0);
    }

    #[test]
    fn flipped_byte_in_sealed_region_is_tamper_not_torn() {
        let signing = key();
        let storage = SimStorage::new();
        let mut store = SegmentStore::create(storage.clone(), small_cfg()).unwrap();
        let mut log = TamperEvidentLog::new();
        write_log(&mut store, &mut log, &signing, 8).unwrap();

        // Flip a byte well inside the first (sealed, synced) region.
        storage.corrupt("seg-000000", 60);
        let err = scan_segments(&storage, Some(&signing.verifying_key())).unwrap_err();
        assert!(err.is_tamper(), "got {err:?}");
        assert!(matches!(
            SegmentStore::recover(
                storage.reboot(),
                small_cfg(),
                Some(&signing.verifying_key())
            ),
            Err(StoreError::Tamper(_))
        ));
    }

    #[test]
    fn truncation_inside_a_non_final_file_is_tamper() {
        let signing = key();
        let storage = SimStorage::new();
        let mut store = SegmentStore::create(storage.clone(), small_cfg()).unwrap();
        let mut log = TamperEvidentLog::new();
        write_log(&mut store, &mut log, &signing, 25).unwrap();
        assert!(store.segment_files() > 1);

        // Chop the end of the *first* file: it no longer ends with a seal
        // (or tears a frame mid-file) — never the torn-tail path.
        let mut s = storage.clone();
        let len = s.read("seg-000000").unwrap().len() as u64;
        s.truncate("seg-000000", len - 5).unwrap();
        let err = scan_segments(&storage, Some(&signing.verifying_key())).unwrap_err();
        assert!(err.is_tamper(), "got {err:?}");
    }

    #[test]
    fn reordered_entry_breaks_the_chain() {
        let signing = key();
        let storage = SimStorage::new();
        let mut store = SegmentStore::create(storage, small_cfg()).unwrap();
        let mut log = TamperEvidentLog::new();
        write_log(&mut store, &mut log, &signing, 3).unwrap();
        // An entry that skips a sequence number is rejected at append time.
        let bogus = LogEntry::chained(&log.last_hash(), 7, EntryKind::Meta, vec![]);
        assert!(matches!(store.append_entry(&bogus), Err(StoreError::Io(_))));
    }

    #[test]
    fn manifests_and_prunes_roundtrip() {
        let signing = key();
        let storage = SimStorage::new();
        let mut store = SegmentStore::create(storage.clone(), small_cfg()).unwrap();
        let mut log = TamperEvidentLog::new();
        write_log(&mut store, &mut log, &signing, 5).unwrap();
        let d1 = avm_crypto::sha256::sha256(b"manifest-1");
        let d2 = avm_crypto::sha256::sha256(b"manifest-2");
        store.append_manifest(1, d1).unwrap();
        store.append_manifest(2, d2).unwrap();
        store.append_prune(2, d2).unwrap();
        let scan = scan_segments(&storage, Some(&signing.verifying_key())).unwrap();
        assert_eq!(scan.manifests, vec![(1, d1), (2, d2)]);
        assert_eq!(scan.prunes, vec![(2, d2)]);
    }

    #[test]
    fn sync_policies_price_differently() {
        let signing = key();
        let mut totals = Vec::new();
        for policy in [
            SyncPolicy::PerEntry,
            SyncPolicy::PerBatch,
            SyncPolicy::PerSeal,
        ] {
            let cfg = SegmentConfig {
                sync_policy: policy,
                ..small_cfg()
            };
            let mut store = SegmentStore::create(SimStorage::new(), cfg).unwrap();
            let mut log = TamperEvidentLog::new();
            write_log(&mut store, &mut log, &signing, 20).unwrap();
            store.flush_batch().unwrap();
            totals.push(store.stats());
        }
        // Per-entry syncs strictly more often (and at higher modelled cost)
        // than per-batch, which syncs at least as often as per-seal.
        assert!(totals[0].syncs > totals[2].syncs);
        assert!(totals[0].modelled_sync_micros > totals[2].modelled_sync_micros);
        assert_eq!(
            totals[0].appended_bytes, totals[2].appended_bytes,
            "policy must not change what is written"
        );
    }

    #[test]
    fn segment_log_serves_like_the_in_memory_log() {
        let signing = key();
        let storage = SimStorage::new();
        let mut store = SegmentStore::create(storage.clone(), small_cfg()).unwrap();
        let mut log = TamperEvidentLog::new();
        write_log(&mut store, &mut log, &signing, 12).unwrap();
        let scan = scan_segments(&storage, None).unwrap();
        let seg_log = SegmentLog::from_entries(scan.entries);
        assert_eq!(seg_log.len(), 12);
        assert!(!seg_log.is_empty());
        assert_eq!(LogSource::entries(&seg_log), log.entries());
        assert_eq!(seg_log.segment(3, 9), log.segment(3, 9));
        assert_eq!(seg_log.segment(1, 12), log.segment(1, 12));
        assert_eq!(seg_log.segment(0, 2), None);
    }
}
