//! Append-only blob arenas for the content-addressed payload pool.
//!
//! # On-disk layout
//!
//! Blobs live in files `arena-000000`, `arena-000001`, … each a stream of
//! CRC-framed records whose payload is `digest (32 bytes) || blob bytes`.
//! The digest→blob index is rebuilt by scanning at recovery — Venti-style,
//! the files *are* the database.  Files are never modified in place; arena
//! indices increase monotonically and are never reused, so a compaction
//! (triggered by snapshot pruning) writes the surviving blobs into fresh
//! files, fsyncs them, and only then deletes the old ones.  A crash anywhere
//! in that sequence leaves either the old files, both sets (duplicates are
//! deduplicated on scan), or just the new ones — never a state that loses a
//! live blob.
//!
//! Torn-tail handling mirrors the segment files: an incomplete final frame
//! in the *last* arena file is truncated silently; a framing error anywhere
//! else is tampering.  Blob *content* is not re-hashed here — the CRC guards
//! against accidental corruption, and end-to-end trust comes from replay
//! authenticating snapshot state roots against the log.

use std::collections::{HashMap, HashSet};

use avm_crypto::sha256::Digest;
use avm_wire::{read_frame, write_frame, FrameError};

use crate::error::{StoreError, TamperKind};
use crate::fsync::{DurabilityMeter, DurabilityStats, FsyncModel};
use crate::storage::Storage;

/// File-name prefix for arena files.
pub const ARENA_PREFIX: &str = "arena-";

/// Configuration for the arena writer.
#[derive(Debug, Clone, Copy)]
pub struct ArenaConfig {
    /// Start a new arena file once the current one reaches this size.
    pub max_arena_bytes: u64,
    /// How syncs are priced.
    pub fsync_model: FsyncModel,
}

impl Default for ArenaConfig {
    fn default() -> Self {
        ArenaConfig {
            max_arena_bytes: 256 * 1024,
            fsync_model: FsyncModel::DISK_2010,
        }
    }
}

fn arena_file_name(index: u64) -> String {
    format!("{ARENA_PREFIX}{index:06}")
}

fn parse_arena_index(name: &str) -> Result<u64, StoreError> {
    name.strip_prefix(ARENA_PREFIX)
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| StoreError::Io(format!("unrecognised arena file name: {name}")))
}

/// Result of a read-only scan of the arena files.
#[derive(Debug, Clone)]
pub struct ArenaScan {
    /// Recovered blobs in scan order, duplicates removed.
    pub blobs: Vec<(Digest, Vec<u8>)>,
    /// Bytes in the torn tail (0 when the tail is clean).
    pub torn_bytes: u64,
    /// Torn tail location: file name and the byte length to keep.
    pub torn: Option<(String, u64)>,
    /// Arena index the next new file should use.
    next_index: u64,
    /// Name and (post-truncation) length of the final file, if any.
    resume: Option<(String, u64)>,
}

/// Scans the arena files in `storage` without modifying anything.
pub fn scan_arenas<S: Storage>(storage: &S) -> Result<ArenaScan, StoreError> {
    let names: Vec<String> = storage
        .list()?
        .into_iter()
        .filter(|n| n.starts_with(ARENA_PREFIX))
        .collect();
    let mut scan = ArenaScan {
        blobs: Vec::new(),
        torn_bytes: 0,
        torn: None,
        next_index: 0,
        resume: None,
    };
    let mut seen: HashSet<Digest> = HashSet::new();
    for (fi, name) in names.iter().enumerate() {
        let index = parse_arena_index(name)?;
        scan.next_index = scan.next_index.max(index + 1);
        let data = storage.read(name)?;
        let is_last = fi + 1 == names.len();
        let mut off = 0usize;
        let mut keep_len = data.len();
        while off < data.len() {
            let (payload, consumed) = match read_frame(&data[off..]) {
                Ok(frame) => frame,
                Err(FrameError::Truncated) if is_last => {
                    scan.torn = Some((name.clone(), off as u64));
                    scan.torn_bytes = (data.len() - off) as u64;
                    keep_len = off;
                    break;
                }
                Err(e) => {
                    return Err(StoreError::Tamper(TamperKind::BadRecord {
                        file: name.clone(),
                        detail: e.to_string(),
                    }))
                }
            };
            if payload.len() < 32 {
                return Err(StoreError::Tamper(TamperKind::BadRecord {
                    file: name.clone(),
                    detail: "arena record shorter than a digest".into(),
                }));
            }
            let digest = Digest::from_slice(&payload[..32]).expect("32 bytes");
            // Duplicates are legal: a crash between compaction's write of the
            // new files and removal of the old ones leaves both copies.
            if seen.insert(digest) {
                scan.blobs.push((digest, payload[32..].to_vec()));
            }
            off += consumed;
        }
        if is_last {
            scan.resume = Some((name.clone(), keep_len as u64));
        }
    }
    Ok(scan)
}

/// Appender over the arena files, with a rebuildable digest index.
#[derive(Debug)]
pub struct ArenaStore<S: Storage> {
    storage: S,
    cfg: ArenaConfig,
    /// Digest → payload length, for existence checks and accounting (the
    /// bytes themselves stay on "disk").
    index: HashMap<Digest, u64>,
    file: String,
    file_len: u64,
    next_index: u64,
    stored_bytes: u64,
    meter: DurabilityMeter,
}

impl<S: Storage> ArenaStore<S> {
    /// Creates a fresh arena set; errors if arena files already exist.
    pub fn create(storage: S, cfg: ArenaConfig) -> Result<ArenaStore<S>, StoreError> {
        if storage.list()?.iter().any(|n| n.starts_with(ARENA_PREFIX)) {
            return Err(StoreError::Io(
                "arena files already exist; use recover".into(),
            ));
        }
        Ok(ArenaStore {
            storage,
            cfg,
            index: HashMap::new(),
            file: arena_file_name(0),
            file_len: 0,
            next_index: 1,
            stored_bytes: 0,
            meter: DurabilityMeter::new(cfg.fsync_model),
        })
    }

    /// Recovers from existing arena files: rebuilds the index, truncates a
    /// torn tail, and returns the recovered blobs for the in-memory pool.
    pub fn recover(
        mut storage: S,
        cfg: ArenaConfig,
    ) -> Result<(ArenaStore<S>, ArenaScan), StoreError> {
        let scan = scan_arenas(&storage)?;
        if let Some((file, keep)) = &scan.torn {
            storage.truncate(file, *keep)?;
        }
        let mut index = HashMap::with_capacity(scan.blobs.len());
        let mut stored_bytes = 0u64;
        for (digest, payload) in &scan.blobs {
            index.insert(*digest, payload.len() as u64);
            stored_bytes += payload.len() as u64;
        }
        let (file, file_len) = scan
            .resume
            .clone()
            .unwrap_or_else(|| (arena_file_name(0), 0));
        let next_index = scan.next_index.max(1);
        Ok((
            ArenaStore {
                storage,
                cfg,
                index,
                file,
                file_len,
                next_index,
                stored_bytes,
                meter: DurabilityMeter::new(cfg.fsync_model),
            },
            scan,
        ))
    }

    /// True when a blob with `digest` is already durable.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.index.contains_key(digest)
    }

    /// Appends a blob unless it is already stored.  Returns whether bytes
    /// were written.
    pub fn put(&mut self, digest: Digest, payload: &[u8]) -> Result<bool, StoreError> {
        if self.contains(&digest) {
            return Ok(false);
        }
        if self.file_len >= self.cfg.max_arena_bytes {
            self.file = arena_file_name(self.next_index);
            self.next_index += 1;
            self.file_len = 0;
        }
        let mut record = Vec::with_capacity(32 + payload.len());
        record.extend_from_slice(digest.as_bytes());
        record.extend_from_slice(payload);
        let mut buf = Vec::with_capacity(record.len() + 8);
        let n = write_frame(&mut buf, &record);
        self.storage.append(&self.file, &buf)?;
        self.file_len += n as u64;
        self.meter.record_append(n as u64);
        self.index.insert(digest, payload.len() as u64);
        self.stored_bytes += payload.len() as u64;
        Ok(true)
    }

    /// Fsyncs outstanding appends (priced by the fsync model).
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.meter.sync(&mut self.storage)
    }

    /// Rewrites the arenas keeping only `live` blobs; returns the payload
    /// bytes freed.  Crash-safe: new files are written and fsynced before
    /// any old file is deleted, and recovery deduplicates.
    pub fn compact(&mut self, live: &HashSet<Digest>) -> Result<u64, StoreError> {
        self.flush()?;
        let old_names: Vec<String> = self
            .storage
            .list()?
            .into_iter()
            .filter(|n| n.starts_with(ARENA_PREFIX))
            .collect();
        // Collect the surviving records before touching anything.
        let mut survivors: Vec<(Digest, Vec<u8>)> = Vec::new();
        let mut kept: HashSet<Digest> = HashSet::new();
        for name in &old_names {
            let data = self.storage.read(name)?;
            let mut off = 0usize;
            while off < data.len() {
                let (payload, consumed) = match read_frame(&data[off..]) {
                    Ok(frame) => frame,
                    Err(e) => {
                        return Err(StoreError::Tamper(TamperKind::BadRecord {
                            file: name.clone(),
                            detail: e.to_string(),
                        }))
                    }
                };
                if payload.len() < 32 {
                    return Err(StoreError::Tamper(TamperKind::BadRecord {
                        file: name.clone(),
                        detail: "arena record shorter than a digest".into(),
                    }));
                }
                let digest = Digest::from_slice(&payload[..32]).expect("32 bytes");
                if live.contains(&digest) && kept.insert(digest) {
                    survivors.push((digest, payload[32..].to_vec()));
                }
                off += consumed;
            }
        }
        let freed_before = self.stored_bytes;
        // Write survivors into fresh files.
        self.index.clear();
        self.stored_bytes = 0;
        self.file = arena_file_name(self.next_index);
        self.next_index += 1;
        self.file_len = 0;
        for (digest, payload) in survivors {
            self.put(digest, &payload)?;
        }
        // New files durable before the old ones disappear.
        self.flush()?;
        for name in old_names {
            self.storage.remove(&name)?;
        }
        self.storage.sync()?;
        Ok(freed_before.saturating_sub(self.stored_bytes))
    }

    /// Number of distinct blobs stored.
    pub fn blob_count(&self) -> u64 {
        self.index.len() as u64
    }

    /// Number of stored blobs *not* in `live` — orphans left behind by a
    /// compaction a crash interrupted (or by a snapshot whose log entry
    /// never became durable).
    pub fn orphan_count(&self, live: &HashSet<Digest>) -> u64 {
        self.index.keys().filter(|d| !live.contains(d)).count() as u64
    }

    /// Total payload bytes stored (excluding framing).
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Durability counters for this writer.
    pub fn stats(&self) -> DurabilityStats {
        self.meter.stats()
    }

    /// Bytes appended but not yet covered by a sync.
    pub fn unsynced_bytes(&self) -> u64 {
        self.meter.unsynced_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimStorage;
    use avm_crypto::sha256::sha256;

    fn blob(i: u8, len: usize) -> (Digest, Vec<u8>) {
        let payload = vec![i; len];
        (sha256(&payload), payload)
    }

    fn small_cfg() -> ArenaConfig {
        ArenaConfig {
            max_arena_bytes: 200,
            fsync_model: FsyncModel::DISK_2010,
        }
    }

    #[test]
    fn put_recover_roundtrip_with_rotation() {
        let storage = SimStorage::new();
        let mut arena = ArenaStore::create(storage.clone(), small_cfg()).unwrap();
        let blobs: Vec<_> = (0..8).map(|i| blob(i, 60)).collect();
        for (d, p) in &blobs {
            assert!(arena.put(*d, p).unwrap());
            assert!(!arena.put(*d, p).unwrap(), "dedup on re-put");
        }
        arena.flush().unwrap();
        assert_eq!(arena.blob_count(), 8);
        assert_eq!(arena.stored_bytes(), 8 * 60);
        let files = storage.list().unwrap();
        assert!(files.len() > 1, "expected rotation, got {files:?}");

        let (recovered, scan) = ArenaStore::recover(storage.reboot(), small_cfg()).unwrap();
        assert_eq!(recovered.blob_count(), 8);
        assert_eq!(recovered.stored_bytes(), 8 * 60);
        assert_eq!(scan.torn_bytes, 0);
        let mut got: Vec<_> = scan.blobs.iter().map(|(d, _)| *d).collect();
        let mut want: Vec<_> = blobs.iter().map(|(d, _)| *d).collect();
        got.sort_by_key(|d| *d.as_bytes());
        want.sort_by_key(|d| *d.as_bytes());
        assert_eq!(got, want);
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_corruption_is_tamper() {
        let storage = SimStorage::new();
        let mut arena = ArenaStore::create(storage.clone(), small_cfg()).unwrap();
        let (d1, p1) = blob(1, 50);
        arena.put(d1, &p1).unwrap();
        arena.flush().unwrap();

        // Crash mid-way through the second blob's frame.
        storage.set_crash_point(10);
        let (d2, p2) = blob(2, 50);
        assert_eq!(arena.put(d2, &p2), Err(StoreError::Crashed));

        let (recovered, scan) = ArenaStore::recover(storage.reboot(), small_cfg()).unwrap();
        assert_eq!(recovered.blob_count(), 1);
        assert!(recovered.contains(&d1));
        assert!(!recovered.contains(&d2));
        assert!(scan.torn_bytes > 0);

        // Corruption *before* the tail is tampering, never torn-tail.
        let storage2 = SimStorage::new();
        let mut arena2 = ArenaStore::create(storage2.clone(), small_cfg()).unwrap();
        arena2.put(d1, &p1).unwrap();
        arena2.put(d2, &p2).unwrap();
        arena2.flush().unwrap();
        storage2.corrupt("arena-000000", 40);
        assert!(scan_arenas(&storage2).unwrap_err().is_tamper());
    }

    #[test]
    fn crash_inside_arena_frame_header_is_torn_tail() {
        // Tear the append inside the frame header: after just the magic
        // byte, then mid-way through the two-byte length varint.
        for budget in [1u64, 2] {
            let storage = SimStorage::new();
            let mut arena = ArenaStore::create(storage.clone(), small_cfg()).unwrap();
            let (d1, p1) = blob(1, 40);
            arena.put(d1, &p1).unwrap();
            arena.flush().unwrap();

            storage.set_crash_point(budget);
            let (d2, p2) = blob(2, 150); // record > 127 bytes
            assert_eq!(arena.put(d2, &p2), Err(StoreError::Crashed));

            let (recovered, scan) = ArenaStore::recover(storage.reboot(), small_cfg()).unwrap();
            assert_eq!(scan.torn_bytes, budget);
            assert!(recovered.contains(&d1));
            assert!(!recovered.contains(&d2));
        }
    }

    #[test]
    fn compaction_keeps_live_blobs_and_frees_the_rest() {
        let storage = SimStorage::new();
        let mut arena = ArenaStore::create(storage.clone(), small_cfg()).unwrap();
        let blobs: Vec<_> = (0..6).map(|i| blob(i, 40)).collect();
        for (d, p) in &blobs {
            arena.put(*d, p).unwrap();
        }
        arena.flush().unwrap();
        let live: HashSet<Digest> = blobs[3..].iter().map(|(d, _)| *d).collect();
        let freed = arena.compact(&live).unwrap();
        assert_eq!(freed, 3 * 40);
        assert_eq!(arena.blob_count(), 3);
        for (d, _) in &blobs[..3] {
            assert!(!arena.contains(d));
        }
        for (d, _) in &blobs[3..] {
            assert!(arena.contains(d));
        }

        // Recovery after compaction sees exactly the survivors; new puts
        // land in files whose indices were never used before.
        let (mut recovered, scan) = ArenaStore::recover(storage.reboot(), small_cfg()).unwrap();
        assert_eq!(scan.blobs.len(), 3);
        let (d9, p9) = blob(9, 40);
        recovered.put(d9, &p9).unwrap();
        recovered.flush().unwrap();
        assert_eq!(recovered.blob_count(), 4);
    }

    #[test]
    fn duplicate_records_from_interrupted_compaction_dedup_on_scan() {
        let storage = SimStorage::new();
        let mut arena = ArenaStore::create(storage.clone(), small_cfg()).unwrap();
        let (d, p) = blob(5, 30);
        arena.put(d, &p).unwrap();
        arena.flush().unwrap();
        // Simulate a compaction that wrote the new copy but crashed before
        // deleting the old file: write the same record into a later arena.
        let mut record = Vec::new();
        record.extend_from_slice(d.as_bytes());
        record.extend_from_slice(&p);
        let mut framed = Vec::new();
        write_frame(&mut framed, &record);
        let mut s = storage.clone();
        s.append("arena-000007", &framed).unwrap();

        let (recovered, scan) = ArenaStore::recover(storage.reboot(), small_cfg()).unwrap();
        assert_eq!(scan.blobs.len(), 1);
        assert_eq!(recovered.blob_count(), 1);
        assert_eq!(recovered.stored_bytes(), 30);
    }
}
