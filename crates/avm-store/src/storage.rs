//! The fault-injectable storage abstraction and its two backends.
//!
//! [`Storage`] is a flat namespace of append-only files — exactly what the
//! segment and arena writers need, and small enough that the simulated
//! backend can model crashes at *byte* granularity.  The crash model is the
//! classic torn-write one: when the injected budget runs out mid-append, the
//! write is cut at an arbitrary byte boundary and the process is dead; bytes
//! written before the cut survive in order.  (Durability *cost* is modelled
//! separately by [`crate::fsync::FsyncModel`]; the simulator does not model
//! reordering of non-fsynced writes.)

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use crate::error::StoreError;

/// A minimal flat-namespace append-only file store.
pub trait Storage {
    /// Names of all files, sorted ascending.
    fn list(&self) -> Result<Vec<String>, StoreError>;
    /// Full contents of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError>;
    /// Appends `data` to `name`, creating the file if absent.
    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError>;
    /// Truncates `name` to `len` bytes.
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError>;
    /// Deletes `name`.
    fn remove(&mut self, name: &str) -> Result<(), StoreError>;
    /// Makes every byte appended so far durable (fsync).
    fn sync(&mut self) -> Result<(), StoreError>;
}

#[derive(Debug, Default)]
struct SimInner {
    files: BTreeMap<String, Vec<u8>>,
    /// Bytes the next appends may still write before the simulated machine
    /// loses power mid-write.  `None` disarms injection.
    crash_budget: Option<u64>,
    crashed: bool,
    syncs: u64,
}

/// In-memory storage with crash-point fault injection.
///
/// Clones share the same underlying files, so the segment and arena writers
/// can each hold a handle onto one "disk".  Arm a crash with
/// [`SimStorage::set_crash_point`]; once it fires, every operation returns
/// [`StoreError::Crashed`] until the harness "reboots" via
/// [`SimStorage::reboot`], which hands back a fresh handle over the same
/// persisted bytes — torn tail included.
#[derive(Debug, Clone, Default)]
pub struct SimStorage {
    inner: Rc<RefCell<SimInner>>,
}

impl SimStorage {
    /// An empty simulated disk.
    pub fn new() -> SimStorage {
        SimStorage::default()
    }

    /// Arms the crash point: after `budget` more appended bytes the storage
    /// loses power *mid-write* — the offending append is torn at exactly the
    /// budget boundary and every later operation fails with
    /// [`StoreError::Crashed`].
    pub fn set_crash_point(&self, budget: u64) {
        self.inner.borrow_mut().crash_budget = Some(budget);
    }

    /// Disarms a pending crash point.
    pub fn clear_crash_point(&self) {
        self.inner.borrow_mut().crash_budget = None;
    }

    /// True once the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.inner.borrow().crashed
    }

    /// A fresh handle over the same persisted bytes, as if the machine
    /// rebooted: the crash flag is cleared and injection disarmed, but the
    /// files — torn tail and all — are exactly what the dead process left.
    pub fn reboot(&self) -> SimStorage {
        let inner = self.inner.borrow();
        SimStorage {
            inner: Rc::new(RefCell::new(SimInner {
                files: inner.files.clone(),
                crash_budget: None,
                crashed: false,
                syncs: 0,
            })),
        }
    }

    /// Total bytes across all files (tests and benches).
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .borrow()
            .files
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }

    /// Number of [`Storage::sync`] calls observed on this disk.
    pub fn sync_count(&self) -> u64 {
        self.inner.borrow().syncs
    }

    /// Flips one byte in `name` at `offset` (tamper injection for tests: a
    /// crash can only tear a tail, never rewrite the middle of a file).
    pub fn corrupt(&self, name: &str, offset: usize) {
        let mut inner = self.inner.borrow_mut();
        let file = inner.files.get_mut(name).expect("corrupt: no such file");
        file[offset] ^= 0xff;
    }

    fn check_alive(inner: &SimInner) -> Result<(), StoreError> {
        if inner.crashed {
            Err(StoreError::Crashed)
        } else {
            Ok(())
        }
    }
}

impl Storage for SimStorage {
    fn list(&self) -> Result<Vec<String>, StoreError> {
        let inner = self.inner.borrow();
        Self::check_alive(&inner)?;
        Ok(inner.files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let inner = self.inner.borrow();
        Self::check_alive(&inner)?;
        inner
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::Io(format!("no such file: {name}")))
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.borrow_mut();
        Self::check_alive(&inner)?;
        if let Some(budget) = inner.crash_budget {
            if (data.len() as u64) > budget {
                let keep = budget as usize;
                inner
                    .files
                    .entry(name.to_string())
                    .or_default()
                    .extend_from_slice(&data[..keep]);
                inner.crashed = true;
                return Err(StoreError::Crashed);
            }
            inner.crash_budget = Some(budget - data.len() as u64);
        }
        inner
            .files
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError> {
        let mut inner = self.inner.borrow_mut();
        Self::check_alive(&inner)?;
        let file = inner
            .files
            .get_mut(name)
            .ok_or_else(|| StoreError::Io(format!("no such file: {name}")))?;
        file.truncate(len as usize);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        let mut inner = self.inner.borrow_mut();
        Self::check_alive(&inner)?;
        inner
            .files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::Io(format!("no such file: {name}")))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        let mut inner = self.inner.borrow_mut();
        Self::check_alive(&inner)?;
        inner.syncs += 1;
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

/// What a [`FileStorage`] still has to fsync.
#[derive(Debug, Default)]
struct FileDirty {
    /// Files appended or truncated since the last sync.
    files: BTreeSet<String>,
    /// Directory entries changed (a file created or removed) since the last
    /// sync: the parent directory itself must be fsynced, or a power cut can
    /// lose a freshly created file whose *contents* were durable.
    dir: bool,
}

/// Directory-backed storage: each name is a file directly under `root`.
///
/// `sync` fsyncs every file appended or truncated since the last sync, and
/// the root directory itself whenever files were created or removed.
/// Clones share the dirty-set so multiple writers over one directory sync
/// coherently.
#[derive(Debug, Clone)]
pub struct FileStorage {
    root: PathBuf,
    dirty: Rc<RefCell<FileDirty>>,
}

impl FileStorage {
    /// Opens (creating if needed) the directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<FileStorage, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_err)?;
        Ok(FileStorage {
            root,
            dirty: Rc::new(RefCell::new(FileDirty::default())),
        })
    }

    /// The backing directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Storage for FileStorage {
    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for dent in fs::read_dir(&self.root).map_err(io_err)? {
            let dent = dent.map_err(io_err)?;
            if dent.file_type().map_err(io_err)?.is_file() {
                names.push(dent.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        fs::read(self.path(name)).map_err(io_err)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let path = self.path(name);
        let created = !path.exists();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        file.write_all(data).map_err(io_err)?;
        let mut dirty = self.dirty.borrow_mut();
        dirty.files.insert(name.to_string());
        dirty.dir |= created;
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError> {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(io_err)?;
        file.set_len(len).map_err(io_err)?;
        self.dirty.borrow_mut().files.insert(name.to_string());
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        fs::remove_file(self.path(name)).map_err(io_err)?;
        let mut dirty = self.dirty.borrow_mut();
        dirty.files.remove(name);
        dirty.dir = true;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        let (files, dir) = {
            let mut dirty = self.dirty.borrow_mut();
            (
                std::mem::take(&mut dirty.files),
                std::mem::replace(&mut dirty.dir, false),
            )
        };
        for name in files {
            match fs::File::open(self.path(&name)) {
                Ok(file) => file.sync_all().map_err(io_err)?,
                // Removed since it was dirtied — nothing left to sync.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(e)),
            }
        }
        if dir {
            // File contents first, then the directory entries that point at
            // them: a rotated segment or fresh arena file must not vanish
            // wholesale on a power cut.
            fs::File::open(&self.root)
                .map_err(io_err)?
                .sync_all()
                .map_err(io_err)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_storage_append_read_roundtrip() {
        let mut s = SimStorage::new();
        s.append("a", b"hello ").unwrap();
        s.append("a", b"world").unwrap();
        s.append("b", b"x").unwrap();
        assert_eq!(s.read("a").unwrap(), b"hello world");
        assert_eq!(s.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        s.truncate("a", 5).unwrap();
        assert_eq!(s.read("a").unwrap(), b"hello");
        s.remove("b").unwrap();
        assert!(s.read("b").is_err());
        s.sync().unwrap();
        assert_eq!(s.sync_count(), 1);
    }

    #[test]
    fn crash_point_tears_the_write_and_kills_the_handle() {
        let mut s = SimStorage::new();
        s.append("f", b"0123456789").unwrap();
        s.set_crash_point(4);
        // 10 more bytes requested, only 4 of budget left: torn at byte 4.
        assert_eq!(s.append("f", b"abcdefghij"), Err(StoreError::Crashed));
        assert!(s.crashed());
        assert_eq!(s.read("f"), Err(StoreError::Crashed));
        assert_eq!(s.sync(), Err(StoreError::Crashed));

        let rebooted = s.reboot();
        assert!(!rebooted.crashed());
        assert_eq!(rebooted.read("f").unwrap(), b"0123456789abcd");
    }

    #[test]
    fn crash_budget_spans_multiple_appends() {
        let mut s = SimStorage::new();
        s.set_crash_point(7);
        s.append("f", b"abc").unwrap(); // budget 4 left
        s.append("g", b"de").unwrap(); // budget 2 left
        assert_eq!(s.append("f", b"xyz"), Err(StoreError::Crashed));
        let r = s.reboot();
        assert_eq!(r.read("f").unwrap(), b"abcxy");
        assert_eq!(r.read("g").unwrap(), b"de");
    }

    #[test]
    fn clones_share_the_same_disk() {
        let mut a = SimStorage::new();
        let b = a.clone();
        a.append("f", b"shared").unwrap();
        assert_eq!(b.read("f").unwrap(), b"shared");
    }

    #[test]
    fn file_storage_roundtrip() {
        let dir = std::env::temp_dir().join(format!("avm-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = FileStorage::open(&dir).unwrap();
        s.append("seg-000000", b"abc").unwrap();
        s.append("seg-000000", b"def").unwrap();
        s.append("arena-000000", b"blob").unwrap();
        assert_eq!(s.read("seg-000000").unwrap(), b"abcdef");
        assert_eq!(
            s.list().unwrap(),
            vec!["arena-000000".to_string(), "seg-000000".to_string()]
        );
        s.sync().unwrap();
        s.truncate("seg-000000", 4).unwrap();
        assert_eq!(s.read("seg-000000").unwrap(), b"abcd");
        s.remove("arena-000000").unwrap();
        assert_eq!(s.list().unwrap(), vec!["seg-000000".to_string()]);
        s.sync().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
