//! Error taxonomy for the storage layer.
//!
//! The split matters for accountability: a crash can tear at most the *tail*
//! of the most recently appended file, and recovery silently truncates it.
//! Anything else — a bad checksum in the middle of a segment, a hash-chain
//! break, a seal that does not commit to the entries it claims to cover —
//! can only be produced by rewriting bytes that were already durable, and is
//! reported as [`StoreError::Tamper`] so a provider refuses to restart on
//! evidence it can no longer stand behind.

use std::fmt;

/// Failures surfaced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The simulated crash point fired mid-write.  The "process" is dead:
    /// every further operation on the same handle also fails with this.
    Crashed,
    /// An I/O failure (or misuse) of the backing store.
    Io(String),
    /// Durable bytes fail validation in a way no crash can produce.
    Tamper(TamperKind),
}

/// What kind of tampering was detected, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperKind {
    /// A record frame failed its CRC or framing checks somewhere other than
    /// the torn tail of the final file.
    BadRecord {
        /// File containing the bad record.
        file: String,
        /// Decoder's description of the failure.
        detail: String,
    },
    /// A log entry does not extend the hash chain (wrong hash or a sequence
    /// discontinuity).
    BrokenHashChain {
        /// File containing the offending entry.
        file: String,
        /// Sequence number the offending entry claims.
        seq: u64,
    },
    /// A seal does not match the chain it claims to commit to, or its
    /// signature fails to verify.
    BadSeal {
        /// File containing the seal.
        file: String,
        /// Sequence number the seal commits to.
        seq: u64,
        /// What failed.
        detail: String,
    },
    /// A file violates the cross-file structure: wrong header anchor, a
    /// non-final segment without a trailing seal, an unknown record tag.
    BadSegment {
        /// The offending file.
        file: String,
        /// What failed.
        detail: String,
    },
}

impl StoreError {
    /// True for the tamper-detected class of failures (never produced by a
    /// crash, always by modification of durable bytes).
    pub fn is_tamper(&self) -> bool {
        matches!(self, StoreError::Tamper(_))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Crashed => write!(f, "storage crashed mid-write (fault injection)"),
            StoreError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StoreError::Tamper(kind) => write!(f, "tampering detected: {kind}"),
        }
    }
}

impl fmt::Display for TamperKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamperKind::BadRecord { file, detail } => {
                write!(f, "bad record in {file}: {detail}")
            }
            TamperKind::BrokenHashChain { file, seq } => {
                write!(f, "hash chain broken at entry {seq} in {file}")
            }
            TamperKind::BadSeal { file, seq, detail } => {
                write!(f, "bad seal for entry {seq} in {file}: {detail}")
            }
            TamperKind::BadSegment { file, detail } => {
                write!(f, "bad segment file {file}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}
