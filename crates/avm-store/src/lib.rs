//! Durable storage for the AVMM: append-only log segments and blob arenas.
//!
//! An AVM's tamper-evident log *is* the evidence (paper §3); keeping it only
//! in RAM means a provider restart destroys exactly what audits depend on.
//! This crate persists the two in-memory structures behind a fault-injectable
//! [`Storage`] trait:
//!
//! * [`SegmentStore`] — the log, as CRC-framed records in rotated segment
//!   files with periodic signed *seals* (the provider's own authenticator
//!   chain), scanned and chain-verified on recovery;
//! * [`ArenaStore`] — the content-addressed snapshot payload pool, as
//!   append-only digest+payload arenas with a rebuildable index and
//!   prune-driven compaction.
//!
//! Two backends implement [`Storage`]: [`SimStorage`] (in-memory, with
//! byte-granular crash injection for the fault harness) and [`FileStorage`]
//! (a real directory).  Durability costs are *priced* by [`FsyncModel`] the
//! way `avm_wire::RttModel` prices the network, so the per-entry /
//! per-batch / per-seal [`SyncPolicy`] trade-off is measurable in simulation.
//!
//! The crash-versus-tamper distinction is the load-bearing design point: a
//! crash can only tear the tail of the last-appended file (recovered by
//! silent truncation), while any damage to sealed, durable bytes is reported
//! as [`StoreError::Tamper`] — see [`error`] for the taxonomy.  The
//! recovery-by-replay logic that rebuilds a live provider from these files
//! lives in `avm-core`'s `persist` module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod error;
pub mod fsync;
pub mod segment;
pub mod storage;

pub use arena::{scan_arenas, ArenaConfig, ArenaScan, ArenaStore, ARENA_PREFIX};
pub use error::{StoreError, TamperKind};
pub use fsync::{DurabilityStats, FsyncModel, SyncPolicy};
pub use segment::{
    scan_segments, SegmentConfig, SegmentLog, SegmentScan, SegmentStore, SEGMENT_PREFIX,
};
pub use storage::{FileStorage, SimStorage, Storage};
