//! The database server guest kernel.

use std::collections::BTreeMap;

use avm_vm::packet::{encode_guest_packet, parse_guest_packet};
use avm_vm::{GuestCtx, GuestKernel, GuestStep, VmError};
use avm_wire::{Decode, Encode, Reader, WireResult, Writer};

use crate::proto::{DbRequest, DbResponse};

/// Abstract step cost of executing one request.
const REQUEST_COST: u64 = 300;

/// Configuration of the database guest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbConfig {
    /// Node name of the client the responses are addressed to.
    pub client: String,
    /// Flush the write-ahead region to disk after this many mutations.
    pub flush_every: u64,
}

impl DbConfig {
    /// Creates a configuration replying to `client`.
    pub fn new(client: &str) -> DbConfig {
        DbConfig {
            client: client.to_string(),
            flush_every: 8,
        }
    }
}

impl Encode for DbConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.client);
        w.put_varint(self.flush_every);
    }
}

impl Decode for DbConfig {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(DbConfig {
            client: r.get_string()?,
            flush_every: r.get_varint()?,
        })
    }
}

/// The database server guest kernel: an ordered key-value store with an
/// append-only on-disk log.
#[derive(Debug, Clone)]
pub struct DbServer {
    cfg: DbConfig,
    records: BTreeMap<String, Vec<u8>>,
    mutations: u64,
    requests_served: u64,
    disk_cursor: u64,
}

impl DbServer {
    /// Creates an empty database.
    pub fn new(cfg: DbConfig) -> DbServer {
        DbServer {
            cfg,
            records: BTreeMap::new(),
            mutations: 0,
            requests_served: 0,
            disk_cursor: 0,
        }
    }

    /// Number of records currently stored.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Number of requests served.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    fn execute(&mut self, req: DbRequest, ctx: &mut GuestCtx<'_>) -> DbResponse {
        self.requests_served += 1;
        match req {
            DbRequest::Put { key, value } => {
                self.append_wal(ctx, key.as_bytes(), &value);
                self.records.insert(key, value);
                self.mutations += 1;
                DbResponse::Ok
            }
            DbRequest::Get { key } => match self.records.get(&key) {
                Some(v) => DbResponse::Value(v.clone()),
                None => DbResponse::NotFound,
            },
            DbRequest::Delete { key } => {
                self.append_wal(ctx, key.as_bytes(), b"");
                self.mutations += 1;
                if self.records.remove(&key).is_some() {
                    DbResponse::Ok
                } else {
                    DbResponse::NotFound
                }
            }
            DbRequest::Count { prefix } => {
                let n = self
                    .records
                    .range(prefix.clone()..)
                    .take_while(|(k, _)| k.starts_with(&prefix))
                    .count() as u64;
                DbResponse::Count(n)
            }
        }
    }

    /// Appends a write-ahead record to the virtual disk so snapshots contain
    /// real, growing disk state.
    fn append_wal(&mut self, ctx: &mut GuestCtx<'_>, key: &[u8], value: &[u8]) {
        let mut entry = Vec::with_capacity(key.len() + value.len() + 8);
        entry.extend_from_slice(&(key.len() as u32).to_le_bytes());
        entry.extend_from_slice(key);
        entry.extend_from_slice(&(value.len() as u32).to_le_bytes());
        entry.extend_from_slice(value);
        let disk_size = ctx.disk_size();
        if self.disk_cursor + entry.len() as u64 > disk_size {
            self.disk_cursor = 0; // wrap the WAL region
        }
        if ctx.disk_write(self.disk_cursor, &entry).is_ok() {
            self.disk_cursor += entry.len() as u64;
        }
    }
}

impl GuestKernel for DbServer {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestStep {
        let Some(_now) = ctx.read_clock() else {
            return GuestStep::WaitingClock;
        };
        let mut served = 0u64;
        while let Some(pkt) = ctx.recv_packet() {
            let Some((_dest, body)) = parse_guest_packet(&pkt) else {
                continue;
            };
            let Ok(req) = DbRequest::decode_exact(body) else {
                continue;
            };
            let resp = self.execute(req, ctx);
            let reply = encode_guest_packet(&self.cfg.client.clone(), &resp.encode_to_vec());
            ctx.send_packet(reply);
            served += 1;
        }
        if served == 0 {
            GuestStep::Idle
        } else {
            GuestStep::Ran {
                cost: REQUEST_COST * served,
            }
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.cfg.encode(&mut w);
        w.put_varint(self.records.len() as u64);
        for (k, v) in &self.records {
            w.put_str(k);
            w.put_bytes(v);
        }
        w.put_u64(self.mutations);
        w.put_u64(self.requests_served);
        w.put_u64(self.disk_cursor);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), VmError> {
        fn inner(r: &mut Reader<'_>) -> WireResult<DbServer> {
            let cfg = DbConfig::decode(r)?;
            let mut s = DbServer::new(cfg);
            let n = r.get_varint()?;
            for _ in 0..n {
                let k = r.get_string()?;
                let v = r.get_bytes()?.to_vec();
                s.records.insert(k, v);
            }
            s.mutations = r.get_u64()?;
            s.requests_served = r.get_u64()?;
            s.disk_cursor = r.get_u64()?;
            Ok(s)
        }
        let mut r = Reader::new(bytes);
        let restored = inner(&mut r).map_err(|_| VmError::CorruptState("db server state"))?;
        if !r.is_empty() {
            return Err(VmError::CorruptState("trailing bytes in db server state"));
        }
        *self = restored;
        Ok(())
    }

    fn name(&self) -> &str {
        "db-server"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_vm::devices::DeviceState;
    use avm_vm::mem::GuestMemory;
    use avm_vm::VmExit;

    fn send_request(
        server: &mut DbServer,
        dev: &mut DeviceState,
        mem: &mut GuestMemory,
        req: DbRequest,
    ) -> DbResponse {
        dev.nic
            .inject(encode_guest_packet("server", &req.encode_to_vec()));
        loop {
            let mut ctx = GuestCtx::new(mem, dev);
            let step = server.step(&mut ctx);
            let outs = ctx.into_outputs();
            match step {
                GuestStep::WaitingClock => dev.clock.provide(1_000).unwrap(),
                _ => {
                    for e in outs {
                        if let VmExit::NetTx(p) = e {
                            let (_, body) = parse_guest_packet(&p).unwrap();
                            return DbResponse::decode_exact(body).unwrap();
                        }
                    }
                    panic!("no response produced");
                }
            }
        }
    }

    fn env() -> (DbServer, DeviceState, GuestMemory) {
        (
            DbServer::new(DbConfig::new("client")),
            DeviceState::new(&vec![0u8; 64 * 1024]),
            GuestMemory::new(4096),
        )
    }

    #[test]
    fn put_get_delete_cycle() {
        let (mut server, mut dev, mut mem) = env();
        let r = send_request(
            &mut server,
            &mut dev,
            &mut mem,
            DbRequest::Put {
                key: "users:1".into(),
                value: b"alice".to_vec(),
            },
        );
        assert_eq!(r, DbResponse::Ok);
        let r = send_request(
            &mut server,
            &mut dev,
            &mut mem,
            DbRequest::Get {
                key: "users:1".into(),
            },
        );
        assert_eq!(r, DbResponse::Value(b"alice".to_vec()));
        let r = send_request(
            &mut server,
            &mut dev,
            &mut mem,
            DbRequest::Delete {
                key: "users:1".into(),
            },
        );
        assert_eq!(r, DbResponse::Ok);
        let r = send_request(
            &mut server,
            &mut dev,
            &mut mem,
            DbRequest::Get {
                key: "users:1".into(),
            },
        );
        assert_eq!(r, DbResponse::NotFound);
        assert_eq!(server.requests_served(), 4);
    }

    #[test]
    fn count_with_prefix() {
        let (mut server, mut dev, mut mem) = env();
        for i in 0..10 {
            send_request(
                &mut server,
                &mut dev,
                &mut mem,
                DbRequest::Put {
                    key: format!("users:{i}"),
                    value: vec![i],
                },
            );
        }
        send_request(
            &mut server,
            &mut dev,
            &mut mem,
            DbRequest::Put {
                key: "orders:1".into(),
                value: vec![9],
            },
        );
        let r = send_request(
            &mut server,
            &mut dev,
            &mut mem,
            DbRequest::Count {
                prefix: "users:".into(),
            },
        );
        assert_eq!(r, DbResponse::Count(10));
        assert_eq!(server.record_count(), 11);
    }

    #[test]
    fn mutations_dirty_the_disk() {
        let (mut server, mut dev, mut mem) = env();
        assert!(dev.disk.dirty_blocks().is_empty());
        send_request(
            &mut server,
            &mut dev,
            &mut mem,
            DbRequest::Put {
                key: "k".into(),
                value: vec![0u8; 128],
            },
        );
        assert!(!dev.disk.dirty_blocks().is_empty());
    }

    #[test]
    fn idle_without_requests() {
        let (mut server, mut dev, mut mem) = env();
        dev.clock.guest_read();
        dev.clock.provide(5).unwrap();
        let mut ctx = GuestCtx::new(&mut mem, &mut dev);
        assert_eq!(server.step(&mut ctx), GuestStep::Idle);
    }

    #[test]
    fn state_roundtrip() {
        let (mut server, mut dev, mut mem) = env();
        send_request(
            &mut server,
            &mut dev,
            &mut mem,
            DbRequest::Put {
                key: "a".into(),
                value: b"1".to_vec(),
            },
        );
        let state = server.save_state();
        let mut restored = DbServer::new(DbConfig::new("x"));
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.save_state(), state);
        assert_eq!(restored.record_count(), 1);
        assert!(restored.restore_state(&state[..2]).is_err());
        assert_eq!(restored.name(), "db-server");
    }
}
