//! Request/response protocol of the database guest.

use avm_wire::{Decode, Encode, Reader, WireError, WireResult, Writer};

/// A request to the database server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbRequest {
    /// Insert or overwrite a record.
    Put {
        /// Record key.
        key: String,
        /// Record value.
        value: Vec<u8>,
    },
    /// Read a record.
    Get {
        /// Record key.
        key: String,
    },
    /// Delete a record.
    Delete {
        /// Record key.
        key: String,
    },
    /// Count records whose key starts with a prefix (a tiny "select where").
    Count {
        /// Key prefix.
        prefix: String,
    },
}

impl Encode for DbRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            DbRequest::Put { key, value } => {
                w.put_u8(1);
                w.put_str(key);
                w.put_bytes(value);
            }
            DbRequest::Get { key } => {
                w.put_u8(2);
                w.put_str(key);
            }
            DbRequest::Delete { key } => {
                w.put_u8(3);
                w.put_str(key);
            }
            DbRequest::Count { prefix } => {
                w.put_u8(4);
                w.put_str(prefix);
            }
        }
    }
}

impl Decode for DbRequest {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(match r.get_u8()? {
            1 => DbRequest::Put {
                key: r.get_string()?,
                value: r.get_bytes()?.to_vec(),
            },
            2 => DbRequest::Get {
                key: r.get_string()?,
            },
            3 => DbRequest::Delete {
                key: r.get_string()?,
            },
            4 => DbRequest::Count {
                prefix: r.get_string()?,
            },
            tag => {
                return Err(WireError::InvalidTag {
                    what: "DbRequest",
                    tag: tag as u64,
                })
            }
        })
    }
}

/// A response from the database server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbResponse {
    /// The operation succeeded (Put/Delete).
    Ok,
    /// A Get found the record.
    Value(Vec<u8>),
    /// A Get or Delete did not find the record.
    NotFound,
    /// A Count result.
    Count(u64),
}

impl Encode for DbResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            DbResponse::Ok => w.put_u8(1),
            DbResponse::Value(v) => {
                w.put_u8(2);
                w.put_bytes(v);
            }
            DbResponse::NotFound => w.put_u8(3),
            DbResponse::Count(n) => {
                w.put_u8(4);
                w.put_varint(*n);
            }
        }
    }
}

impl Decode for DbResponse {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(match r.get_u8()? {
            1 => DbResponse::Ok,
            2 => DbResponse::Value(r.get_bytes()?.to_vec()),
            3 => DbResponse::NotFound,
            4 => DbResponse::Count(r.get_varint()?),
            tag => {
                return Err(WireError::InvalidTag {
                    what: "DbResponse",
                    tag: tag as u64,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        for req in [
            DbRequest::Put {
                key: "users:1".into(),
                value: b"alice,100".to_vec(),
            },
            DbRequest::Get {
                key: "users:1".into(),
            },
            DbRequest::Delete {
                key: "users:1".into(),
            },
            DbRequest::Count {
                prefix: "users:".into(),
            },
        ] {
            assert_eq!(DbRequest::decode_exact(&req.encode_to_vec()).unwrap(), req);
        }
        assert!(DbRequest::decode_exact(&[0]).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            DbResponse::Ok,
            DbResponse::Value(vec![1, 2, 3]),
            DbResponse::NotFound,
            DbResponse::Count(42),
        ] {
            assert_eq!(
                DbResponse::decode_exact(&resp.encode_to_vec()).unwrap(),
                resp
            );
        }
        assert!(DbResponse::decode_exact(&[9]).is_err());
    }
}
