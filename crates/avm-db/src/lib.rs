//! A small database server guest and an `sql-bench`-style workload.
//!
//! The paper's spot-checking experiment (§6.12, Figure 9) runs a MySQL
//! server in one AVM and a client running MySQL's `sql-bench` in another,
//! for 75 minutes, with a snapshot every five minutes.  This crate provides
//! the reproduction's stand-in: a deterministic key-value/record store guest
//! ([`DbServer`]) that persists an append-only log to its virtual disk (so
//! incremental disk snapshots have real content), plus a deterministic
//! workload generator ([`workload::WorkloadGen`]) that produces the
//! insert/select/update/delete phases of `sql-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod server;
pub mod workload;

pub use proto::{DbRequest, DbResponse};
pub use server::DbServer;
pub use workload::{WorkloadGen, WorkloadPhase};

use avm_vm::{GuestRegistry, VmError, VmImage};
use avm_wire::Decode;

/// Registry name of the database server guest.
pub const DB_PROGRAM: &str = "avm-db-server";
/// Guest RAM size used by database images.
pub const DB_MEM_SIZE: u64 = 512 * 1024;
/// Virtual disk size used by database images.
pub const DB_DISK_SIZE: usize = 256 * 1024;

/// Returns a guest registry with the database server registered.
pub fn db_registry() -> GuestRegistry {
    let mut reg = GuestRegistry::new();
    reg.register(DB_PROGRAM, |config| {
        let cfg = server::DbConfig::decode_exact(config)
            .map_err(|_| VmError::InvalidImage("bad db config".to_string()))?;
        Ok(Box::new(DbServer::new(cfg)))
    });
    reg
}

/// Builds the database server image.
pub fn db_image(cfg: &server::DbConfig) -> VmImage {
    use avm_wire::Encode;
    VmImage::native("db-server", DB_MEM_SIZE, DB_PROGRAM, cfg.encode_to_vec())
        .with_disk(vec![0u8; DB_DISK_SIZE])
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_wire::Encode;

    #[test]
    fn registry_and_image_wire_up() {
        let cfg = server::DbConfig::new("client");
        let reg = db_registry();
        assert!(reg.instantiate(DB_PROGRAM, &cfg.encode_to_vec()).is_ok());
        assert!(reg.instantiate(DB_PROGRAM, b"junk").is_err());
        let img = db_image(&cfg);
        assert_eq!(img.disk.len(), DB_DISK_SIZE);
        assert_ne!(
            img.digest(),
            db_image(&server::DbConfig::new("other")).digest()
        );
    }
}
