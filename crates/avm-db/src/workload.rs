//! A deterministic `sql-bench`-style workload generator.
//!
//! MySQL's `sql-bench` runs through insert, select, update and delete phases;
//! the generator below produces an equivalent deterministic request stream
//! (no randomness — determinism keeps the whole experiment replayable).

use crate::proto::DbRequest;

/// The benchmark phases, in `sql-bench` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadPhase {
    /// Bulk inserts.
    Insert,
    /// Point lookups.
    Select,
    /// Overwrites of existing records.
    Update,
    /// Deletions.
    Delete,
}

impl WorkloadPhase {
    /// All phases in execution order.
    pub const ALL: [WorkloadPhase; 4] = [
        WorkloadPhase::Insert,
        WorkloadPhase::Select,
        WorkloadPhase::Update,
        WorkloadPhase::Delete,
    ];
}

/// Deterministic request-stream generator.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    rows: u64,
    issued: u64,
}

impl WorkloadGen {
    /// Creates a workload over `rows` logical rows.
    pub fn new(rows: u64) -> WorkloadGen {
        WorkloadGen {
            rows: rows.max(1),
            issued: 0,
        }
    }

    /// Total number of requests the workload will produce.
    pub fn total_requests(&self) -> u64 {
        self.rows * WorkloadPhase::ALL.len() as u64
    }

    /// Number of requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The phase the next request belongs to, or `None` when exhausted.
    pub fn current_phase(&self) -> Option<WorkloadPhase> {
        let idx = self.issued / self.rows;
        WorkloadPhase::ALL.get(idx as usize).copied()
    }

    fn row_value(row: u64, version: u64) -> Vec<u8> {
        format!("row-{row}-v{version}-{}", "x".repeat(32)).into_bytes()
    }

    /// Produces the next request, or `None` when the workload is complete.
    pub fn next_request(&mut self) -> Option<DbRequest> {
        let phase = self.current_phase()?;
        let row = self.issued % self.rows;
        self.issued += 1;
        Some(match phase {
            WorkloadPhase::Insert => DbRequest::Put {
                key: format!("bench:{row:08}"),
                value: Self::row_value(row, 1),
            },
            WorkloadPhase::Select => DbRequest::Get {
                key: format!("bench:{row:08}"),
            },
            WorkloadPhase::Update => DbRequest::Put {
                key: format!("bench:{row:08}"),
                value: Self::row_value(row, 2),
            },
            WorkloadPhase::Delete => DbRequest::Delete {
                key: format!("bench:{row:08}"),
            },
        })
    }

    /// The next request already framed as a guest packet addressed to the
    /// server node `node` — the payload a churn driver wraps in a signed
    /// envelope and delivers to the recording AVMM.
    pub fn next_packet(&mut self, node: &str) -> Option<Vec<u8>> {
        use avm_wire::Encode;
        self.next_request()
            .map(|req| avm_vm::packet::encode_guest_packet(node, &req.encode_to_vec()))
    }
}

impl Iterator for WorkloadGen {
    type Item = DbRequest;

    fn next(&mut self) -> Option<DbRequest> {
        self.next_request()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_run_in_order_and_cover_all_rows() {
        let mut gen = WorkloadGen::new(10);
        assert_eq!(gen.total_requests(), 40);
        assert_eq!(gen.current_phase(), Some(WorkloadPhase::Insert));
        let all: Vec<DbRequest> = (&mut gen).collect();
        assert_eq!(all.len(), 40);
        assert!(matches!(all[0], DbRequest::Put { .. }));
        assert!(matches!(all[10], DbRequest::Get { .. }));
        assert!(matches!(all[20], DbRequest::Put { .. }));
        assert!(matches!(all[30], DbRequest::Delete { .. }));
        assert_eq!(gen.current_phase(), None);
        assert_eq!(gen.issued(), 40);
    }

    #[test]
    fn generator_is_deterministic() {
        let a: Vec<DbRequest> = WorkloadGen::new(25).collect();
        let b: Vec<DbRequest> = WorkloadGen::new(25).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rows_clamped_to_one() {
        let mut gen = WorkloadGen::new(0);
        assert_eq!(gen.total_requests(), 4);
        assert!(gen.next_request().is_some());
    }
}
