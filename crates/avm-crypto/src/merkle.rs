//! Merkle hash trees over snapshot state.
//!
//! The AVMM "maintains a hash tree over the state; after each snapshot, it
//! updates the tree and then records the top-level value in the log"
//! (paper §4.4).  Auditors later download only the parts of the state that
//! replay actually touches and authenticate them against the recorded root
//! using inclusion proofs.
//!
//! # Incremental updates and the invalidation contract
//!
//! [`MerkleTree`] is *persistent*: it keeps every interior level in memory so
//! a leaf replacement only recomputes the O(log n) path to the root
//! ([`MerkleTree::update_leaf_hash`]), and a batch of `d` dirty leaves only
//! recomputes the union of their paths ([`MerkleTree::update_leaf_hashes`] —
//! shared parents are hashed once per level, so a snapshot with `d` dirty
//! pages costs O(d + log n) node hashes rather than O(n)).
//!
//! The contract with callers that cache a tree between snapshots (see
//! `avm-core`'s `StateTreeCache`): every leaf whose underlying data may have
//! changed since the tree was last synchronised **must** be passed to an
//! update call.  The tree itself has no way to detect stale leaves; the
//! VM layer's dirty bits are the source of truth for which leaves to refresh,
//! and updating a leaf with an unchanged hash is always safe (idempotent).

use crate::sha256::{sha256_concat, sha256_multi_prefixed, Digest, DIGEST_LEN};

/// Domain-separation prefixes so leaves can never be confused with nodes.
const LEAF_PREFIX: &[u8] = &[0x00];
const NODE_PREFIX: &[u8] = &[0x01];

/// Hashes a leaf value.
pub fn leaf_hash(data: &[u8]) -> Digest {
    sha256_concat(&[LEAF_PREFIX, data])
}

/// Hashes many leaf values with the multi-buffer core; bit-identical to
/// mapping [`leaf_hash`] over the inputs.
pub fn leaf_hashes(leaves: &[&[u8]]) -> Vec<Digest> {
    sha256_multi_prefixed(LEAF_PREFIX, leaves)
}

/// Hashes two child digests into their parent.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_concat(&[NODE_PREFIX, left.as_bytes(), right.as_bytes()])
}

/// Hashes many `(left, right)` child pairs into their parents with the
/// multi-buffer core; bit-identical to mapping [`node_hash`].
fn node_hashes(pairs: &[(Digest, Digest)]) -> Vec<Digest> {
    let bodies: Vec<[u8; 2 * DIGEST_LEN]> = pairs
        .iter()
        .map(|(l, r)| {
            let mut body = [0u8; 2 * DIGEST_LEN];
            body[..DIGEST_LEN].copy_from_slice(l.as_bytes());
            body[DIGEST_LEN..].copy_from_slice(r.as_bytes());
            body
        })
        .collect();
    let slices: Vec<&[u8]> = bodies.iter().map(|b| b.as_slice()).collect();
    sha256_multi_prefixed(NODE_PREFIX, &slices)
}

/// A Merkle tree over a fixed number of leaves, supporting leaf updates.
///
/// The tree is stored as a flat vector of levels; level 0 holds the leaf
/// hashes.  When the leaf count is not a power of two, odd nodes are promoted
/// unchanged (the usual "duplicate-free" construction).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree from raw leaf data.
    pub fn from_leaves<T: AsRef<[u8]>>(leaves: &[T]) -> MerkleTree {
        let slices: Vec<&[u8]> = leaves.iter().map(|l| l.as_ref()).collect();
        Self::from_leaf_hashes(leaf_hashes(&slices))
    }

    /// Builds a tree from already-hashed leaves.
    pub fn from_leaf_hashes(hashes: Vec<Digest>) -> MerkleTree {
        let mut levels = vec![hashes];
        loop {
            let prev = levels.last().expect("at least one level");
            if prev.len() <= 1 {
                break;
            }
            let pairs: Vec<(Digest, Digest)> = prev
                .chunks_exact(2)
                .map(|pair| (pair[0], pair[1]))
                .collect();
            let mut next = node_hashes(&pairs);
            if prev.len() % 2 == 1 {
                next.push(prev[prev.len() - 1]);
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels.first().map_or(0, |l| l.len())
    }

    /// Root digest; for an empty tree this is the hash of the empty string leaf.
    pub fn root(&self) -> Digest {
        match self.levels.last().and_then(|l| l.first()) {
            Some(d) => *d,
            None => leaf_hash(&[]),
        }
    }

    /// Returns the hash of leaf `index`.
    pub fn leaf(&self, index: usize) -> Option<Digest> {
        self.levels.first().and_then(|l| l.get(index)).copied()
    }

    /// Replaces leaf `index` with new data and updates the path to the root.
    ///
    /// Returns `false` if the index is out of range.
    pub fn update_leaf(&mut self, index: usize, data: &[u8]) -> bool {
        self.update_leaf_hash(index, leaf_hash(data))
    }

    /// Replaces leaf `index` with an already-computed hash.
    pub fn update_leaf_hash(&mut self, index: usize, hash: Digest) -> bool {
        if self.levels.is_empty() || index >= self.levels[0].len() {
            return false;
        }
        self.levels[0][index] = hash;
        let mut idx = index;
        for level in 0..self.levels.len() - 1 {
            idx /= 2;
            let lower = &self.levels[level];
            let left = lower[idx * 2];
            let parent = if idx * 2 + 1 < lower.len() {
                node_hash(&left, &lower[idx * 2 + 1])
            } else {
                left
            };
            self.levels[level + 1][idx] = parent;
        }
        true
    }

    /// Replaces a batch of leaves and recomputes each affected interior node
    /// exactly once per level.
    ///
    /// For `d` updated leaves this costs O(d + log n) node hashes (the union
    /// of the d root paths), versus O(d · log n) for repeated
    /// [`MerkleTree::update_leaf_hash`] calls when the dirty leaves cluster.
    /// Duplicate indices are allowed; the last hash for an index wins.
    ///
    /// Returns `false` (and applies nothing) if any index is out of range.
    pub fn update_leaf_hashes(&mut self, updates: &[(usize, Digest)]) -> bool {
        if updates.is_empty() {
            return true;
        }
        let Some(leaf_level) = self.levels.first() else {
            return false;
        };
        let leaf_count = leaf_level.len();
        if updates.iter().any(|(i, _)| *i >= leaf_count) {
            return false;
        }
        let mut touched: Vec<usize> = Vec::with_capacity(updates.len());
        for &(i, hash) in updates {
            self.levels[0][i] = hash;
            touched.push(i);
        }
        touched.sort_unstable();
        touched.dedup();
        for level in 0..self.levels.len() - 1 {
            // Map touched node indices to their parents, deduplicating as we
            // go (the list stays sorted, so consecutive duplicates suffice).
            let mut parents: Vec<usize> = Vec::with_capacity(touched.len());
            for &idx in &touched {
                let parent = idx / 2;
                if parents.last() != Some(&parent) {
                    parents.push(parent);
                }
            }
            let (lower, upper) = {
                let (a, b) = self.levels.split_at_mut(level + 1);
                (&a[level], &mut b[0])
            };
            // Hash every full parent pair in one multi-buffer batch; an odd
            // trailing node is promoted unchanged as usual.
            let full: Vec<usize> = parents
                .iter()
                .copied()
                .filter(|&p| p * 2 + 1 < lower.len())
                .collect();
            let pairs: Vec<(Digest, Digest)> = full
                .iter()
                .map(|&p| (lower[p * 2], lower[p * 2 + 1]))
                .collect();
            for (&p, hash) in full.iter().zip(node_hashes(&pairs)) {
                upper[p] = hash;
            }
            for &p in &parents {
                if p * 2 + 1 >= lower.len() {
                    upper[p] = lower[p * 2];
                }
            }
            touched = parents;
        }
        true
    }

    /// Produces an inclusion proof for leaf `index`.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if self.levels.is_empty() || index >= self.levels[0].len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in 0..self.levels.len() - 1 {
            let nodes = &self.levels[level];
            let sibling_idx = idx ^ 1;
            if sibling_idx < nodes.len() {
                siblings.push(ProofStep {
                    hash: nodes[sibling_idx],
                    sibling_on_left: sibling_idx < idx,
                });
            }
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            siblings,
        })
    }
}

/// One step of an inclusion proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    /// Sibling hash to combine with.
    pub hash: Digest,
    /// Whether the sibling is the left child.
    pub sibling_on_left: bool,
}

/// Inclusion proof: the path of sibling hashes from a leaf up to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Sibling hashes, bottom-up.
    pub siblings: Vec<ProofStep>,
}

impl MerkleProof {
    /// Verifies that `leaf_data` at this proof's index yields `root`.
    pub fn verify(&self, leaf_data: &[u8], root: &Digest) -> bool {
        self.verify_hash(leaf_hash(leaf_data), root)
    }

    /// Verifies starting from an already-hashed leaf.
    pub fn verify_hash(&self, leaf: Digest, root: &Digest) -> bool {
        let mut acc = leaf;
        for step in &self.siblings {
            acc = if step.sibling_on_left {
                node_hash(&step.hash, &acc)
            } else {
                node_hash(&acc, &step.hash)
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("page-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_leaves(&[b"only".to_vec()]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn empty_tree_has_defined_root() {
        let tree = MerkleTree::from_leaves::<Vec<u8>>(&[]);
        assert_eq!(tree.root(), leaf_hash(&[]));
        assert_eq!(tree.leaf_count(), 0);
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn two_leaves_match_manual_computation() {
        let tree = MerkleTree::from_leaves(&[b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(tree.root(), node_hash(&leaf_hash(b"a"), &leaf_hash(b"b")));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let data = leaves(n);
            let tree = MerkleTree::from_leaves(&data);
            let root = tree.root();
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(leaf, &root), "n={n} leaf={i}");
                // A proof for the wrong data must fail.
                assert!(!proof.verify(b"wrong", &root), "n={n} leaf={i}");
            }
        }
    }

    #[test]
    fn proof_against_wrong_root_fails() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data);
        let other = MerkleTree::from_leaves(&leaves(9));
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&data[3], &other.root()));
    }

    #[test]
    fn update_leaf_changes_root_consistently() {
        let data = leaves(10);
        let mut tree = MerkleTree::from_leaves(&data);
        let before = tree.root();
        assert!(tree.update_leaf(4, b"new content"));
        let after = tree.root();
        assert_ne!(before, after);

        // Rebuilding from scratch with the same change yields the same root.
        let mut rebuilt_data = data.clone();
        rebuilt_data[4] = b"new content".to_vec();
        let rebuilt = MerkleTree::from_leaves(&rebuilt_data);
        assert_eq!(after, rebuilt.root());

        // Proofs issued after the update verify against the new root.
        let proof = tree.prove(4).unwrap();
        assert!(proof.verify(b"new content", &after));
    }

    #[test]
    fn update_out_of_range_rejected() {
        let mut tree = MerkleTree::from_leaves(&leaves(3));
        assert!(!tree.update_leaf(3, b"nope"));
    }

    #[test]
    fn odd_shapes_update_consistency() {
        for n in [3usize, 5, 6, 7, 9, 11, 13] {
            let data = leaves(n);
            let mut tree = MerkleTree::from_leaves(&data);
            for i in 0..n {
                tree.update_leaf(i, format!("updated-{i}").as_bytes());
            }
            let rebuilt: Vec<Vec<u8>> = (0..n)
                .map(|i| format!("updated-{i}").into_bytes())
                .collect();
            assert_eq!(
                tree.root(),
                MerkleTree::from_leaves(&rebuilt).root(),
                "n={n}"
            );
        }
    }

    #[test]
    fn batch_update_matches_rebuild_and_single_updates() {
        for n in [1usize, 2, 3, 5, 8, 11, 16, 17, 31] {
            let data = leaves(n);
            let mut batch_tree = MerkleTree::from_leaves(&data);
            let mut single_tree = batch_tree.clone();
            // Update a spread of leaves: first, last, and every third.
            let updates: Vec<(usize, Digest)> = (0..n)
                .filter(|i| *i == 0 || *i == n - 1 || i % 3 == 0)
                .map(|i| (i, leaf_hash(format!("upd-{i}").as_bytes())))
                .collect();
            assert!(batch_tree.update_leaf_hashes(&updates));
            for &(i, h) in &updates {
                assert!(single_tree.update_leaf_hash(i, h));
            }
            let mut rebuilt = data.clone();
            for &(i, _) in &updates {
                rebuilt[i] = format!("upd-{i}").into_bytes();
            }
            let rebuilt = MerkleTree::from_leaves(&rebuilt);
            assert_eq!(batch_tree.root(), rebuilt.root(), "n={n}");
            assert_eq!(single_tree.root(), rebuilt.root(), "n={n}");
        }
    }

    #[test]
    fn batch_update_rejects_out_of_range_atomically() {
        let mut tree = MerkleTree::from_leaves(&leaves(4));
        let before = tree.root();
        let updates = [(1, leaf_hash(b"x")), (4, leaf_hash(b"oob"))];
        assert!(!tree.update_leaf_hashes(&updates));
        assert_eq!(tree.root(), before, "failed batch must not change the tree");
        // Empty batch is a no-op success.
        assert!(tree.update_leaf_hashes(&[]));
        // Duplicate indices: last hash wins.
        let mut dup = tree.clone();
        assert!(dup.update_leaf_hashes(&[(2, leaf_hash(b"a")), (2, leaf_hash(b"b"))]));
        let mut direct = tree.clone();
        direct.update_leaf_hash(2, leaf_hash(b"b"));
        assert_eq!(dup.root(), direct.root());
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A node hash over (a,b) must differ from a leaf hash of the concatenation.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let node = node_hash(&a, &b);
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        assert_ne!(node, leaf_hash(&concat));
    }
}
