//! A small hand-rolled worker pool for batch hashing and generic tasks.
//!
//! Refreshing a Merkle state tree hashes every dirty leaf — embarrassingly
//! parallel work that the workspace's no-external-deps constraint keeps us
//! from handing to rayon.  [`sha256_batch`] provides the one primitive the
//! snapshot pipeline needs: hash a batch of byte slices, preserving input
//! order, fanning the work across worker threads when the batch is large
//! enough to amortise the coordination cost.
//!
//! The same parked threads also run **generic closures**
//! ([`WorkerPool::run_tasks`]): the parallel audit replay engine ships one
//! independent `(start snapshot, log segment)` replay unit per task and
//! collects the outcomes in input order.  Hash jobs and task jobs share one
//! queue, so a pool saturated with replay units still drains dirty-leaf
//! batches between them; the flattened-part hash path is untouched and
//! remains the fast path.
//!
//! Large batches are served by a **long-lived** [`WorkerPool`]: a fixed set
//! of parked threads fed through a mutex-protected queue, created once per
//! process ([`global_pool`]) instead of re-spawning `std::thread::scope`
//! workers on every call.  Under a fleet of concurrent auditors the provider
//! hashes thousands of batches per simulated second; amortising the spawn
//! cost (tens of microseconds per thread) across the process lifetime is
//! what makes that affordable.  The workspace forbids `unsafe`, so a parked
//! worker cannot borrow the caller's slices the way a scoped thread could:
//! each dispatched part instead carries one flat owned copy of its payload
//! (a single allocation + memcpy, far cheaper than the hashing itself),
//! while the calling thread hashes the *first* part directly from the
//! borrowed input and then waits for the pool to finish the rest.
//!
//! The batch is split into contiguous ranges so results concatenate back in
//! input order, and small batches take a serial fast path.  Hashing a 512 B
//! chunk costs a few microseconds, so the [`MIN_PER_WORKER`] threshold keeps
//! per-part coordination overhead well under the work each part receives.
//!
//! Within every thread — the serial fast path, the caller's own part, and
//! each worker's flattened part — hashing runs through the multi-buffer
//! [`sha256_multi`] core, which compresses up to 8 independent messages per
//! pass, so thread-level and lane-level parallelism compose.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::sha256::{sha256_multi, Digest};

/// Minimum number of inputs each worker must receive before an extra thread
/// is worth spawning (the count-based bound, sized for 512 B chunk leaves).
pub const MIN_PER_WORKER: usize = 64;

/// Minimum payload bytes each worker must receive before an extra thread is
/// worth spawning — the *measured-cost* bound: SHA-256 time scales with
/// input bytes, and 32 KiB of hashing (a few hundred µs) comfortably
/// amortises the dispatch overhead.  Equal to `MIN_PER_WORKER` 512 B
/// chunks, so the chunk-leaf path behaves exactly as before, while batches
/// of larger inputs (4 KiB disk blocks, whole sections) fan out at
/// proportionally smaller counts.
pub const MIN_BYTES_PER_WORKER: usize = MIN_PER_WORKER * 512;

/// Hard cap on concurrent hashing threads (pool workers plus the calling
/// thread) — the hashing stage is meant to soak up a few otherwise-idle
/// cores, not the whole machine.
pub const MAX_WORKERS: usize = 8;

/// Number of hashing threads [`sha256_batch`] would use for a batch of `n`
/// inputs on this host, assuming chunk-sized inputs (1 = serial fast path).
///
/// This is the count-only estimate; [`batch_workers_for`] additionally
/// weighs the batch's actual payload bytes.
pub fn batch_workers(n: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    avail.min(MAX_WORKERS).min(n / MIN_PER_WORKER).max(1)
}

/// Adaptive worker count for a concrete batch: scales with the *work* in the
/// batch — both input count and total payload bytes — instead of occupying a
/// fixed-size pool.  Tiny dirty sets stay serial; a handful of large inputs
/// still parallelises even though their count alone would not justify it.
pub fn batch_workers_for(inputs: &[&[u8]]) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    let total_bytes: usize = inputs.iter().map(|i| i.len()).sum();
    let by_count = inputs.len() / MIN_PER_WORKER;
    let by_bytes = total_bytes / MIN_BYTES_PER_WORKER;
    avail
        .min(MAX_WORKERS)
        .min(by_count.max(by_bytes))
        .min(inputs.len())
        .max(1)
}

/// One part of a batch, flattened into a single owned buffer so handing it
/// to a parked worker costs one allocation + memcpy instead of one per
/// input.  `ends[i]` is the end offset of input `i` within `payload`.
struct FlatPart {
    payload: Vec<u8>,
    ends: Vec<usize>,
}

impl FlatPart {
    fn copy_from(inputs: &[&[u8]]) -> FlatPart {
        let total: usize = inputs.iter().map(|i| i.len()).sum();
        let mut payload = Vec::with_capacity(total);
        let mut ends = Vec::with_capacity(inputs.len());
        for input in inputs {
            payload.extend_from_slice(input);
            ends.push(payload.len());
        }
        FlatPart { payload, ends }
    }

    fn hash_all(&self) -> Vec<Digest> {
        let mut start = 0;
        let slices: Vec<&[u8]> = self
            .ends
            .iter()
            .map(|&end| {
                let slice = &self.payload[start..end];
                start = end;
                slice
            })
            .collect();
        sha256_multi(&slices)
    }
}

/// Completion latch for one in-flight batch: dispatched parts store their
/// digests into `parts` (indexed by part number) and the last one to finish
/// wakes the caller.
struct BatchState {
    progress: Mutex<BatchProgress>,
    finished: Condvar,
}

struct BatchProgress {
    parts: Vec<Option<Vec<Digest>>>,
    remaining: usize,
}

/// Completion latch for one in-flight [`WorkerPool::run_tasks`] call: each
/// finished task decrements `remaining` and the last one wakes the caller.
/// (Results travel inside the task closures themselves, which write into a
/// shared slot vector — the latch only counts.)
struct TaskLatch {
    remaining: Mutex<usize>,
    finished: Condvar,
}

/// One unit of queued work: a flattened hash part (the original fast path)
/// or a generic closure.
enum Job {
    Hash {
        part: FlatPart,
        batch: Arc<BatchState>,
        slot: usize,
    },
    Task {
        run: Box<dyn FnOnce() + Send + 'static>,
        latch: Arc<TaskLatch>,
    },
}

struct PoolQueue {
    jobs: VecDeque<Job>,
    stop: bool,
}

struct PoolInner {
    queue: Mutex<PoolQueue>,
    work_ready: Condvar,
    busy: AtomicUsize,
    peak_busy: AtomicUsize,
    jobs_dispatched: AtomicU64,
    batches_dispatched: AtomicU64,
    tasks_dispatched: AtomicU64,
}

/// Occupancy counters for a [`WorkerPool`], for capacity reports: how many
/// threads the pool keeps parked, how much work has flowed through it, and
/// the high-water mark of simultaneously busy workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Long-lived worker threads owned by the pool.
    pub workers: usize,
    /// Parts dispatched to pool workers over the pool's lifetime (the
    /// calling thread's own part is not counted — it never queues).
    pub jobs: u64,
    /// Batches that fanned out through the pool.
    pub batches: u64,
    /// Generic closure tasks dispatched to pool workers ([`WorkerPool::
    /// run_tasks`]; the calling thread's own task is not counted — it never
    /// queues).
    pub tasks: u64,
    /// Most workers observed busy (hashing or running a task) at the same
    /// instant.
    pub peak_busy: usize,
}

impl PoolStats {
    /// Counters accumulated since `earlier` (workers is a size, not a
    /// counter, and carries over) — for per-run telemetry deltas.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            workers: self.workers,
            jobs: self.jobs - earlier.jobs,
            batches: self.batches - earlier.batches,
            tasks: self.tasks - earlier.tasks,
            peak_busy: self.peak_busy,
        }
    }
}

/// A fixed set of long-lived parked threads hashing flattened batch parts
/// from a shared queue.
///
/// Created once per process by [`global_pool`]; tests may build private
/// pools.  Dropping a pool stops and joins its threads.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool of exactly `workers` parked threads (minimum 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                stop: false,
            }),
            work_ready: Condvar::new(),
            busy: AtomicUsize::new(0),
            peak_busy: AtomicUsize::new(0),
            jobs_dispatched: AtomicU64::new(0),
            batches_dispatched: AtomicU64::new(0),
            tasks_dispatched: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        WorkerPool { inner, threads }
    }

    /// Number of parked worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Lifetime occupancy counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.threads.len(),
            jobs: self.inner.jobs_dispatched.load(Ordering::Relaxed),
            batches: self.inner.batches_dispatched.load(Ordering::Relaxed),
            tasks: self.inner.tasks_dispatched.load(Ordering::Relaxed),
            peak_busy: self.inner.peak_busy.load(Ordering::Relaxed),
        }
    }

    /// Hashes every input, returning digests in input order — bit-identical
    /// to `inputs.iter().map(|i| sha256(i)).collect()`.
    ///
    /// The batch is split into `parts` contiguous ranges (clamped to the
    /// input count); the calling thread hashes the first range directly from
    /// the borrowed inputs while the remaining ranges are copied, queued,
    /// and hashed by pool workers.
    pub fn hash_batch(&self, inputs: &[&[u8]], parts: usize) -> Vec<Digest> {
        let parts = parts.min(inputs.len()).max(1);
        if parts <= 1 {
            return sha256_multi(inputs);
        }
        // Contiguous ranges, remainder spread over the first parts, so the
        // concatenated results preserve input order.
        let per = inputs.len() / parts;
        let rem = inputs.len() % parts;
        let first = per + usize::from(rem > 0);
        let batch = Arc::new(BatchState {
            progress: Mutex::new(BatchProgress {
                parts: (1..parts).map(|_| None).collect(),
                remaining: parts - 1,
            }),
            finished: Condvar::new(),
        });
        {
            let mut queue = self.inner.queue.lock().unwrap();
            let mut offset = first;
            for w in 1..parts {
                let take = per + usize::from(w < rem);
                queue.jobs.push_back(Job::Hash {
                    part: FlatPart::copy_from(&inputs[offset..offset + take]),
                    batch: Arc::clone(&batch),
                    slot: w - 1,
                });
                offset += take;
            }
            debug_assert_eq!(offset, inputs.len());
            self.inner
                .jobs_dispatched
                .fetch_add(parts as u64 - 1, Ordering::Relaxed);
            self.inner
                .batches_dispatched
                .fetch_add(1, Ordering::Relaxed);
            self.inner.work_ready.notify_all();
        }
        let mut out = Vec::with_capacity(inputs.len());
        out.extend(sha256_multi(&inputs[..first]));
        let mut progress = batch.progress.lock().unwrap();
        while progress.remaining > 0 {
            progress = batch.finished.wait(progress).unwrap();
        }
        for slot in progress.parts.iter_mut() {
            out.extend(slot.take().expect("finished batch part missing"));
        }
        out
    }

    /// Runs every closure, returning the results in input order.
    ///
    /// Mirrors [`WorkerPool::hash_batch`]'s structure: the calling thread
    /// runs the *first* task itself while the remaining tasks are queued for
    /// pool workers, so a `run_tasks` call always makes progress even on a
    /// saturated (or single-worker) pool.  Tasks must own their inputs
    /// (`'static`): the workspace forbids `unsafe`, so a parked worker
    /// cannot borrow the caller's stack the way a scoped thread could.
    ///
    /// A panicking task poisons its result mutex and propagates the panic to
    /// the caller — it is not swallowed.
    pub fn run_tasks<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        let mut iter = tasks.into_iter();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        if n == 1 {
            return vec![first()];
        }
        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let latch = Arc::new(TaskLatch {
            remaining: Mutex::new(n - 1),
            finished: Condvar::new(),
        });
        {
            let mut queue = self.inner.queue.lock().unwrap();
            for (offset, task) in iter.enumerate() {
                let slot = offset + 1;
                let results = Arc::clone(&results);
                queue.jobs.push_back(Job::Task {
                    run: Box::new(move || {
                        let value = task();
                        results.lock().unwrap()[slot] = Some(value);
                    }),
                    latch: Arc::clone(&latch),
                });
            }
            self.inner
                .tasks_dispatched
                .fetch_add(n as u64 - 1, Ordering::Relaxed);
            self.inner.work_ready.notify_all();
        }
        let first_value = first();
        results.lock().unwrap()[0] = Some(first_value);
        let mut remaining = latch.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = latch.finished.wait(remaining).unwrap();
        }
        drop(remaining);
        let mut slots = results.lock().unwrap();
        slots
            .iter_mut()
            .map(|slot| slot.take().expect("finished task result missing"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.queue.lock().unwrap().stop = true;
        self.inner.work_ready.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.stop {
                    return;
                }
                queue = inner.work_ready.wait(queue).unwrap();
            }
        };
        let busy = inner.busy.fetch_add(1, Ordering::Relaxed) + 1;
        inner.peak_busy.fetch_max(busy, Ordering::Relaxed);
        match job {
            Job::Hash { part, batch, slot } => {
                let digests = part.hash_all();
                let mut progress = batch.progress.lock().unwrap();
                progress.parts[slot] = Some(digests);
                progress.remaining -= 1;
                if progress.remaining == 0 {
                    batch.finished.notify_all();
                }
            }
            Job::Task { run, latch } => {
                // The closure stores its own result; the latch only counts.
                run();
                let mut remaining = latch.remaining.lock().unwrap();
                *remaining -= 1;
                if *remaining == 0 {
                    latch.finished.notify_all();
                }
            }
        }
        inner.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The process-wide hashing pool, created on first use.  Sized one below the
/// [`MAX_WORKERS`]/core bound because the calling thread always contributes
/// a part of its own.
pub fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
        WorkerPool::new(avail.min(MAX_WORKERS).saturating_sub(1).max(1))
    })
}

/// Occupancy counters of the process-wide pool ([`global_pool`]).
pub fn global_pool_stats() -> PoolStats {
    global_pool().stats()
}

/// Hashes every input slice, returning digests in input order.
///
/// Equivalent to `inputs.iter().map(|i| sha256(i)).collect()` — bit-identical
/// output, checked by tests — but large batches are fanned across the
/// long-lived [`global_pool`] so dirty-leaf hashing scales with cores without
/// paying a thread spawn per batch.  The part count adapts to the batch
/// ([`batch_workers_for`]): a tiny dirty set never pays for coordination it
/// cannot feed.
pub fn sha256_batch(inputs: &[&[u8]]) -> Vec<Digest> {
    let workers = batch_workers_for(inputs);
    if workers <= 1 {
        return sha256_multi(inputs);
    }
    global_pool().hash_batch(inputs, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn matches_serial_hashing_for_all_sizes() {
        // Straddle the serial/parallel threshold in both directions.
        for n in [0usize, 1, 5, MIN_PER_WORKER, 4 * MIN_PER_WORKER + 3] {
            let data: Vec<Vec<u8>> = (0..n)
                .map(|i| vec![(i % 251) as u8; 64 + (i % 7) * 100])
                .collect();
            let slices: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let batch = sha256_batch(&slices);
            let serial: Vec<Digest> = slices.iter().map(|s| sha256(s)).collect();
            assert_eq!(batch, serial, "n={n}");
        }
    }

    #[test]
    fn worker_count_is_bounded() {
        assert_eq!(batch_workers(0), 1);
        assert_eq!(batch_workers(MIN_PER_WORKER - 1), 1);
        assert!(batch_workers(MAX_WORKERS * MIN_PER_WORKER * 4) <= MAX_WORKERS);
        assert!(batch_workers(usize::MAX) >= 1);
    }

    #[test]
    fn adaptive_worker_count_scales_with_batch_work() {
        let slices_of =
            |n: usize, len: usize| -> Vec<Vec<u8>> { (0..n).map(|_| vec![0u8; len]).collect() };
        // Empty and tiny dirty sets: strictly serial.
        assert_eq!(batch_workers_for(&[]), 1);
        let tiny = slices_of(3, 512);
        let tiny_refs: Vec<&[u8]> = tiny.iter().map(|v| v.as_slice()).collect();
        assert_eq!(batch_workers_for(&tiny_refs), 1);
        // Chunk-sized inputs behave exactly like the count-only estimate.
        for n in [MIN_PER_WORKER - 1, MIN_PER_WORKER, 4 * MIN_PER_WORKER] {
            let chunks = slices_of(n, 512);
            let refs: Vec<&[u8]> = chunks.iter().map(|v| v.as_slice()).collect();
            assert_eq!(batch_workers_for(&refs), batch_workers(n), "n={n}");
        }
        // A few large inputs parallelise even though their count alone
        // would not justify a second thread (if cores are available).
        let blocks = slices_of(16, 64 * 1024);
        let refs: Vec<&[u8]> = blocks.iter().map(|v| v.as_slice()).collect();
        let workers = batch_workers_for(&refs);
        assert!(workers <= MAX_WORKERS.min(16));
        let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
        if avail > 1 {
            assert!(
                workers > 1,
                "16 × 64 KiB of hashing must fan out on a multi-core host"
            );
        }
        // Never more workers than inputs.
        let two = slices_of(2, 10 * MIN_BYTES_PER_WORKER);
        let refs: Vec<&[u8]> = two.iter().map(|v| v.as_slice()).collect();
        assert!(batch_workers_for(&refs) <= 2);
    }

    #[test]
    fn pool_output_matches_serial_for_every_part_count() {
        let pool = WorkerPool::new(3);
        let data: Vec<Vec<u8>> = (0..97).map(|i| vec![i as u8; 1 + (i % 50)]).collect();
        let slices: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial: Vec<Digest> = slices.iter().map(|s| sha256(s)).collect();
        // Part counts below, at, and beyond both the pool size and the
        // input count; all must concatenate back in input order.
        for parts in [1usize, 2, 3, 4, 8, 97, 200] {
            assert_eq!(pool.hash_batch(&slices, parts), serial, "parts={parts}");
        }
    }

    #[test]
    fn pool_reuses_threads_and_counts_occupancy() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        assert_eq!(
            pool.stats(),
            PoolStats {
                workers: 2,
                ..PoolStats::default()
            }
        );
        let data: Vec<Vec<u8>> = (0..256).map(|i| vec![i as u8; 512]).collect();
        let slices: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        for _ in 0..5 {
            pool.hash_batch(&slices, 3);
        }
        let stats = pool.stats();
        // 3 parts per batch = 2 dispatched jobs (the caller hashes part 0).
        assert_eq!(stats.batches, 5);
        assert_eq!(stats.jobs, 10);
        assert!(stats.peak_busy >= 1 && stats.peak_busy <= 2);
        // Serial fast path never touches the queue.
        pool.hash_batch(&slices[..1], 1);
        assert_eq!(pool.stats().batches, 5);
    }

    #[test]
    fn run_tasks_preserves_input_order_and_counts_tasks() {
        let pool = WorkerPool::new(3);
        // Empty and singleton calls never touch the queue.
        let none: Vec<fn() -> u64> = Vec::new();
        assert!(pool.run_tasks(none).is_empty());
        assert_eq!(pool.run_tasks(vec![|| 7u64]), vec![7]);
        assert_eq!(pool.stats().tasks, 0);
        // Results come back in input order regardless of which thread ran
        // each task or how long it took.
        let tasks: Vec<_> = (0..25u64)
            .map(|i| {
                move || {
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(50 * (25 - i)));
                    }
                    i * i
                }
            })
            .collect();
        let out = pool.run_tasks(tasks);
        assert_eq!(out, (0..25u64).map(|i| i * i).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!(stats.tasks, 24); // the caller ran task 0 inline
        assert_eq!(stats.jobs, 0); // no hash parts were dispatched
    }

    #[test]
    fn tasks_and_hash_batches_share_the_pool() {
        let pool = WorkerPool::new(2);
        let data: Vec<Vec<u8>> = (0..256).map(|i| vec![i as u8; 512]).collect();
        let slices: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial: Vec<Digest> = slices.iter().map(|s| sha256(s)).collect();
        assert_eq!(pool.hash_batch(&slices, 3), serial);
        let sums = pool.run_tasks(
            (0..4u64)
                .map(|i| move || (0..=i).sum::<u64>())
                .collect::<Vec<_>>(),
        );
        assert_eq!(sums, vec![0, 1, 3, 6]);
        assert_eq!(pool.hash_batch(&slices, 3), serial);
        let stats = pool.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.tasks, 3);
    }

    #[test]
    fn pool_stats_since_reports_the_delta() {
        let pool = WorkerPool::new(2);
        let before = pool.stats();
        pool.run_tasks((0..3u64).map(|i| move || i).collect::<Vec<_>>());
        let delta = pool.stats().since(&before);
        assert_eq!(delta.workers, 2);
        assert_eq!(delta.tasks, 2);
        assert_eq!(delta.jobs, 0);
        assert_eq!(delta.batches, 0);
    }

    #[test]
    fn global_pool_is_shared_and_reports_stats() {
        let before = global_pool_stats();
        assert!(before.workers >= 1);
        let data: Vec<Vec<u8>> = (0..4 * MIN_PER_WORKER)
            .map(|i| vec![i as u8; 512])
            .collect();
        let slices: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let out = sha256_batch(&slices);
        assert_eq!(out[7], sha256(&data[7]));
        let after = global_pool_stats();
        assert_eq!(after.workers, before.workers);
        if batch_workers_for(&slices) > 1 {
            assert!(after.batches > before.batches);
        }
    }
}
