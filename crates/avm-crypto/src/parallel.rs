//! A small hand-rolled scoped-thread worker pool for batch hashing.
//!
//! Refreshing a Merkle state tree hashes every dirty leaf — embarrassingly
//! parallel work that the workspace's no-external-deps constraint keeps us
//! from handing to rayon.  [`sha256_batch`] provides the one primitive the
//! snapshot pipeline needs: hash a batch of byte slices, preserving input
//! order, fanning the work across `std::thread::scope` workers when the batch
//! is large enough to amortise thread startup.
//!
//! The pool is deliberately minimal: workers are spawned per call (scoped
//! threads make the borrow of the input slices safe without `Arc`), the batch
//! is split into contiguous ranges so each worker writes a disjoint region of
//! the output, and small batches take a serial fast path.  Hashing a 512 B
//! chunk costs a few microseconds, so the [`MIN_PER_WORKER`] threshold keeps
//! per-call thread overhead (tens of microseconds) well under the work each
//! worker receives.

use crate::sha256::{sha256, Digest};

/// Minimum number of inputs each worker must receive before an extra thread
/// is worth spawning.
pub const MIN_PER_WORKER: usize = 64;

/// Hard cap on worker threads — the hashing stage is meant to soak up a few
/// otherwise-idle cores, not the whole machine.
pub const MAX_WORKERS: usize = 8;

/// Number of worker threads [`sha256_batch`] would use for a batch of `n`
/// inputs on this host (1 = serial fast path).
pub fn batch_workers(n: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    avail.min(MAX_WORKERS).min(n / MIN_PER_WORKER).max(1)
}

/// Hashes every input slice, returning digests in input order.
///
/// Equivalent to `inputs.iter().map(|i| sha256(i)).collect()` — bit-identical
/// output, checked by tests — but large batches are fanned across a scoped
/// worker pool so dirty-leaf hashing scales with cores.
pub fn sha256_batch(inputs: &[&[u8]]) -> Vec<Digest> {
    let workers = batch_workers(inputs.len());
    if workers <= 1 {
        return inputs.iter().map(|data| sha256(data)).collect();
    }
    let mut out = vec![Digest([0u8; 32]); inputs.len()];
    // Contiguous ranges, remainder spread over the first workers, so every
    // output slot is written exactly once and order is preserved.
    let per = inputs.len() / workers;
    let rem = inputs.len() % workers;
    std::thread::scope(|scope| {
        let mut rest_in = inputs;
        let mut rest_out = out.as_mut_slice();
        for w in 0..workers {
            let take = per + usize::from(w < rem);
            let (work_in, tail_in) = rest_in.split_at(take);
            let (work_out, tail_out) = rest_out.split_at_mut(take);
            rest_in = tail_in;
            rest_out = tail_out;
            scope.spawn(move || {
                for (slot, data) in work_out.iter_mut().zip(work_in) {
                    *slot = sha256(data);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_hashing_for_all_sizes() {
        // Straddle the serial/parallel threshold in both directions.
        for n in [0usize, 1, 5, MIN_PER_WORKER, 4 * MIN_PER_WORKER + 3] {
            let data: Vec<Vec<u8>> = (0..n)
                .map(|i| vec![(i % 251) as u8; 64 + (i % 7) * 100])
                .collect();
            let slices: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let batch = sha256_batch(&slices);
            let serial: Vec<Digest> = slices.iter().map(|s| sha256(s)).collect();
            assert_eq!(batch, serial, "n={n}");
        }
    }

    #[test]
    fn worker_count_is_bounded() {
        assert_eq!(batch_workers(0), 1);
        assert_eq!(batch_workers(MIN_PER_WORKER - 1), 1);
        assert!(batch_workers(MAX_WORKERS * MIN_PER_WORKER * 4) <= MAX_WORKERS);
        assert!(batch_workers(usize::MAX) >= 1);
    }
}
