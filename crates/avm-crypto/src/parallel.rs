//! A small hand-rolled scoped-thread worker pool for batch hashing.
//!
//! Refreshing a Merkle state tree hashes every dirty leaf — embarrassingly
//! parallel work that the workspace's no-external-deps constraint keeps us
//! from handing to rayon.  [`sha256_batch`] provides the one primitive the
//! snapshot pipeline needs: hash a batch of byte slices, preserving input
//! order, fanning the work across `std::thread::scope` workers when the batch
//! is large enough to amortise thread startup.
//!
//! The pool is deliberately minimal: workers are spawned per call (scoped
//! threads make the borrow of the input slices safe without `Arc`), the batch
//! is split into contiguous ranges so each worker writes a disjoint region of
//! the output, and small batches take a serial fast path.  Hashing a 512 B
//! chunk costs a few microseconds, so the [`MIN_PER_WORKER`] threshold keeps
//! per-call thread overhead (tens of microseconds) well under the work each
//! worker receives.

use crate::sha256::{sha256, Digest};

/// Minimum number of inputs each worker must receive before an extra thread
/// is worth spawning (the count-based bound, sized for 512 B chunk leaves).
pub const MIN_PER_WORKER: usize = 64;

/// Minimum payload bytes each worker must receive before an extra thread is
/// worth spawning — the *measured-cost* bound: SHA-256 time scales with
/// input bytes, and 32 KiB of hashing (a few hundred µs) comfortably
/// amortises a thread spawn (tens of µs).  Equal to `MIN_PER_WORKER` 512 B
/// chunks, so the chunk-leaf path behaves exactly as before, while batches
/// of larger inputs (4 KiB disk blocks, whole sections) fan out at
/// proportionally smaller counts.
pub const MIN_BYTES_PER_WORKER: usize = MIN_PER_WORKER * 512;

/// Hard cap on worker threads — the hashing stage is meant to soak up a few
/// otherwise-idle cores, not the whole machine.
pub const MAX_WORKERS: usize = 8;

/// Number of worker threads [`sha256_batch`] would use for a batch of `n`
/// inputs on this host, assuming chunk-sized inputs (1 = serial fast path).
///
/// This is the count-only estimate; [`batch_workers_for`] additionally
/// weighs the batch's actual payload bytes.
pub fn batch_workers(n: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    avail.min(MAX_WORKERS).min(n / MIN_PER_WORKER).max(1)
}

/// Adaptive worker count for a concrete batch: scales with the *work* in the
/// batch — both input count and total payload bytes — instead of spawning a
/// fixed-size pool.  Tiny dirty sets stay serial; a handful of large inputs
/// still parallelises even though their count alone would not justify it.
pub fn batch_workers_for(inputs: &[&[u8]]) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
    let total_bytes: usize = inputs.iter().map(|i| i.len()).sum();
    let by_count = inputs.len() / MIN_PER_WORKER;
    let by_bytes = total_bytes / MIN_BYTES_PER_WORKER;
    avail
        .min(MAX_WORKERS)
        .min(by_count.max(by_bytes))
        .min(inputs.len())
        .max(1)
}

/// Hashes every input slice, returning digests in input order.
///
/// Equivalent to `inputs.iter().map(|i| sha256(i)).collect()` — bit-identical
/// output, checked by tests — but large batches are fanned across a scoped
/// worker pool so dirty-leaf hashing scales with cores.  The worker count
/// adapts to the batch ([`batch_workers_for`]): a tiny dirty set never pays
/// for threads it cannot feed.
pub fn sha256_batch(inputs: &[&[u8]]) -> Vec<Digest> {
    let workers = batch_workers_for(inputs);
    if workers <= 1 {
        return inputs.iter().map(|data| sha256(data)).collect();
    }
    let mut out = vec![Digest([0u8; 32]); inputs.len()];
    // Contiguous ranges, remainder spread over the first workers, so every
    // output slot is written exactly once and order is preserved.
    let per = inputs.len() / workers;
    let rem = inputs.len() % workers;
    std::thread::scope(|scope| {
        let mut rest_in = inputs;
        let mut rest_out = out.as_mut_slice();
        for w in 0..workers {
            let take = per + usize::from(w < rem);
            let (work_in, tail_in) = rest_in.split_at(take);
            let (work_out, tail_out) = rest_out.split_at_mut(take);
            rest_in = tail_in;
            rest_out = tail_out;
            scope.spawn(move || {
                for (slot, data) in work_out.iter_mut().zip(work_in) {
                    *slot = sha256(data);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_hashing_for_all_sizes() {
        // Straddle the serial/parallel threshold in both directions.
        for n in [0usize, 1, 5, MIN_PER_WORKER, 4 * MIN_PER_WORKER + 3] {
            let data: Vec<Vec<u8>> = (0..n)
                .map(|i| vec![(i % 251) as u8; 64 + (i % 7) * 100])
                .collect();
            let slices: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let batch = sha256_batch(&slices);
            let serial: Vec<Digest> = slices.iter().map(|s| sha256(s)).collect();
            assert_eq!(batch, serial, "n={n}");
        }
    }

    #[test]
    fn worker_count_is_bounded() {
        assert_eq!(batch_workers(0), 1);
        assert_eq!(batch_workers(MIN_PER_WORKER - 1), 1);
        assert!(batch_workers(MAX_WORKERS * MIN_PER_WORKER * 4) <= MAX_WORKERS);
        assert!(batch_workers(usize::MAX) >= 1);
    }

    #[test]
    fn adaptive_worker_count_scales_with_batch_work() {
        let slices_of =
            |n: usize, len: usize| -> Vec<Vec<u8>> { (0..n).map(|_| vec![0u8; len]).collect() };
        // Empty and tiny dirty sets: strictly serial.
        assert_eq!(batch_workers_for(&[]), 1);
        let tiny = slices_of(3, 512);
        let tiny_refs: Vec<&[u8]> = tiny.iter().map(|v| v.as_slice()).collect();
        assert_eq!(batch_workers_for(&tiny_refs), 1);
        // Chunk-sized inputs behave exactly like the count-only estimate.
        for n in [MIN_PER_WORKER - 1, MIN_PER_WORKER, 4 * MIN_PER_WORKER] {
            let chunks = slices_of(n, 512);
            let refs: Vec<&[u8]> = chunks.iter().map(|v| v.as_slice()).collect();
            assert_eq!(batch_workers_for(&refs), batch_workers(n), "n={n}");
        }
        // A few large inputs parallelise even though their count alone
        // would not justify a second thread (if cores are available).
        let blocks = slices_of(16, 64 * 1024);
        let refs: Vec<&[u8]> = blocks.iter().map(|v| v.as_slice()).collect();
        let workers = batch_workers_for(&refs);
        assert!(workers <= MAX_WORKERS.min(16));
        let avail = std::thread::available_parallelism().map_or(1, |p| p.get());
        if avail > 1 {
            assert!(
                workers > 1,
                "16 × 64 KiB of hashing must fan out on a multi-core host"
            );
        }
        // Never more workers than inputs.
        let two = slices_of(2, 10 * MIN_BYTES_PER_WORKER);
        let refs: Vec<&[u8]> = two.iter().map(|v| v.as_slice()).collect();
        assert!(batch_workers_for(&refs) <= 2);
    }
}
