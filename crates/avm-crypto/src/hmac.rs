//! HMAC-SHA-256 message authentication.
//!
//! The paper notes (§6.8) that a faster authentication primitive would
//! reduce the per-packet latency added by the AVMM.  HMAC is the cheap end
//! of that trade-off: it is orders of magnitude faster than RSA but is only
//! verifiable by holders of the shared key, so it cannot serve as
//! third-party-checkable evidence.  The benchmark harness uses it to bound
//! the achievable latency of the signing step.

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Verifies an HMAC tag in constant time.
pub fn hmac_verify(key: &[u8], message: &[u8], tag: &Digest) -> bool {
    let expected = hmac_sha256(key, message);
    let mut acc = 0u8;
    for (a, b) in expected.as_bytes().iter().zip(tag.as_bytes().iter()) {
        acc |= a ^ b;
    }
    acc == 0
}

/// Incremental HMAC-SHA-256 computation.
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = {
                let mut h = Sha256::new();
                h.update(key);
                h.finalize()
            };
            key_block[..DIGEST_LEN].copy_from_slice(digest.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            outer_key: opad,
        }
    }

    /// Feeds message bytes into the MAC.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the authentication tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: key longer than one block.
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"key", b"message");
        assert!(hmac_verify(b"key", b"message", &tag));
        assert!(!hmac_verify(b"key", b"other message", &tag));
        assert!(!hmac_verify(b"other key", b"message", &tag));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"part one ");
        mac.update(b"part two");
        assert_eq!(mac.finalize(), hmac_sha256(b"k", b"part one part two"));
    }
}
