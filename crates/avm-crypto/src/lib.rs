//! Cryptographic substrate for the Accountable Virtual Machines reproduction.
//!
//! The AVM design (Haeberlen et al., OSDI 2010) assumes three cryptographic
//! capabilities: a collision-resistant hash function, certified signing
//! keypairs, and hash trees over snapshot state (paper §4.1, §4.3, §4.4).
//! This crate implements all of them from scratch so the rest of the
//! workspace has no external cryptographic dependencies:
//!
//! * [`mod@sha256`] — SHA-256 (FIPS 180-4) with incremental hashing.
//! * [`bignum`] — arbitrary-precision unsigned integers (the numeric core).
//! * [`rsa`] — RSA keypairs, PKCS#1 v1.5-style signing and verification,
//!   including the 768-bit keys the paper's evaluation uses.
//! * [`hmac`] — HMAC-SHA-256, the cheap end of the authentication trade-off
//!   discussed in §6.8.
//! * [`merkle`] — Merkle hash trees for authenticated snapshots.
//! * [`parallel`] — a hand-rolled, long-lived worker pool whose jobs are
//!   either batched leaf hashing (the snapshot pipeline's parallel
//!   chunk-hash stage) or generic closures (the segment-parallel audit
//!   replay engine's replay units).
//! * [`keys`] — named identities, signature-scheme selection (including the
//!   `nosig` measurement configuration) and simple certificates.
//!
//! # Example
//!
//! ```
//! use avm_crypto::keys::{Identity, SignatureScheme};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // Small key for the doctest; the paper's experiments use Rsa(768).
//! let alice = Identity::generate(&mut rng, "alice", SignatureScheme::Rsa(512));
//! let sig = alice.signing_key.sign(b"SEND(m)");
//! assert!(alice.verifying_key().verify(b"SEND(m)", &sig).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bignum;
pub mod hmac;
pub mod keys;
pub mod merkle;
pub mod parallel;
pub mod rsa;
pub mod sha256;

pub use bignum::{ct_select64, BigUint, MontgomeryCtx, MontgomeryCtx64};
pub use hmac::{hmac_sha256, hmac_verify};
pub use keys::{Certificate, Identity, KeyError, SignatureScheme, SigningKey, VerifyingKey};
pub use merkle::{MerkleProof, MerkleTree};
pub use parallel::sha256_batch;
pub use rsa::{RsaError, RsaKeyPair, RsaPublicKey};
pub use sha256::{
    sha256, sha256_concat, sha256_multi, sha256_multi_prefixed, Digest, Sha256, DIGEST_LEN,
};
