//! SHA-256 implemented from the FIPS 180-4 specification.
//!
//! The AVM design assumes a pre-image-, second-pre-image- and
//! collision-resistant hash function (paper §4.1, assumption 2); SHA-256 is
//! the concrete instantiation used throughout this workspace for the log hash
//! chain, snapshot hash trees and signature padding.

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// A SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest, used as the hash-chain anchor `h_0 := 0` (paper §4.3).
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Builds a digest from a byte slice of exactly [`DIGEST_LEN`] bytes.
    pub fn from_slice(bytes: &[u8]) -> Option<Digest> {
        if bytes.len() != DIGEST_LEN {
            return None;
        }
        let mut arr = [0u8; DIGEST_LEN];
        arr.copy_from_slice(bytes);
        Some(Digest(arr))
    }

    /// Hex representation of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Short (8 hex character) prefix for human-readable identifiers.
    pub fn short_hex(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl core::fmt::Debug for Digest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Digest({})", self.short_hex())
    }
}

impl core::fmt::Display for Digest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Computes the SHA-256 digest of `data` in one shot.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Computes SHA-256 over the concatenation of several byte slices.
pub fn sha256_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially filled buffer first.
        if self.buffer_len > 0 {
            let want = 64 - self.buffer_len;
            let take = want.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        // Process whole blocks directly from the input.
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        // Stash the remainder.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 8 bytes remain in the block.
        self.update_padding(0x80);
        while self.buffer_len != 56 {
            self.update_padding(0x00);
        }
        let len_bytes = bit_len.to_be_bytes();
        for b in len_bytes {
            self.update_padding(b);
        }
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// Appends one padding byte without counting it toward the message length.
    fn update_padding(&mut self, byte: u8) {
        self.buffer[self.buffer_len] = byte;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.state, block);
    }
}

/// One scalar FIPS 180-4 compression round over a 64-byte block.
fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

fn digest_from_state(state: &[u32; 8]) -> Digest {
    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

// --- Multi-buffer (lane-parallel) hashing ---------------------------------
//
// The snapshot pipeline hashes thousands of small, independent messages
// (512 B chunk leaves, 65 B Merkle nodes). A scalar SHA-256 is latency-bound:
// every round depends on the previous one. Interleaving several independent
// messages through one pass of the message schedule turns that dependency
// chain into element-wise operations over `[u32; LANES]` arrays, which the
// compiler auto-vectorises (the workspace forbids `unsafe`, so there are no
// explicit SIMD intrinsics here) and which otherwise still fill the pipeline
// via instruction-level parallelism.

/// Number of interleaved messages in the wide path.
const LANES_WIDE: usize = 8;
/// Number of interleaved messages in the narrow (SSE-width) path.
const LANES_NARROW: usize = 4;

/// Total number of 64-byte blocks in the padded form of an `n`-byte message.
fn padded_blocks(n: usize) -> usize {
    // message + 0x80 + 8-byte length, rounded up to a whole block.
    n / 64 + if n % 64 < 56 { 1 } else { 2 }
}

/// Materialises block `blk` of the padded stream `prefix || msg || padding`.
fn padded_block(prefix: &[u8], msg: &[u8], blk: usize, total_blocks: usize) -> [u8; 64] {
    let n = prefix.len() + msg.len();
    let mut out = [0u8; 64];
    let start = blk * 64;
    if start < prefix.len() {
        let pend = prefix.len().min(start + 64);
        out[..pend - start].copy_from_slice(&prefix[start..pend]);
    }
    let mstart = start.max(prefix.len());
    if mstart < n && mstart < start + 64 {
        let mend = n.min(start + 64);
        out[mstart - start..mend - start]
            .copy_from_slice(&msg[mstart - prefix.len()..mend - prefix.len()]);
    }
    if (start..start + 64).contains(&n) {
        out[n - start] = 0x80;
    }
    if blk + 1 == total_blocks {
        let bits = (n as u64).wrapping_mul(8);
        out[56..].copy_from_slice(&bits.to_be_bytes());
    }
    out
}

/// One compression pass over `L` independent blocks through a shared message
/// schedule. `state[word][lane]` holds lane `lane`'s chaining value.
fn compress_lanes<const L: usize>(state: &mut [[u32; L]; 8], blocks: &[[u8; 64]; L]) {
    let mut w = [[0u32; L]; 64];
    for t in 0..16 {
        for l in 0..L {
            let b = &blocks[l];
            w[t][l] = u32::from_be_bytes([b[t * 4], b[t * 4 + 1], b[t * 4 + 2], b[t * 4 + 3]]);
        }
    }
    for t in 16..64 {
        let mut wt = [0u32; L];
        for l in 0..L {
            let w15 = w[t - 15][l];
            let w2 = w[t - 2][l];
            let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
            let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
            wt[l] = w[t - 16][l]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7][l])
                .wrapping_add(s1);
        }
        w[t] = wt;
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let mut t1 = [0u32; L];
        let mut t2 = [0u32; L];
        for l in 0..L {
            let s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ ((!e[l]) & g[l]);
            t1[l] = h[l]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t][l]);
            let s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            t2[l] = s0.wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        let mut e_next = [0u32; L];
        let mut a_next = [0u32; L];
        for l in 0..L {
            e_next[l] = d[l].wrapping_add(t1[l]);
            a_next[l] = t1[l].wrapping_add(t2[l]);
        }
        e = e_next;
        d = c;
        c = b;
        b = a;
        a = a_next;
    }
    let sums = [a, b, c, d, e, f, g, h];
    for (word, sum) in state.iter_mut().zip(sums.iter()) {
        for l in 0..L {
            word[l] = word[l].wrapping_add(sum[l]);
        }
    }
}

/// Hashes `L` messages (each `prefix || msgs[i]`) in lockstep. Lanes run the
/// multi-buffer core for as many blocks as the shortest lane has, then finish
/// ragged tails on the scalar core — for the uniform-length batches the
/// snapshot pipeline produces, everything stays in the wide path.
fn sha256_group<const L: usize>(prefix: &[u8], msgs: &[&[u8]; L]) -> [Digest; L] {
    let mut nblocks = [0usize; L];
    for l in 0..L {
        nblocks[l] = padded_blocks(prefix.len() + msgs[l].len());
    }
    let min_blocks = *nblocks.iter().min().expect("L > 0");
    let mut state = [[0u32; L]; 8];
    for (i, word) in state.iter_mut().enumerate() {
        *word = [H0[i]; L];
    }
    let mut blocks = [[0u8; 64]; L];
    for blk in 0..min_blocks {
        for l in 0..L {
            blocks[l] = padded_block(prefix, msgs[l], blk, nblocks[l]);
        }
        compress_lanes(&mut state, &blocks);
    }
    core::array::from_fn(|l| {
        let mut st: [u32; 8] = core::array::from_fn(|i| state[i][l]);
        for blk in min_blocks..nblocks[l] {
            let b = padded_block(prefix, msgs[l], blk, nblocks[l]);
            compress_block(&mut st, &b);
        }
        digest_from_state(&st)
    })
}

/// Hashes many independent messages with the multi-buffer core.
///
/// Bit-identical to `inputs.iter().map(|m| sha256(m))` — pinned by
/// `tests/crypto_differential.rs` — but compresses 8 (then 4) messages per
/// pass through a shared message schedule. This is the serial building block
/// under [`crate::parallel::sha256_batch`]; call that instead when batches
/// are large enough to also spread across worker threads.
pub fn sha256_multi(inputs: &[&[u8]]) -> Vec<Digest> {
    sha256_multi_prefixed(&[], inputs)
}

/// Like [`sha256_multi`] but hashes `prefix || input` for every input without
/// materialising the concatenations (the Merkle layer's domain-separation
/// prefixes use this).
pub fn sha256_multi_prefixed(prefix: &[u8], inputs: &[&[u8]]) -> Vec<Digest> {
    let mut out = Vec::with_capacity(inputs.len());
    let mut rest = inputs;
    while rest.len() >= LANES_WIDE {
        let group: &[&[u8]; LANES_WIDE] = rest[..LANES_WIDE].try_into().expect("length checked");
        out.extend(sha256_group::<LANES_WIDE>(prefix, group));
        rest = &rest[LANES_WIDE..];
    }
    if rest.len() >= LANES_NARROW {
        let group: &[&[u8]; LANES_NARROW] =
            rest[..LANES_NARROW].try_into().expect("length checked");
        out.extend(sha256_group::<LANES_NARROW>(prefix, group));
        rest = &rest[LANES_NARROW..];
    }
    for msg in rest {
        out.push(sha256_concat(&[prefix, msg]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.to_hex()
    }

    #[test]
    fn fips_test_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn concat_helper() {
        assert_eq!(sha256_concat(&[b"ab", b"c"]), sha256(b"abc"));
        assert_eq!(sha256_concat(&[]), sha256(b""));
    }

    #[test]
    fn digest_helpers() {
        let d = sha256(b"abc");
        assert_eq!(Digest::from_slice(d.as_bytes()), Some(d));
        assert_eq!(Digest::from_slice(&[0u8; 5]), None);
        assert_eq!(d.short_hex(), "ba7816bf");
        assert_eq!(format!("{d:?}"), "Digest(ba7816bf)");
        assert_eq!(Digest::ZERO.as_bytes(), &[0u8; 32]);
    }

    #[test]
    fn multi_matches_scalar() {
        // Cover every lane-count path: wide (8), narrow (4), scalar remainder,
        // and mixes; include padding-boundary lengths and ragged groups.
        let lengths = [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 512, 513];
        let msgs: Vec<Vec<u8>> = lengths
            .iter()
            .enumerate()
            .map(|(i, &len)| (0..len).map(|j| (i * 31 + j) as u8).collect())
            .collect();
        for count in 0..=msgs.len() {
            let slices: Vec<&[u8]> = msgs[..count].iter().map(|m| m.as_slice()).collect();
            let got = sha256_multi(&slices);
            let want: Vec<Digest> = slices.iter().map(|m| sha256(m)).collect();
            assert_eq!(got, want, "count {count}");
        }
    }

    #[test]
    fn multi_prefixed_matches_concat() {
        let msgs: Vec<Vec<u8>> = (0..9).map(|i| vec![i as u8; i * 17]).collect();
        let slices: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        for prefix in [
            &b""[..],
            &b"\x00"[..],
            &b"\x01"[..],
            &b"long-prefix-over-a-block-boundary-long-prefix-over-a-block-boundary"[..],
        ] {
            let got = sha256_multi_prefixed(prefix, &slices);
            let want: Vec<Digest> = slices.iter().map(|m| sha256_concat(&[prefix, m])).collect();
            assert_eq!(got, want, "prefix len {}", prefix.len());
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the block size exercise the padding logic.
        for len in [55usize, 56, 57, 63, 64, 65, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(&[*b]);
            }
            assert_eq!(h.finalize(), sha256(&data), "length {len}");
        }
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;

    // Not a correctness test: quick local probe for the multi-buffer speedup.
    // Run with `cargo test --release -p avm-crypto sha256_multi_speedup -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn sha256_multi_speedup() {
        let msgs: Vec<Vec<u8>> = (0..4096).map(|i| vec![(i % 251) as u8; 512]).collect();
        let slices: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let t0 = std::time::Instant::now();
        let mut scalar = Vec::new();
        for _ in 0..8 {
            scalar = slices.iter().map(|m| sha256(m)).collect::<Vec<_>>();
        }
        let scalar_t = t0.elapsed();
        let t1 = std::time::Instant::now();
        let mut multi = Vec::new();
        for _ in 0..8 {
            multi = sha256_multi(&slices);
        }
        let multi_t = t1.elapsed();
        assert_eq!(scalar, multi);
        println!(
            "scalar {:?}  multi {:?}  speedup {:.2}x",
            scalar_t,
            multi_t,
            scalar_t.as_secs_f64() / multi_t.as_secs_f64()
        );
    }
}
