//! RSA signatures (PKCS#1 v1.5-style, SHA-256 message digests).
//!
//! The paper's prototype signs every outgoing packet and acknowledgment with
//! a 768-bit RSA key (§6.2); the evaluation also discusses the effect of the
//! signature scheme on latency (§6.8).  This module provides key generation
//! for arbitrary modulus sizes, signing (with the CRT optimisation) and
//! verification, built solely on [`crate::bignum::BigUint`].

use rand::Rng;

use crate::bignum::BigUint;
use crate::sha256::{sha256, Digest};

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// The requested modulus size is too small to hold the padded digest.
    ModulusTooSmall(usize),
    /// A signature failed to verify.
    BadSignature,
    /// The signature bytes are malformed (e.g. numerically ≥ the modulus).
    MalformedSignature,
}

impl core::fmt::Display for RsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RsaError::ModulusTooSmall(bits) => {
                write!(f, "RSA modulus of {bits} bits is too small")
            }
            RsaError::BadSignature => write!(f, "signature verification failed"),
            RsaError::MalformedSignature => write!(f, "malformed signature"),
        }
    }
}

impl std::error::Error for RsaError {}

/// Minimum modulus size able to hold the PKCS#1-style padded SHA-256 digest.
pub const MIN_MODULUS_BITS: usize = 384;

/// RSA public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus `n = p * q`.
    pub n: BigUint,
    /// Public exponent (65537 in this workspace).
    pub e: BigUint,
}

/// RSA private key with CRT parameters.
#[derive(Debug, Clone)]
pub struct RsaPrivateKey {
    /// The corresponding public key.
    pub public: RsaPublicKey,
    /// Private exponent.
    d: BigUint,
    /// First prime factor.
    p: BigUint,
    /// Second prime factor.
    q: BigUint,
    /// `d mod (p-1)`.
    dp: BigUint,
    /// `d mod (q-1)`.
    dq: BigUint,
    /// `q^-1 mod p`.
    qinv: BigUint,
}

/// An RSA keypair.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    /// Private half (includes the public key).
    pub private: RsaPrivateKey,
}

impl RsaKeyPair {
    /// Generates a keypair with a modulus of exactly `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits < MIN_MODULUS_BITS` — use [`RsaKeyPair::try_generate`]
    /// for a fallible variant.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> RsaKeyPair {
        Self::try_generate(rng, bits).expect("modulus too small")
    }

    /// Fallible key generation.
    pub fn try_generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Result<RsaKeyPair, RsaError> {
        if bits < MIN_MODULUS_BITS {
            return Err(RsaError::ModulusTooSmall(bits));
        }
        let e = BigUint::from_u64(65537);
        let half = bits / 2;
        let mr_rounds = 16;
        loop {
            let p = BigUint::generate_prime(rng, half, mr_rounds);
            let q = BigUint::generate_prime(rng, bits - half, mr_rounds);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            let phi = p1.mul(&q1);
            if !e.gcd(&phi).is_one() {
                continue;
            }
            let d = match e.modinv(&phi) {
                Some(d) => d,
                None => continue,
            };
            let dp = d.rem(&p1);
            let dq = d.rem(&q1);
            let qinv = match q.modinv(&p) {
                Some(v) => v,
                None => continue,
            };
            let public = RsaPublicKey { n, e: e.clone() };
            return Ok(RsaKeyPair {
                private: RsaPrivateKey {
                    public,
                    d,
                    p,
                    q,
                    dp,
                    dq,
                    qinv,
                },
            });
        }
    }

    /// Builds a keypair from known prime factors (used by deterministic tests).
    pub fn from_primes(p: BigUint, q: BigUint) -> Result<RsaKeyPair, RsaError> {
        let e = BigUint::from_u64(65537);
        let n = p.mul(&q);
        if n.bit_len() < MIN_MODULUS_BITS {
            return Err(RsaError::ModulusTooSmall(n.bit_len()));
        }
        let one = BigUint::one();
        let p1 = p.sub(&one);
        let q1 = q.sub(&one);
        let phi = p1.mul(&q1);
        let d = e.modinv(&phi).ok_or(RsaError::BadSignature)?;
        let dp = d.rem(&p1);
        let dq = d.rem(&q1);
        let qinv = q.modinv(&p).ok_or(RsaError::BadSignature)?;
        Ok(RsaKeyPair {
            private: RsaPrivateKey {
                public: RsaPublicKey { n, e },
                d,
                p,
                q,
                dp,
                dq,
                qinv,
            },
        })
    }

    /// Returns the public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.private.public
    }

    /// Signs `message` (hashing it with SHA-256 first).
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        self.private.sign_digest(&sha256(message))
    }

    /// Signs a precomputed digest.
    pub fn sign_digest(&self, digest: &Digest) -> Vec<u8> {
        self.private.sign_digest(digest)
    }
}

impl RsaPrivateKey {
    /// Size of the modulus in whole bytes (rounded up).
    fn modulus_len(&self) -> usize {
        self.public.n.bit_len().div_ceil(8)
    }

    /// Signs a SHA-256 digest and returns the signature bytes
    /// (big-endian, padded to the modulus length).
    ///
    /// The CRT exponentiations run through the 64-bit-limb Montgomery path
    /// ([`BigUint::modpow`]), whose fixed-window table selection is a
    /// constant-time masked scan — the secret exponents `dp`/`dq` never
    /// drive a data-dependent table index.
    pub fn sign_digest(&self, digest: &Digest) -> Vec<u8> {
        let em = encode_digest(digest, self.modulus_len());
        let m = BigUint::from_be_bytes(&em);
        let s = self.modpow_crt(&m);
        s.to_be_bytes_padded(self.modulus_len())
            .expect("signature fits modulus length")
    }

    /// RSA private-key operation using the Chinese Remainder Theorem.
    fn modpow_crt(&self, m: &BigUint) -> BigUint {
        let m1 = m.modpow(&self.dp, &self.p);
        let m2 = m.modpow(&self.dq, &self.q);
        // h = qinv * (m1 - m2) mod p  (add p first to avoid underflow).
        let m2_mod_p = m2.rem(&self.p);
        let diff = if m1 >= m2_mod_p {
            m1.sub(&m2_mod_p)
        } else {
            m1.add(&self.p).sub(&m2_mod_p)
        };
        let h = self.qinv.mulmod(&diff, &self.p);
        m2.add(&h.mul(&self.q))
    }

    /// CRT signing through the retained 32-bit-limb Montgomery reference.
    ///
    /// Same CRT structure as [`Self::sign_digest`] but every exponentiation
    /// runs on [`BigUint::modpow_ref32`]: the Criterion before/after group
    /// measures the 64-bit limb speedup against this, and the differential
    /// battery pins the two bit-identical.
    #[doc(hidden)]
    pub fn sign_digest_ref32(&self, digest: &Digest) -> Vec<u8> {
        let em = encode_digest(digest, self.modulus_len());
        let m = BigUint::from_be_bytes(&em);
        let m1 = m.modpow_ref32(&self.dp, &self.p);
        let m2 = m.modpow_ref32(&self.dq, &self.q);
        let m2_mod_p = m2.rem(&self.p);
        let diff = if m1 >= m2_mod_p {
            m1.sub(&m2_mod_p)
        } else {
            m1.add(&self.p).sub(&m2_mod_p)
        };
        let h = self.qinv.mulmod(&diff, &self.p);
        let s = m2.add(&h.mul(&self.q));
        s.to_be_bytes_padded(self.modulus_len())
            .expect("signature fits modulus length")
    }

    /// Naive non-CRT, non-Montgomery signing baseline.
    ///
    /// Retained so tests can assert the optimised path ([`Self::sign_digest`]:
    /// CRT + Montgomery fixed-window exponentiation) is bit-identical, and so
    /// benches can measure the speedup against it.
    #[doc(hidden)]
    pub fn sign_digest_slow(&self, digest: &Digest) -> Vec<u8> {
        let em = encode_digest(digest, self.modulus_len());
        let m = BigUint::from_be_bytes(&em);
        let s = m.modpow_slow(&self.d, &self.public.n);
        s.to_be_bytes_padded(self.modulus_len())
            .expect("signature fits modulus length")
    }
}

impl RsaPublicKey {
    /// Size of the modulus in whole bytes (rounded up).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), RsaError> {
        self.verify_digest(&sha256(message), signature)
    }

    /// Verifies a signature over a precomputed digest.
    pub fn verify_digest(&self, digest: &Digest, signature: &[u8]) -> Result<(), RsaError> {
        if signature.len() != self.modulus_len() {
            return Err(RsaError::MalformedSignature);
        }
        let s = BigUint::from_be_bytes(signature);
        if s >= self.n {
            return Err(RsaError::MalformedSignature);
        }
        let m = s.modpow(&self.e, &self.n);
        let em = m
            .to_be_bytes_padded(self.modulus_len())
            .ok_or(RsaError::MalformedSignature)?;
        let expected = encode_digest(digest, self.modulus_len());
        if constant_time_eq(&em, &expected) {
            Ok(())
        } else {
            Err(RsaError::BadSignature)
        }
    }

    /// Stable fingerprint of the public key (hash of `n || e`).
    pub fn fingerprint(&self) -> Digest {
        let mut data = self.n.to_be_bytes();
        data.extend_from_slice(&self.e.to_be_bytes());
        sha256(&data)
    }
}

/// EMSA-PKCS1-v1_5-style encoding: `0x00 0x01 0xFF.. 0x00 || digest`.
fn encode_digest(digest: &Digest, em_len: usize) -> Vec<u8> {
    let d = digest.as_bytes();
    // Require at least 8 bytes of 0xFF padding as PKCS#1 does.
    assert!(
        em_len >= d.len() + 11,
        "modulus too small for digest encoding"
    );
    let mut em = Vec::with_capacity(em_len);
    em.push(0x00);
    em.push(0x01);
    em.resize(em_len - d.len() - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(d);
    em
}

/// Constant-time byte-slice comparison.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_keypair(bits: usize) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        RsaKeyPair::generate(&mut rng, bits)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = test_keypair(512);
        let msg = b"the AVMM attaches an authenticator to each outgoing message";
        let sig = kp.sign(msg);
        assert_eq!(sig.len(), kp.public().modulus_len());
        kp.public().verify(msg, &sig).unwrap();
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = test_keypair(512);
        let sig = kp.sign(b"original message");
        assert_eq!(
            kp.public().verify(b"tampered message", &sig),
            Err(RsaError::BadSignature)
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = test_keypair(512);
        let mut sig = kp.sign(b"message");
        sig[10] ^= 0x55;
        assert!(kp.public().verify(b"message", &sig).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = test_keypair(512);
        let mut rng = StdRng::seed_from_u64(0xB0B);
        let kp2 = RsaKeyPair::generate(&mut rng, 512);
        let sig = kp1.sign(b"message");
        assert!(kp2.public().verify(b"message", &sig).is_err());
    }

    #[test]
    fn malformed_signature_lengths() {
        let kp = test_keypair(512);
        assert_eq!(
            kp.public().verify(b"m", &[0u8; 3]),
            Err(RsaError::MalformedSignature)
        );
        // A signature numerically >= n is malformed.
        let huge = vec![0xffu8; kp.public().modulus_len()];
        assert_eq!(
            kp.public().verify(b"m", &huge),
            Err(RsaError::MalformedSignature)
        );
    }

    #[test]
    fn crt_matches_slow_path() {
        let kp = test_keypair(512);
        let digest = sha256(b"cross-check CRT");
        assert_eq!(
            kp.private.sign_digest(&digest),
            kp.private.sign_digest_slow(&digest)
        );
    }

    #[test]
    fn ref32_matches_fast_path() {
        let kp = test_keypair(512);
        let digest = sha256(b"cross-check 32-bit reference");
        assert_eq!(
            kp.private.sign_digest(&digest),
            kp.private.sign_digest_ref32(&digest)
        );
    }

    #[test]
    fn modulus_has_requested_size() {
        for bits in [384usize, 512] {
            let mut rng = StdRng::seed_from_u64(bits as u64);
            let kp = RsaKeyPair::generate(&mut rng, bits);
            assert_eq!(kp.public().n.bit_len(), bits);
        }
    }

    #[test]
    fn too_small_modulus_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            RsaKeyPair::try_generate(&mut rng, 128).unwrap_err(),
            RsaError::ModulusTooSmall(128)
        );
    }

    #[test]
    fn fingerprint_is_stable_and_distinct() {
        let kp1 = test_keypair(512);
        let mut rng = StdRng::seed_from_u64(99);
        let kp2 = RsaKeyPair::generate(&mut rng, 512);
        assert_eq!(kp1.public().fingerprint(), kp1.public().fingerprint());
        assert_ne!(kp1.public().fingerprint(), kp2.public().fingerprint());
    }

    #[test]
    fn deterministic_from_primes() {
        // 256-bit primes known to be prime (generated once, embedded for determinism).
        let mut rng = StdRng::seed_from_u64(1234);
        let p = BigUint::generate_prime(&mut rng, 256, 16);
        let q = BigUint::generate_prime(&mut rng, 256, 16);
        let kp = RsaKeyPair::from_primes(p, q).unwrap();
        let sig = kp.sign(b"deterministic");
        kp.public().verify(b"deterministic", &sig).unwrap();
    }

    /// Release-mode speedup probe; ignored by default (meaningless in debug).
    ///
    /// ```text
    /// cargo test --release -p avm-crypto rsa768_montgomery64_speedup -- --ignored --nocapture
    /// ```
    #[test]
    #[ignore = "perf probe; run explicitly in release mode"]
    fn rsa768_montgomery64_speedup() {
        let mut rng = StdRng::seed_from_u64(0x768);
        let kp = RsaKeyPair::generate(&mut rng, 768);
        let digest = sha256(b"probe message");
        assert_eq!(
            kp.private.sign_digest(&digest),
            kp.private.sign_digest_ref32(&digest)
        );
        let iters = 40;
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            core::hint::black_box(kp.private.sign_digest_ref32(core::hint::black_box(&digest)));
        }
        let ref32 = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..iters {
            core::hint::black_box(kp.private.sign_digest(core::hint::black_box(&digest)));
        }
        let fast = t1.elapsed();
        println!(
            "rsa768 sign: 32-bit ref {:?}, 64-bit {:?}, speedup {:.2}x",
            ref32 / iters,
            fast / iters,
            ref32.as_secs_f64() / fast.as_secs_f64()
        );
    }
}
