//! Signing identities and certificates.
//!
//! The AVM design assumes that "each party has a certified keypair, which can
//! be used to sign messages" (paper §4.1, assumption 3), e.g. issued by a
//! game-server administrator or cloud operator acting as a certificate
//! authority.  This module wraps the raw RSA primitives into named signer
//! identities, adds a `Null` scheme used by the *avmm-nosig* measurement
//! configuration, and provides minimal certificates binding a name to a key.

use rand::Rng;

use crate::rsa::{RsaError, RsaKeyPair, RsaPublicKey};
use crate::sha256::{sha256, Digest};

/// Signature scheme selector, mirroring the paper's measurement configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureScheme {
    /// RSA with the given modulus size in bits (the paper uses 768).
    Rsa(usize),
    /// No signatures at all (the `avmm-nosig` configuration); authenticators
    /// degrade to plain hashes and provide no non-repudiation.
    Null,
}

impl SignatureScheme {
    /// The paper's default: 768-bit RSA (§6.2).
    pub const PAPER_DEFAULT: SignatureScheme = SignatureScheme::Rsa(768);

    /// Human-readable label used by the benchmark harness.
    pub fn label(&self) -> String {
        match self {
            SignatureScheme::Rsa(bits) => format!("rsa{bits}"),
            SignatureScheme::Null => "nosig".to_string(),
        }
    }
}

/// A signing keypair owned by one party (player, server operator, auditor).
#[derive(Debug, Clone)]
pub enum SigningKey {
    /// RSA private key.
    Rsa(RsaKeyPair),
    /// The null scheme: signing produces an empty signature.
    Null,
}

/// The public, verification half of a [`SigningKey`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyingKey {
    /// RSA public key.
    Rsa(RsaPublicKey),
    /// The null scheme accepts only empty signatures.
    Null,
}

/// Errors from identity-level signature operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyError {
    /// The underlying RSA operation failed.
    Rsa(RsaError),
    /// A signature did not verify.
    BadSignature,
    /// A certificate's binding did not verify.
    BadCertificate,
}

impl core::fmt::Display for KeyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KeyError::Rsa(e) => write!(f, "rsa error: {e}"),
            KeyError::BadSignature => write!(f, "signature verification failed"),
            KeyError::BadCertificate => write!(f, "certificate verification failed"),
        }
    }
}

impl std::error::Error for KeyError {}

impl From<RsaError> for KeyError {
    fn from(e: RsaError) -> Self {
        KeyError::Rsa(e)
    }
}

impl SigningKey {
    /// Generates a key for `scheme`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, scheme: SignatureScheme) -> SigningKey {
        match scheme {
            SignatureScheme::Rsa(bits) => SigningKey::Rsa(RsaKeyPair::generate(rng, bits)),
            SignatureScheme::Null => SigningKey::Null,
        }
    }

    /// Returns the corresponding verification key.
    pub fn verifying_key(&self) -> VerifyingKey {
        match self {
            SigningKey::Rsa(kp) => VerifyingKey::Rsa(kp.public().clone()),
            SigningKey::Null => VerifyingKey::Null,
        }
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        match self {
            SigningKey::Rsa(kp) => kp.sign(message),
            SigningKey::Null => Vec::new(),
        }
    }

    /// Signs a precomputed digest.
    pub fn sign_digest(&self, digest: &Digest) -> Vec<u8> {
        match self {
            SigningKey::Rsa(kp) => kp.sign_digest(digest),
            SigningKey::Null => Vec::new(),
        }
    }

    /// The scheme this key belongs to.
    pub fn scheme(&self) -> SignatureScheme {
        match self {
            SigningKey::Rsa(kp) => SignatureScheme::Rsa(kp.public().n.bit_len()),
            SigningKey::Null => SignatureScheme::Null,
        }
    }
}

impl VerifyingKey {
    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> Result<(), KeyError> {
        match self {
            VerifyingKey::Rsa(pk) => pk.verify(message, signature).map_err(KeyError::from),
            VerifyingKey::Null => {
                if signature.is_empty() {
                    Ok(())
                } else {
                    Err(KeyError::BadSignature)
                }
            }
        }
    }

    /// Verifies a signature over a precomputed digest.
    pub fn verify_digest(&self, digest: &Digest, signature: &[u8]) -> Result<(), KeyError> {
        match self {
            VerifyingKey::Rsa(pk) => pk.verify_digest(digest, signature).map_err(KeyError::from),
            VerifyingKey::Null => {
                if signature.is_empty() {
                    Ok(())
                } else {
                    Err(KeyError::BadSignature)
                }
            }
        }
    }

    /// Stable fingerprint identifying this key.
    pub fn fingerprint(&self) -> Digest {
        match self {
            VerifyingKey::Rsa(pk) => pk.fingerprint(),
            VerifyingKey::Null => sha256(b"null-key"),
        }
    }

    /// Length in bytes of signatures produced under this key (0 for `Null`).
    pub fn signature_len(&self) -> usize {
        match self {
            VerifyingKey::Rsa(pk) => pk.modulus_len(),
            VerifyingKey::Null => 0,
        }
    }

    /// Serializes the key for embedding in certificates and logs.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            VerifyingKey::Rsa(pk) => {
                let n = pk.n.to_be_bytes();
                let e = pk.e.to_be_bytes();
                let mut out = Vec::with_capacity(1 + 4 + n.len() + 4 + e.len());
                out.push(1);
                out.extend_from_slice(&(n.len() as u32).to_le_bytes());
                out.extend_from_slice(&n);
                out.extend_from_slice(&(e.len() as u32).to_le_bytes());
                out.extend_from_slice(&e);
                out
            }
            VerifyingKey::Null => vec![0],
        }
    }

    /// Deserializes a key produced by [`VerifyingKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<VerifyingKey> {
        use crate::bignum::BigUint;
        match bytes.first()? {
            0 => {
                if bytes.len() == 1 {
                    Some(VerifyingKey::Null)
                } else {
                    None
                }
            }
            1 => {
                let mut pos = 1usize;
                let read_chunk = |pos: &mut usize| -> Option<Vec<u8>> {
                    if bytes.len() < *pos + 4 {
                        return None;
                    }
                    let len = u32::from_le_bytes([
                        bytes[*pos],
                        bytes[*pos + 1],
                        bytes[*pos + 2],
                        bytes[*pos + 3],
                    ]) as usize;
                    *pos += 4;
                    if bytes.len() < *pos + len {
                        return None;
                    }
                    let out = bytes[*pos..*pos + len].to_vec();
                    *pos += len;
                    Some(out)
                };
                let n = read_chunk(&mut pos)?;
                let e = read_chunk(&mut pos)?;
                if pos != bytes.len() {
                    return None;
                }
                Some(VerifyingKey::Rsa(RsaPublicKey {
                    n: BigUint::from_be_bytes(&n),
                    e: BigUint::from_be_bytes(&e),
                }))
            }
            _ => None,
        }
    }
}

/// A named identity: a party in the AVM protocol (player, operator, auditor).
#[derive(Debug, Clone)]
pub struct Identity {
    /// Human-readable name ("alice", "bob", "charlie").
    pub name: String,
    /// The identity's signing key.
    pub signing_key: SigningKey,
}

impl Identity {
    /// Generates a fresh identity.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, name: &str, scheme: SignatureScheme) -> Identity {
        Identity {
            name: name.to_string(),
            signing_key: SigningKey::generate(rng, scheme),
        }
    }

    /// The verification key other parties use.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signing_key.verifying_key()
    }

    /// Stable node identifier derived from the key fingerprint.
    pub fn node_id(&self) -> Digest {
        self.verifying_key().fingerprint()
    }
}

/// A certificate binding a name to a verification key, signed by an issuer
/// (e.g. the tournament administrator in the gaming scenario).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Name of the certified party.
    pub subject: String,
    /// The certified verification key.
    pub key: VerifyingKey,
    /// Issuer's signature over `subject || key`.
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Issues a certificate for `subject_key` under the issuer's signing key.
    pub fn issue(issuer: &SigningKey, subject: &str, subject_key: &VerifyingKey) -> Certificate {
        let payload = Self::payload(subject, subject_key);
        Certificate {
            subject: subject.to_string(),
            key: subject_key.clone(),
            signature: issuer.sign(&payload),
        }
    }

    /// Verifies the certificate against the issuer's verification key.
    pub fn verify(&self, issuer: &VerifyingKey) -> Result<(), KeyError> {
        let payload = Self::payload(&self.subject, &self.key);
        issuer
            .verify(&payload, &self.signature)
            .map_err(|_| KeyError::BadCertificate)
    }

    fn payload(subject: &str, key: &VerifyingKey) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(b"avm-certificate-v1");
        payload.extend_from_slice(&(subject.len() as u32).to_le_bytes());
        payload.extend_from_slice(subject.as_bytes());
        payload.extend_from_slice(&key.to_bytes());
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn rsa_identity_sign_verify() {
        let mut rng = rng();
        let alice = Identity::generate(&mut rng, "alice", SignatureScheme::Rsa(512));
        let sig = alice.signing_key.sign(b"hello");
        alice.verifying_key().verify(b"hello", &sig).unwrap();
        assert_eq!(
            alice.verifying_key().verify(b"tampered", &sig),
            Err(KeyError::Rsa(RsaError::BadSignature))
        );
        assert_eq!(alice.signing_key.scheme(), SignatureScheme::Rsa(512));
    }

    #[test]
    fn null_scheme_accepts_only_empty_signatures() {
        let mut rng = rng();
        let id = Identity::generate(&mut rng, "nosig", SignatureScheme::Null);
        let sig = id.signing_key.sign(b"anything");
        assert!(sig.is_empty());
        id.verifying_key().verify(b"anything", &sig).unwrap();
        assert_eq!(
            id.verifying_key().verify(b"anything", &[1, 2, 3]),
            Err(KeyError::BadSignature)
        );
        assert_eq!(id.verifying_key().signature_len(), 0);
    }

    #[test]
    fn node_ids_are_distinct() {
        let mut rng = rng();
        let a = Identity::generate(&mut rng, "a", SignatureScheme::Rsa(512));
        let b = Identity::generate(&mut rng, "b", SignatureScheme::Rsa(512));
        assert_ne!(a.node_id(), b.node_id());
    }

    #[test]
    fn verifying_key_roundtrips_through_bytes() {
        let mut rng = rng();
        let id = Identity::generate(&mut rng, "x", SignatureScheme::Rsa(512));
        let vk = id.verifying_key();
        assert_eq!(VerifyingKey::from_bytes(&vk.to_bytes()).unwrap(), vk);
        assert_eq!(
            VerifyingKey::from_bytes(&VerifyingKey::Null.to_bytes()).unwrap(),
            VerifyingKey::Null
        );
        assert!(VerifyingKey::from_bytes(&[]).is_none());
        assert!(VerifyingKey::from_bytes(&[7, 7, 7]).is_none());
        let mut truncated = vk.to_bytes();
        truncated.truncate(truncated.len() - 3);
        assert!(VerifyingKey::from_bytes(&truncated).is_none());
    }

    #[test]
    fn certificates_verify_and_reject_forgery() {
        let mut rng = rng();
        let ca = SigningKey::generate(&mut rng, SignatureScheme::Rsa(512));
        let alice = Identity::generate(&mut rng, "alice", SignatureScheme::Rsa(512));
        let cert = Certificate::issue(&ca, "alice", &alice.verifying_key());
        cert.verify(&ca.verifying_key()).unwrap();

        // Tampering with the subject invalidates the certificate.
        let mut forged = cert.clone();
        forged.subject = "mallory".to_string();
        assert_eq!(
            forged.verify(&ca.verifying_key()),
            Err(KeyError::BadCertificate)
        );

        // A different CA key does not validate it either.
        let other_ca = SigningKey::generate(&mut rng, SignatureScheme::Rsa(512));
        assert!(cert.verify(&other_ca.verifying_key()).is_err());
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(SignatureScheme::Rsa(768).label(), "rsa768");
        assert_eq!(SignatureScheme::Null.label(), "nosig");
        assert_eq!(SignatureScheme::PAPER_DEFAULT, SignatureScheme::Rsa(768));
    }
}
