//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This is the numeric substrate for the RSA signatures used by the
//! tamper-evident log.  The representation is a little-endian vector of
//! 32-bit limbs with no leading zero limbs (the canonical form of zero is an
//! empty limb vector).  All operations are implemented from scratch; the
//! division routine uses simple shift-and-subtract long division, which is
//! more than fast enough for the 768–2048-bit moduli the AVM experiments use.

use std::cmp::Ordering;

use rand::Rng;

/// Arbitrary-precision unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    /// Little-endian 32-bit limbs with no trailing (most-significant) zeros.
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs a value from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Constructs a value from big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut chunk_iter = bytes.rchunks(4);
        for chunk in &mut chunk_iter {
            let mut limb = 0u32;
            for &b in chunk {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to big-endian bytes with no leading zero bytes.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return vec![0];
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most significant limb.
                let mut started = false;
                for b in bytes {
                    if b != 0 || started {
                        out.push(b);
                        started = true;
                    }
                }
                if !started {
                    // Normalised values never have a zero top limb, but be safe.
                    out.push(0);
                }
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// Returns `None` if the value does not fit.
    pub fn to_be_bytes_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_be_bytes();
        let raw = if raw == [0] { Vec::new() } else { raw };
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Returns the value as a `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits.
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Comparison.
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut limbs = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let sum = a + b + carry;
            limbs.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            limbs.push(carry as u32);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Subtraction; panics if `other > self`.
    ///
    /// # Panics
    ///
    /// Panics when the result would be negative.  Callers in this workspace
    /// always check magnitudes first; use [`BigUint::checked_sub`] otherwise.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint::sub would underflow")
    }

    /// Subtraction returning `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_big(other) == Ordering::Less {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(diff as u32);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        Some(n)
    }

    /// Multiplication (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = limbs[idx] as u64 + (a as u64) * (b as u64) + carry;
                limbs[idx] = cur as u32;
                carry = cur >> 32;
            }
            let mut idx = i + other.limbs.len();
            while carry != 0 {
                let cur = limbs[idx] as u64 + carry;
                limbs[idx] = cur as u32;
                carry = cur >> 32;
                idx += 1;
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let mut limbs = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                limbs.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_big(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        // Fast path: single-limb divisor.
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut rem = 0u64;
            let mut q = vec![0u32; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut quo = BigUint { limbs: q };
            quo.normalize();
            return (quo, BigUint::from_u64(rem));
        }
        // General case: bitwise long division.
        let shift = self.bit_len() - divisor.bit_len();
        let mut remainder = self.clone();
        let mut quotient = BigUint::zero();
        let mut shifted = divisor.shl(shift);
        for i in (0..=shift).rev() {
            if remainder.cmp_big(&shifted) != Ordering::Less {
                remainder = remainder.sub(&shifted);
                quotient = quotient.set_bit(i);
            }
            shifted = shifted.shr(1);
        }
        (quotient, remainder)
    }

    /// Returns a copy with bit `i` set.
    fn set_bit(mut self, i: usize) -> BigUint {
        let limb = i / 32;
        let off = i % 32;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
        self
    }

    /// Modular reduction.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular multiplication.
    pub fn mulmod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation.
    ///
    /// For odd moduli (every RSA modulus and prime factor) this dispatches to
    /// Montgomery-form fixed-window exponentiation over 64-bit limbs
    /// ([`MontgomeryCtx64`]), which replaces the per-multiply `div_rem`
    /// reduction with word-level Montgomery reduction and halves the limb
    /// count relative to the storage representation.  Even moduli fall back
    /// to the classic square-and-multiply path ([`BigUint::modpow_slow`]).
    /// All paths return bit-identical results.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        match MontgomeryCtx64::new(modulus) {
            Some(ctx) => ctx.modpow(self, exponent),
            None => self.modpow_slow(exponent, modulus),
        }
    }

    /// Modular exponentiation through the retained 32-bit-limb Montgomery
    /// context ([`MontgomeryCtx`]).
    ///
    /// Kept as the differential reference for the 64-bit fast path: the
    /// crypto differential battery and the Criterion before/after groups
    /// pin [`BigUint::modpow`] bit-identical to (and faster than) this.
    pub fn modpow_ref32(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        match MontgomeryCtx::new(modulus) {
            Some(ctx) => ctx.modpow(self, exponent),
            None => self.modpow_slow(exponent, modulus),
        }
    }

    /// Modular exponentiation by square-and-multiply with full `div_rem`
    /// reduction after every multiply.
    ///
    /// Retained as the naive baseline: benches compare [`BigUint::modpow`]
    /// against it and tests assert the two produce identical results.
    pub fn modpow_slow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem(modulus);
        for i in 0..exponent.bit_len() {
            if exponent.bit(i) {
                result = result.mulmod(&base, modulus);
            }
            base = base.mulmod(&base, modulus);
        }
        result
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular multiplicative inverse, if it exists.
    ///
    /// Uses the extended Euclidean algorithm with a signed bookkeeping pair.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Extended Euclid over signed values represented as (sign, magnitude).
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        let mut t0 = SignedBig::zero();
        let mut t1 = SignedBig::positive(BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            let t2 = t0.sub(&t1.mul_uint(&q));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        Some(t0.to_mod(modulus))
    }

    /// Generates a uniformly random value less than `bound` (which must be nonzero).
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bit_len();
        loop {
            let candidate = BigUint::random_bits(rng, bits);
            if candidate.cmp_big(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Generates a random value with at most `bits` bits.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        let n_limbs = bits.div_ceil(32);
        let mut limbs: Vec<u32> = (0..n_limbs).map(|_| rng.gen()).collect();
        let extra = n_limbs * 32 - bits;
        if extra > 0 && !limbs.is_empty() {
            let last = limbs.len() - 1;
            limbs[last] >>= extra;
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Generates a random value with exactly `bits` bits (top bit set) and odd.
    pub fn random_odd_with_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits >= 2, "need at least two bits");
        let mut n = BigUint::random_bits(rng, bits);
        n = n.set_bit(bits - 1);
        n = n.set_bit(0);
        n
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        if self.is_zero() || self.is_one() {
            return false;
        }
        let two = BigUint::from_u64(2);
        if self.cmp_big(&two) == Ordering::Equal {
            return true;
        }
        if self.is_even() {
            return false;
        }
        // Trial division by small primes quickly rejects most composites.
        for &p in SMALL_PRIMES {
            let pb = BigUint::from_u64(p);
            if self.cmp_big(&pb) == Ordering::Equal {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        // Write self - 1 = d * 2^s with d odd.
        let one = BigUint::one();
        let n_minus_1 = self.sub(&one);
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }
        'witness: for _ in 0..rounds {
            let a = {
                // Pick a in [2, n-2].
                let upper = self.sub(&BigUint::from_u64(3));
                BigUint::random_below(rng, &upper).add(&two)
            };
            let mut x = a.modpow(&d, self);
            if x.is_one() || x.cmp_big(&n_minus_1) == Ordering::Equal {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mulmod(&x, self);
                if x.cmp_big(&n_minus_1) == Ordering::Equal {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generates a random probable prime with exactly `bits` bits.
    pub fn generate_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize, mr_rounds: usize) -> BigUint {
        loop {
            let candidate = BigUint::random_odd_with_bits(rng, bits);
            if candidate.is_probable_prime(rng, mr_rounds) {
                return candidate;
            }
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

impl core::fmt::Display for BigUint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Hexadecimal display keeps the implementation dependency-free.
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:08x}")?;
            }
        }
        Ok(())
    }
}

/// Montgomery-form modular arithmetic for an odd modulus.
///
/// The per-packet RSA cost in the AVMM is dominated by modular
/// exponentiation; reducing with [`BigUint::div_rem`] after every multiply is
/// O(bits) shift-and-subtract steps per reduction.  A Montgomery context
/// replaces that with word-level CIOS reduction (Koç et al.): one pass of
/// multiply-accumulate per limb, no trial subtraction loop.  Building the
/// context costs one `div_rem` (for `R² mod n`), amortised over the hundreds
/// of multiplies inside an exponentiation.
///
/// All arithmetic is on fixed-width little-endian `u32` limb vectors of the
/// modulus' width, with a conditional final subtraction keeping every
/// intermediate value `< n`, so results are bit-identical to the naive path.
///
/// The hot path ([`BigUint::modpow`]) now runs on the 64-bit-limb
/// [`MontgomeryCtx64`]; this 32-bit context is retained as its differential
/// reference (`tests/crypto_differential.rs` pins the two bit-identical) and
/// stays reachable through [`BigUint::modpow_ref32`].
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    /// Modulus limbs, exactly `k` of them (top limb nonzero).
    n: Vec<u32>,
    /// The modulus as a `BigUint` (for reductions at the boundary).
    n_big: BigUint,
    /// `-n⁻¹ mod 2³²`.
    n0_inv: u32,
    /// `R² mod n` where `R = 2^(32k)`, in padded limb form.
    r2: Vec<u32>,
    /// Limb count of the modulus.
    k: usize,
}

impl MontgomeryCtx {
    /// Builds a context for `modulus`.
    ///
    /// Returns `None` when the modulus is even, zero or one (Montgomery
    /// reduction requires an odd modulus; callers fall back to
    /// [`BigUint::modpow_slow`]).
    pub fn new(modulus: &BigUint) -> Option<MontgomeryCtx> {
        if modulus.is_zero() || modulus.is_one() || modulus.is_even() {
            return None;
        }
        let k = modulus.limbs.len();
        let n = modulus.limbs.clone();
        // Newton iteration for n0⁻¹ mod 2³² (doubles correct bits each step).
        let n0 = n[0];
        let mut inv = 1u32;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        // R² mod n, R = 2^(32k): the only full division in the context.
        let r2_big = BigUint::one().shl(64 * k).rem(modulus);
        let r2 = Self::pad(&r2_big, k);
        Some(MontgomeryCtx {
            n,
            n_big: modulus.clone(),
            n0_inv,
            r2,
            k,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n_big
    }

    fn pad(x: &BigUint, k: usize) -> Vec<u32> {
        let mut v = x.limbs.clone();
        v.resize(k, 0);
        v
    }

    fn unpad(mut limbs: Vec<u32>) -> BigUint {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// CIOS Montgomery multiplication: returns `a·b·R⁻¹ mod n`.
    ///
    /// Inputs must be `k` limbs and `< n`; the output is `k` limbs and `< n`.
    fn montmul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let k = self.k;
        let mut t = vec![0u32; k + 2];
        for &ai in a {
            let ai = ai as u64;
            // t += a[i] * b
            let mut carry = 0u64;
            for j in 0..k {
                let cur = t[j] as u64 + ai * b[j] as u64 + carry;
                t[j] = cur as u32;
                carry = cur >> 32;
            }
            let cur = t[k] as u64 + carry;
            t[k] = cur as u32;
            t[k + 1] = (cur >> 32) as u32;
            // t += m * n; t >>= 32  (m chosen so the low limb cancels)
            let m = (t[0].wrapping_mul(self.n0_inv)) as u64;
            let cur = t[0] as u64 + m * self.n[0] as u64;
            let mut carry = cur >> 32;
            for j in 1..k {
                let cur = t[j] as u64 + m * self.n[j] as u64 + carry;
                t[j - 1] = cur as u32;
                carry = cur >> 32;
            }
            let cur = t[k] as u64 + carry;
            t[k - 1] = cur as u32;
            t[k] = t[k + 1].wrapping_add((cur >> 32) as u32);
        }
        // Conditional subtraction: t < 2n, so at most one subtract of n
        // (whose borrow, if any, cancels the overflow limb t[k]).
        if t[k] != 0 || !limbs_less(&t[..k], &self.n) {
            let borrow = limbs_sub_assign(&mut t[..k], &self.n);
            debug_assert_eq!(t[k], borrow, "CIOS result was not < 2n");
            t[k] = 0;
        }
        t.truncate(k);
        t
    }

    /// Squaring-specialised Montgomery multiplication: returns
    /// `a·a·R⁻¹ mod n`, bit-identical to `montmul(a, a)`.
    ///
    /// Squaring needs only the upper triangle of the partial-product matrix:
    /// each off-diagonal product `a[i]·a[j]` (i ≠ j) appears twice in `a²`,
    /// so it is computed once and doubled, with the `k` diagonal squares
    /// added afterwards — ~half the single-precision multiplies of the
    /// general CIOS loop.  The reduction is a separate SOS pass (reduction
    /// cannot interleave with the doubling trick).  Fixed-window
    /// exponentiation spends most of its multiplies on squarings (384 of
    /// them per RSA-768 exponentiation), which is where the ~1.3x comes from.
    fn montsqr(&self, a: &[u32]) -> Vec<u32> {
        let k = self.k;
        // --- multiplication phase: t = a², 2k limbs (+1 headroom) --------
        let mut t = vec![0u32; 2 * k + 1];
        // Off-diagonal products, each computed once.
        for i in 0..k {
            let ai = a[i] as u64;
            let mut carry = 0u64;
            for j in i + 1..k {
                let cur = t[i + j] as u64 + ai * a[j] as u64 + carry;
                t[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u64 + carry;
                t[idx] = cur as u32;
                carry = cur >> 32;
                idx += 1;
            }
        }
        // Double the off-diagonal sum (2·Σ a[i]a[j] ≤ a² < 2^(64k), so the
        // shifted-out carry lands inside the 2k limbs).
        let mut carry = 0u32;
        for limb in t.iter_mut().take(2 * k) {
            let cur = ((*limb as u64) << 1) | carry as u64;
            *limb = cur as u32;
            carry = (cur >> 32) as u32;
        }
        debug_assert_eq!(carry, 0, "doubled off-diagonal sum overflowed a²");
        // Diagonal squares.
        let mut carry = 0u64;
        for i in 0..k {
            let sq = (a[i] as u64) * (a[i] as u64);
            let lo = t[2 * i] as u64 + (sq & 0xffff_ffff) + carry;
            t[2 * i] = lo as u32;
            let hi = t[2 * i + 1] as u64 + (sq >> 32) + (lo >> 32);
            t[2 * i + 1] = hi as u32;
            carry = hi >> 32;
        }
        debug_assert_eq!(carry, 0, "a² overflowed 2k limbs");
        // --- reduction phase: SOS Montgomery reduction of t ---------------
        for i in 0..k {
            let m = (t[i].wrapping_mul(self.n0_inv)) as u64;
            let mut carry = 0u64;
            for j in 0..k {
                let cur = t[i + j] as u64 + m * self.n[j] as u64 + carry;
                t[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u64 + carry;
                t[idx] = cur as u32;
                carry = cur >> 32;
                idx += 1;
            }
        }
        // Result = t >> 32k; t < a² + n·R < 2nR, so one conditional subtract.
        let mut r = t[k..=2 * k].to_vec();
        if r[k] != 0 || !limbs_less(&r[..k], &self.n) {
            let borrow = limbs_sub_assign(&mut r[..k], &self.n);
            debug_assert_eq!(r[k], borrow, "SOS result was not < 2n");
            r[k] = 0;
        }
        r.truncate(k);
        r
    }

    /// Converts into Montgomery form: `x·R mod n`.
    fn to_mont(&self, x: &BigUint) -> Vec<u32> {
        let reduced = x.rem(&self.n_big);
        self.montmul(&Self::pad(&reduced, self.k), &self.r2)
    }

    /// Converts out of Montgomery form.  (`from_` here is the domain term
    /// "out of Montgomery form", not a constructor convention.)
    #[allow(clippy::wrong_self_convention)]
    fn from_mont(&self, x: &[u32]) -> BigUint {
        let mut one = vec![0u32; self.k];
        one[0] = 1;
        Self::unpad(self.montmul(x, &one))
    }

    /// Modular multiplication through the context: `a·b mod n`.
    pub fn mulmod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.montmul(&am, &bm))
    }

    /// Modular squaring through the context's specialised squaring path:
    /// `a·a mod n`, bit-identical to `mulmod(a, a)`.
    pub fn sqrmod(&self, a: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        self.from_mont(&self.montsqr(&am))
    }

    /// Fixed-window modular exponentiation: `base^exponent mod n`.
    ///
    /// Uses a 2^w-entry table of small powers; the window width scales with
    /// the exponent size (binary scan for short exponents like `e = 65537`,
    /// where a table would cost more than it saves).
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        let bits = exponent.bit_len();
        let one_mont = self.montmul(
            &{
                let mut one = vec![0u32; self.k];
                one[0] = 1;
                one
            },
            &self.r2,
        );
        if bits == 0 {
            return self.from_mont(&one_mont);
        }
        let base_mont = self.to_mont(base);
        // Window width: chosen so table build cost (2^w - 1 multiplies) is
        // amortised by saved per-window multiplies.
        let w: usize = if bits >= 1024 {
            5
        } else if bits >= 64 {
            4
        } else {
            1
        };
        if w == 1 {
            // Left-to-right binary scan.
            let mut acc = one_mont;
            for i in (0..bits).rev() {
                acc = self.montsqr(&acc);
                if exponent.bit(i) {
                    acc = self.montmul(&acc, &base_mont);
                }
            }
            return self.from_mont(&acc);
        }
        // Table of base^0 .. base^(2^w - 1) in Montgomery form.
        let mut table = Vec::with_capacity(1 << w);
        table.push(one_mont.clone());
        for i in 1..(1usize << w) {
            table.push(self.montmul(&table[i - 1], &base_mont));
        }
        let windows = bits.div_ceil(w);
        let mut acc = one_mont;
        for widx in (0..windows).rev() {
            for _ in 0..w {
                acc = self.montsqr(&acc);
            }
            let mut val = 0usize;
            for b in (0..w).rev() {
                val = (val << 1) | exponent.bit(widx * w + b) as usize;
            }
            if val != 0 {
                acc = self.montmul(&acc, &table[val]);
            }
        }
        self.from_mont(&acc)
    }
}

/// Montgomery-form modular arithmetic over **64-bit limbs**.
///
/// [`BigUint`] stores 32-bit limbs; packing pairs of them into `u64` words
/// halves the limb count on x86-64, so the CIOS inner loops run half as many
/// iterations with `u128` double-word intermediates — the 64×64→128 multiply
/// is a single `mul` instruction.  The structure mirrors [`MontgomeryCtx`]
/// exactly (CIOS multiply, SOS-reduced specialised squaring, fixed-window
/// exponentiation); the 32-bit context is retained as the differential
/// reference that `tests/crypto_differential.rs` pins this one against.
///
/// The fixed-window exponentiation here additionally selects table entries
/// with a constant-time masked scan ([`ct_select64`]) and multiplies on
/// every window — including zero windows, by the identity — so neither the
/// memory addresses touched nor the multiply count depend on exponent bits
/// (side-channel hygiene for the RSA signing path, which feeds secret CRT
/// exponents through here).
#[derive(Debug, Clone)]
pub struct MontgomeryCtx64 {
    /// Modulus limbs, exactly `k` of them.
    n: Vec<u64>,
    /// The modulus as a `BigUint` (for reductions at the boundary).
    n_big: BigUint,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R² mod n` where `R = 2^(64k)`, in padded limb form.
    r2: Vec<u64>,
    /// Limb count of the modulus.
    k: usize,
}

impl MontgomeryCtx64 {
    /// Builds a context for `modulus`; `None` when the modulus is even, zero
    /// or one (callers fall back to [`BigUint::modpow_slow`]).
    pub fn new(modulus: &BigUint) -> Option<MontgomeryCtx64> {
        if modulus.is_zero() || modulus.is_one() || modulus.is_even() {
            return None;
        }
        let k = modulus.limbs.len().div_ceil(2);
        let n = Self::pack(modulus, k);
        // Newton iteration for n0⁻¹ mod 2⁶⁴: correct bits double each step,
        // so six steps reach 64 from the seed's 1 (n0 odd ⇒ n0·1 ≡ 1 mod 2).
        let n0 = n[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0_inv = inv.wrapping_neg();
        // R² mod n, R = 2^(64k): the only full division in the context.
        let r2_big = BigUint::one().shl(128 * k).rem(modulus);
        let r2 = Self::pack(&r2_big, k);
        Some(MontgomeryCtx64 {
            n,
            n_big: modulus.clone(),
            n0_inv,
            r2,
            k,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n_big
    }

    /// Packs the 32-bit storage limbs into `k` 64-bit words (little-endian).
    fn pack(x: &BigUint, k: usize) -> Vec<u64> {
        let mut v = vec![0u64; k];
        for (i, &limb) in x.limbs.iter().enumerate() {
            v[i / 2] |= (limb as u64) << (32 * (i % 2));
        }
        v
    }

    /// Unpacks 64-bit limbs back into the 32-bit storage representation.
    fn unpack(limbs: &[u64]) -> BigUint {
        let mut out = Vec::with_capacity(limbs.len() * 2);
        for &limb in limbs {
            out.push(limb as u32);
            out.push((limb >> 32) as u32);
        }
        let mut big = BigUint { limbs: out };
        big.normalize();
        big
    }

    /// CIOS Montgomery multiplication: returns `a·b·R⁻¹ mod n`.
    ///
    /// Inputs must be `k` limbs and `< n`; the output is `k` limbs and `< n`.
    fn montmul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k;
        let mut t = vec![0u64; k + 2];
        for &ai in a {
            let ai = ai as u128;
            // t += a[i] * b
            let mut carry = 0u128;
            for j in 0..k {
                let cur = t[j] as u128 + ai * b[j] as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;
            // t += m * n; t >>= 64  (m chosen so the low limb cancels)
            let m = (t[0].wrapping_mul(self.n0_inv)) as u128;
            let cur = t[0] as u128 + m * self.n[0] as u128;
            let mut carry = cur >> 64;
            for j in 1..k {
                let cur = t[j] as u128 + m * self.n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1].wrapping_add((cur >> 64) as u64);
        }
        // Conditional subtraction: t < 2n, so at most one subtract of n.
        if t[k] != 0 || !limbs64_less(&t[..k], &self.n) {
            let borrow = limbs64_sub_assign(&mut t[..k], &self.n);
            debug_assert_eq!(t[k], borrow, "CIOS result was not < 2n");
            t[k] = 0;
        }
        t.truncate(k);
        t
    }

    /// Squaring-specialised Montgomery multiplication: returns
    /// `a·a·R⁻¹ mod n`, bit-identical to `montmul(a, a)`.
    ///
    /// Same shape as [`MontgomeryCtx::montsqr`]: off-diagonal products
    /// computed once and doubled, diagonal squares added, then a separate
    /// SOS reduction pass.
    fn montsqr(&self, a: &[u64]) -> Vec<u64> {
        let k = self.k;
        // --- multiplication phase: t = a², 2k limbs (+1 headroom) --------
        let mut t = vec![0u64; 2 * k + 1];
        for i in 0..k {
            let ai = a[i] as u128;
            let mut carry = 0u128;
            for j in i + 1..k {
                let cur = t[i + j] as u128 + ai * a[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        // Double the off-diagonal sum (2·Σ a[i]a[j] ≤ a² < 2^(128k), so the
        // shifted-out carry lands inside the 2k limbs).
        let mut carry = 0u64;
        for limb in t.iter_mut().take(2 * k) {
            let cur = ((*limb as u128) << 1) | carry as u128;
            *limb = cur as u64;
            carry = (cur >> 64) as u64;
        }
        debug_assert_eq!(carry, 0, "doubled off-diagonal sum overflowed a²");
        // Diagonal squares.
        let mut carry = 0u128;
        for i in 0..k {
            let sq = (a[i] as u128) * (a[i] as u128);
            let lo = t[2 * i] as u128 + (sq & u64::MAX as u128) + carry;
            t[2 * i] = lo as u64;
            let hi = t[2 * i + 1] as u128 + (sq >> 64) + (lo >> 64);
            t[2 * i + 1] = hi as u64;
            carry = hi >> 64;
        }
        debug_assert_eq!(carry, 0, "a² overflowed 2k limbs");
        // --- reduction phase: SOS Montgomery reduction of t ---------------
        for i in 0..k {
            let m = (t[i].wrapping_mul(self.n0_inv)) as u128;
            let mut carry = 0u128;
            for j in 0..k {
                let cur = t[i + j] as u128 + m * self.n[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        // Result = t >> 64k; t < a² + n·R < 2nR, so one conditional subtract.
        let mut r = t[k..=2 * k].to_vec();
        if r[k] != 0 || !limbs64_less(&r[..k], &self.n) {
            let borrow = limbs64_sub_assign(&mut r[..k], &self.n);
            debug_assert_eq!(r[k], borrow, "SOS result was not < 2n");
            r[k] = 0;
        }
        r.truncate(k);
        r
    }

    /// Converts into Montgomery form: `x·R mod n`.
    fn to_mont(&self, x: &BigUint) -> Vec<u64> {
        let reduced = x.rem(&self.n_big);
        self.montmul(&Self::pack(&reduced, self.k), &self.r2)
    }

    /// Converts out of Montgomery form.
    #[allow(clippy::wrong_self_convention)]
    fn from_mont(&self, x: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.k];
        one[0] = 1;
        Self::unpack(&self.montmul(x, &one))
    }

    /// Modular multiplication through the context: `a·b mod n`.
    pub fn mulmod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.montmul(&am, &bm))
    }

    /// Modular squaring through the context's specialised squaring path:
    /// `a·a mod n`, bit-identical to `mulmod(a, a)`.
    pub fn sqrmod(&self, a: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        self.from_mont(&self.montsqr(&am))
    }

    /// Fixed-window modular exponentiation: `base^exponent mod n`.
    ///
    /// Same window policy as [`MontgomeryCtx::modpow`], but the table lookup
    /// is a constant-time masked scan ([`ct_select64`]) and every window
    /// multiplies (zero windows multiply by the Montgomery identity, which
    /// leaves the accumulator bit-identical), so the access pattern carries
    /// no information about the exponent.
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        let bits = exponent.bit_len();
        let one_mont = self.montmul(
            &{
                let mut one = vec![0u64; self.k];
                one[0] = 1;
                one
            },
            &self.r2,
        );
        if bits == 0 {
            return self.from_mont(&one_mont);
        }
        let base_mont = self.to_mont(base);
        let w: usize = if bits >= 1024 {
            5
        } else if bits >= 64 {
            4
        } else {
            1
        };
        if w == 1 {
            // Left-to-right binary scan (short public exponents only).
            let mut acc = one_mont;
            for i in (0..bits).rev() {
                acc = self.montsqr(&acc);
                if exponent.bit(i) {
                    acc = self.montmul(&acc, &base_mont);
                }
            }
            return self.from_mont(&acc);
        }
        // Table of base^0 .. base^(2^w - 1) in Montgomery form.
        let mut table = Vec::with_capacity(1 << w);
        table.push(one_mont.clone());
        for i in 1..(1usize << w) {
            table.push(self.montmul(&table[i - 1], &base_mont));
        }
        let windows = bits.div_ceil(w);
        let mut acc = one_mont;
        for widx in (0..windows).rev() {
            for _ in 0..w {
                acc = self.montsqr(&acc);
            }
            let mut val = 0usize;
            for b in (0..w).rev() {
                val = (val << 1) | exponent.bit(widx * w + b) as usize;
            }
            let entry = ct_select64(&table, val);
            acc = self.montmul(&acc, &entry);
        }
        self.from_mont(&acc)
    }
}

/// Constant-time table selection: returns `table[index]` by scanning every
/// entry and accumulating under a mask, so the touched addresses and the
/// instruction stream are independent of `index`.
///
/// Bit-identical to naive indexing (pinned by the differential battery);
/// used by [`MontgomeryCtx64::modpow`] so the fixed-window exponentiation
/// never indexes its table with secret exponent bits.
pub fn ct_select64(table: &[Vec<u64>], index: usize) -> Vec<u64> {
    let width = table.first().map_or(0, |e| e.len());
    let mut out = vec![0u64; width];
    for (i, entry) in table.iter().enumerate() {
        // All-ones when i == index, all-zeros otherwise, without a branch:
        // x | -x has its top bit set exactly when x != 0.
        let x = (i ^ index) as u64;
        let mask = ((x | x.wrapping_neg()) >> 63).wrapping_sub(1);
        for (slot, &limb) in out.iter_mut().zip(entry) {
            *slot |= limb & mask;
        }
    }
    out
}

/// `a < b` over equal-length little-endian 64-bit limb slices.
fn limbs64_less(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    false
}

/// `a -= b` over equal-length little-endian 64-bit limb slices; returns the
/// final borrow (1 when `b > a`).
fn limbs64_sub_assign(a: &mut [u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 | b2) as u64;
    }
    borrow
}

/// `a < b` over equal-length little-endian limb slices.
fn limbs_less(a: &[u32], b: &[u32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    false
}

/// `a -= b` over equal-length little-endian limb slices; returns the final
/// borrow (1 when `b > a`, i.e. the subtraction wrapped mod `2^(32·len)`).
fn limbs_sub_assign(a: &mut [u32], b: &[u32]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let mut borrow = 0i64;
    for i in 0..a.len() {
        let mut diff = a[i] as i64 - b[i] as i64 - borrow;
        if diff < 0 {
            diff += 1 << 32;
            borrow = 1;
        } else {
            borrow = 0;
        }
        a[i] = diff as u32;
    }
    borrow as u32
}

/// Minimal signed big integer used only by the extended Euclidean algorithm.
#[derive(Debug, Clone)]
struct SignedBig {
    negative: bool,
    magnitude: BigUint,
}

impl SignedBig {
    fn zero() -> Self {
        SignedBig {
            negative: false,
            magnitude: BigUint::zero(),
        }
    }

    fn positive(magnitude: BigUint) -> Self {
        SignedBig {
            negative: false,
            magnitude,
        }
    }

    fn sub(&self, other: &SignedBig) -> SignedBig {
        match (self.negative, other.negative) {
            (false, true) => SignedBig {
                negative: false,
                magnitude: self.magnitude.add(&other.magnitude),
            },
            (true, false) => SignedBig {
                negative: true,
                magnitude: self.magnitude.add(&other.magnitude),
            },
            (sn, _) => {
                // Same sign: subtract magnitudes.
                if self.magnitude.cmp_big(&other.magnitude) == Ordering::Less {
                    SignedBig {
                        negative: !sn,
                        magnitude: other.magnitude.sub(&self.magnitude),
                    }
                } else {
                    SignedBig {
                        negative: sn,
                        magnitude: self.magnitude.sub(&other.magnitude),
                    }
                }
            }
        }
    }

    fn mul_uint(&self, v: &BigUint) -> SignedBig {
        SignedBig {
            negative: self.negative && !v.is_zero(),
            magnitude: self.magnitude.mul(v),
        }
    }

    /// Reduces the signed value into `[0, modulus)`.
    fn to_mod(&self, modulus: &BigUint) -> BigUint {
        let m = self.magnitude.rem(modulus);
        if self.negative && !m.is_zero() {
            modulus.sub(&m)
        } else {
            m
        }
    }
}

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: &[u64] = &[
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn construction_and_bytes() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(
            big(0x1234_5678_9abc_def0).to_u64(),
            Some(0x1234_5678_9abc_def0)
        );
        let n = BigUint::from_be_bytes(&[0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(n.to_u64(), Some(0x0102030405));
        assert_eq!(n.to_be_bytes(), vec![0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(
            n.to_be_bytes_padded(8).unwrap(),
            vec![0, 0, 0, 0x01, 0x02, 0x03, 0x04, 0x05]
        );
        assert!(n.to_be_bytes_padded(2).is_none());
        assert_eq!(BigUint::zero().to_be_bytes(), vec![0]);
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        let a = BigUint::from_be_bytes(&[0, 0, 0, 42]);
        assert_eq!(a, big(42));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = big(u64::MAX).mul(&big(12345));
        let b = big(987654321);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.add(&b).sub(&a), b);
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(big(0).mul(&big(55)), big(0));
        assert_eq!(big(7).mul(&big(6)), big(42));
        let a = big(u32::MAX as u64);
        assert_eq!(
            a.mul(&a).to_u64(),
            Some((u32::MAX as u64) * (u32::MAX as u64))
        );
    }

    #[test]
    fn shifts() {
        let a = big(0b1011);
        assert_eq!(a.shl(3), big(0b1011000));
        assert_eq!(a.shl(3).shr(3), a);
        assert_eq!(a.shr(10), BigUint::zero());
        assert_eq!(a.shl(100).shr(100), a);
        assert_eq!(big(1).shl(64).bit_len(), 65);
    }

    #[test]
    fn div_rem_small_and_large() {
        let (q, r) = big(100).div_rem(&big(7));
        assert_eq!((q, r), (big(14), big(2)));

        let a = big(u64::MAX).mul(&big(u64::MAX)).add(&big(12345));
        let d = big(u64::MAX);
        let (q, r) = a.div_rem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r.cmp_big(&d) == Ordering::Less);

        // Divisor larger than dividend.
        let (q, r) = big(5).div_rem(&big(100));
        assert_eq!((q, r), (BigUint::zero(), big(5)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn modpow_known_values() {
        // 4^13 mod 497 = 445 (classic textbook example).
        assert_eq!(big(4).modpow(&big(13), &big(497)), big(445));
        // Fermat: a^(p-1) mod p == 1 for prime p not dividing a.
        assert_eq!(big(17).modpow(&big(1008), &big(1009)), big(1));
        // Modulus one.
        assert_eq!(big(5).modpow(&big(5), &big(1)), BigUint::zero());
    }

    #[test]
    fn montgomery_matches_slow_modpow() {
        let mut rng = StdRng::seed_from_u64(0x4d30_4d30);
        for bits in [33usize, 64, 96, 160, 256, 384] {
            let modulus = BigUint::random_odd_with_bits(&mut rng, bits);
            for _ in 0..4 {
                let base = BigUint::random_bits(&mut rng, bits + 17);
                let exp = BigUint::random_bits(&mut rng, bits);
                assert_eq!(
                    base.modpow(&exp, &modulus),
                    base.modpow_slow(&exp, &modulus),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn montgomery_edge_cases() {
        let modulus = big(1009); // odd prime
                                 // exponent zero -> 1; base zero -> 0; base == modulus -> 0.
        assert_eq!(big(7).modpow(&BigUint::zero(), &modulus), big(1));
        assert_eq!(BigUint::zero().modpow(&big(5), &modulus), BigUint::zero());
        assert_eq!(big(1009).modpow(&big(3), &modulus), BigUint::zero());
        // 0^0 == 1 by convention (both paths agree).
        assert_eq!(
            BigUint::zero().modpow(&BigUint::zero(), &modulus),
            BigUint::zero().modpow_slow(&BigUint::zero(), &modulus)
        );
        // Even modulus falls back to the slow path transparently.
        assert_eq!(
            big(7).modpow(&big(30), &big(1024)),
            big(7).modpow_slow(&big(30), &big(1024))
        );
        assert!(MontgomeryCtx::new(&big(1024)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
    }

    /// The squaring-specialised inner loop must be bit-identical to the
    /// general CIOS multiply with both operands equal — across widths, random
    /// values, and the boundary values 0, 1 and n-1.
    #[test]
    fn montgomery_squaring_matches_multiply() {
        let mut rng = StdRng::seed_from_u64(0x5175_a4e5);
        for bits in [33usize, 64, 96, 160, 256, 384, 768] {
            let modulus = BigUint::random_odd_with_bits(&mut rng, bits);
            let ctx = MontgomeryCtx::new(&modulus).unwrap();
            let mut cases: Vec<BigUint> = (0..6)
                .map(|_| BigUint::random_below(&mut rng, &modulus))
                .collect();
            cases.push(BigUint::zero());
            cases.push(BigUint::one());
            cases.push(modulus.sub(&BigUint::one()));
            for a in &cases {
                let am = MontgomeryCtx::pad(&a.rem(&modulus), ctx.k);
                assert_eq!(ctx.montsqr(&am), ctx.montmul(&am, &am), "bits={bits} a={a}");
            }
        }
    }

    #[test]
    fn montgomery64_matches_32bit_reference() {
        let mut rng = StdRng::seed_from_u64(0x6464_6464);
        for bits in [33usize, 64, 65, 96, 128, 160, 256, 384, 768] {
            let modulus = BigUint::random_odd_with_bits(&mut rng, bits);
            let ctx64 = MontgomeryCtx64::new(&modulus).unwrap();
            let ctx32 = MontgomeryCtx::new(&modulus).unwrap();
            assert_eq!(ctx64.modulus(), &modulus);
            for _ in 0..4 {
                let a = BigUint::random_bits(&mut rng, bits + 9);
                let b = BigUint::random_bits(&mut rng, bits);
                let exp = BigUint::random_bits(&mut rng, bits);
                assert_eq!(ctx64.mulmod(&a, &b), ctx32.mulmod(&a, &b), "bits={bits}");
                assert_eq!(ctx64.sqrmod(&a), ctx32.sqrmod(&a), "bits={bits}");
                assert_eq!(
                    ctx64.modpow(&a, &exp),
                    ctx32.modpow(&a, &exp),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn montgomery64_edge_cases() {
        let modulus = big(1009);
        assert_eq!(big(7).modpow(&BigUint::zero(), &modulus), big(1));
        assert_eq!(BigUint::zero().modpow(&big(5), &modulus), BigUint::zero());
        assert!(MontgomeryCtx64::new(&big(1024)).is_none());
        assert!(MontgomeryCtx64::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx64::new(&BigUint::zero()).is_none());
        // An odd number of 32-bit storage limbs exercises the half-filled
        // top 64-bit limb.
        let mut rng = StdRng::seed_from_u64(9);
        let odd_limbs = BigUint::random_odd_with_bits(&mut rng, 96);
        assert_eq!(odd_limbs.limbs.len(), 3);
        let ctx = MontgomeryCtx64::new(&odd_limbs).unwrap();
        let a = BigUint::random_bits(&mut rng, 96);
        assert_eq!(ctx.mulmod(&a, &a), a.mulmod(&a, &odd_limbs));
    }

    #[test]
    fn ct_select_matches_naive_indexing() {
        let mut rng = StdRng::seed_from_u64(0xc7);
        let table: Vec<Vec<u64>> = (0..32)
            .map(|_| (0..6).map(|_| rng.gen::<u64>()).collect())
            .collect();
        for idx in 0..table.len() {
            assert_eq!(ct_select64(&table, idx), table[idx], "idx={idx}");
        }
        // Out-of-range index selects nothing (all-zero result).
        assert_eq!(ct_select64(&table, 99), vec![0u64; 6]);
        assert_eq!(ct_select64(&[], 0), Vec::<u64>::new());
    }

    #[test]
    fn modpow_ref32_matches_fast_path() {
        let mut rng = StdRng::seed_from_u64(0x3232);
        let modulus = BigUint::random_odd_with_bits(&mut rng, 256);
        let base = BigUint::random_bits(&mut rng, 256);
        let exp = BigUint::random_bits(&mut rng, 256);
        assert_eq!(
            base.modpow(&exp, &modulus),
            base.modpow_ref32(&exp, &modulus)
        );
        // Even modulus: both dispatch to the slow path.
        assert_eq!(
            big(7).modpow_ref32(&big(30), &big(1024)),
            big(7).modpow_slow(&big(30), &big(1024))
        );
    }

    #[test]
    fn montgomery_ctx_mulmod_matches_naive() {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let modulus = BigUint::random_odd_with_bits(&mut rng, 192);
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        assert_eq!(ctx.modulus(), &modulus);
        for _ in 0..8 {
            let a = BigUint::random_bits(&mut rng, 200);
            let b = BigUint::random_bits(&mut rng, 150);
            assert_eq!(ctx.mulmod(&a, &b), a.mulmod(&b, &modulus));
        }
    }

    #[test]
    fn gcd_and_modinv() {
        assert_eq!(big(54).gcd(&big(24)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        let inv = big(3).modinv(&big(11)).unwrap();
        assert_eq!(inv, big(4)); // 3*4 = 12 ≡ 1 mod 11
        assert!(big(6).modinv(&big(9)).is_none()); // gcd != 1
        let e = big(65537);
        let phi = big(3120); // not coprime-free example: gcd(65537,3120)=1
        let d = e.modinv(&phi).unwrap();
        assert_eq!(e.mulmod(&d, &phi), BigUint::one());
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(42);
        for p in [2u64, 3, 5, 7, 97, 101, 257, 65537, 1009, 104729] {
            assert!(
                big(p).is_probable_prime(&mut rng, 16),
                "{p} should be prime"
            );
        }
        for c in [1u64, 4, 100, 561, 6601, 65536, 104730] {
            assert!(
                !big(c).is_probable_prime(&mut rng, 16),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn generate_small_prime() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = BigUint::generate_prime(&mut rng, 64, 12);
        assert_eq!(p.bit_len(), 64);
        assert!(p.is_probable_prime(&mut rng, 16));
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let bound = big(1000);
        for _ in 0..200 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v.cmp_big(&bound) == Ordering::Less);
        }
    }

    #[test]
    fn display_hex() {
        assert_eq!(BigUint::zero().to_string(), "0x0");
        assert_eq!(big(255).to_string(), "0xff");
        assert_eq!(big(0x1_0000_0001).to_string(), "0x100000001");
    }

    #[test]
    fn ordering_traits() {
        let mut v = vec![big(5), big(1), big(300), BigUint::zero()];
        v.sort();
        assert_eq!(v, vec![BigUint::zero(), big(1), big(5), big(300)]);
    }
}
