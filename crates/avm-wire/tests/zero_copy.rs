//! Property battery for the zero-copy wire path.
//!
//! The borrowed-slice decoders ([`AuditResponseRef`], [`BlobResponseRef`])
//! and the multi-part frame writer ([`write_frame_parts`]) exist purely as
//! allocation-avoiding twins of the owned path — the bytes on the wire must
//! not change.  These properties pin that equivalence from both directions:
//! borrowed decode agrees with owned decode on arbitrary messages, and
//! re-sealing a decoded frame reproduces the original packet bit for bit.

use avm_wire::audit::{
    open_session_frame, open_session_message, seal_encoded_message, seal_session_message,
};
use avm_wire::{
    read_frame, write_frame, write_frame_parts, AuditResponse, AuditResponseRef, BlobResponse,
    BlobResponseRef, Decode, Encode, Reader,
};
use proptest::prelude::*;

/// Arbitrary audit responses covering every variant, including empty and
/// `None` payloads.
fn audit_response_strategy() -> impl Strategy<Value = AuditResponse> {
    let bytes = || proptest::collection::vec(any::<u8>(), 0..200);
    prop_oneof![
        bytes().prop_map(|manifest| AuditResponse::Manifest { manifest }),
        proptest::collection::vec(proptest::option::of(bytes()), 0..6)
            .prop_map(|blobs| AuditResponse::Blobs(BlobResponse { blobs })),
        (any::<[u8; 32]>(), proptest::collection::vec(bytes(), 0..6))
            .prop_map(|(prev_hash, entries)| AuditResponse::LogSegment { prev_hash, entries }),
        bytes().prop_map(|stream| AuditResponse::Sections { stream }),
        proptest::collection::vec(any::<u8>(), 0..60).prop_map(|raw| AuditResponse::Error {
            // Project arbitrary bytes into printable ASCII so the message is
            // valid UTF-8 (the wire type is a string).
            message: raw.into_iter().map(|b| char::from(b'!' + b % 94)).collect(),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Borrowed-slice decode equals owned decode for every response shape,
    /// and the borrowed value re-encodes to exactly the bytes it was decoded
    /// from.
    #[test]
    fn borrowed_audit_decode_matches_owned(response in audit_response_strategy()) {
        let encoded = response.encode_to_vec();
        let owned = AuditResponse::decode_exact(&encoded).unwrap();
        let borrowed = AuditResponseRef::decode_exact(&encoded).unwrap();
        prop_assert_eq!(&owned, &response);
        prop_assert_eq!(borrowed.to_owned(), response);
        prop_assert_eq!(borrowed.encode_to_vec(), encoded);
    }

    /// Blob responses: borrowed and owned decoders agree, payload accounting
    /// agrees, and the borrowed re-encode is byte-identical.
    #[test]
    fn borrowed_blob_decode_matches_owned(
        blobs in proptest::collection::vec(
            proptest::option::of(proptest::collection::vec(any::<u8>(), 0..300)),
            0..8,
        )
    ) {
        let response = BlobResponse { blobs };
        let encoded = response.encode_to_vec();
        let mut r = Reader::new(&encoded);
        let borrowed = BlobResponseRef::decode(&mut r).unwrap();
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(borrowed.payload_bytes(), response.payload_bytes());
        prop_assert_eq!(borrowed.to_owned(), response);
        prop_assert_eq!(borrowed.encode_to_vec(), encoded);
    }

    /// Sealing, peeking and re-sealing a session packet is lossless: the
    /// envelope ids survive, the body slice is the message encoding, and
    /// `seal_encoded_message` over the decoded body rebuilds the identical
    /// packet.
    #[test]
    fn reseal_reproduces_original_packet(
        session_id in any::<u64>(),
        request_id in any::<u64>(),
        response in audit_response_strategy(),
    ) {
        let packet = seal_session_message(session_id, request_id, &response);
        let (sid, rid, body) = open_session_frame(&packet).unwrap();
        prop_assert_eq!(sid, session_id);
        prop_assert_eq!(rid, request_id);
        prop_assert_eq!(body, &response.encode_to_vec()[..]);
        // Peek agrees with the full decode...
        let (sid2, rid2, decoded) =
            open_session_message::<AuditResponse>(&packet).unwrap();
        prop_assert_eq!((sid2, rid2), (sid, rid));
        prop_assert_eq!(&decoded, &response);
        // ...and a borrowed decode of the body re-seals bit-identically.
        let borrowed = AuditResponseRef::decode_exact(body).unwrap();
        let resealed = seal_encoded_message(sid, rid, &borrowed.encode_to_vec());
        prop_assert_eq!(resealed, packet);
    }

    /// The multi-part frame writer produces exactly the bytes of the
    /// single-buffer writer over the concatenated parts, for every split.
    #[test]
    fn frame_parts_equal_single_buffer_frame(
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        cuts in proptest::collection::vec(any::<usize>(), 0..4),
    ) {
        let mut bounds: Vec<usize> = cuts
            .into_iter()
            .map(|c| if payload.is_empty() { 0 } else { c % payload.len() })
            .collect();
        bounds.push(0);
        bounds.push(payload.len());
        bounds.sort_unstable();
        let parts: Vec<&[u8]> = bounds
            .windows(2)
            .map(|w| &payload[w[0]..w[1]])
            .collect();

        let mut whole = Vec::new();
        write_frame(&mut whole, &payload);
        let mut split = Vec::new();
        let written = write_frame_parts(&mut split, &parts);
        prop_assert_eq!(written, split.len());
        prop_assert_eq!(&split, &whole);
        let (decoded, consumed) = read_frame(&split).unwrap();
        prop_assert_eq!(decoded, &payload[..]);
        prop_assert_eq!(consumed, split.len());
    }
}
