//! CRC-32 (IEEE 802.3 polynomial) checksum.
//!
//! Used by the framing layer and by the compressor to detect accidental
//! corruption; it is *not* a cryptographic integrity mechanism (the
//! tamper-evident log's hash chain serves that purpose).

/// Computes the CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finish()
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Lookup table for byte-at-a-time CRC computation.
static CRC_TABLE: [u32; 256] = build_table();

impl Crc32 {
    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            let idx = ((crc ^ byte as u32) & 0xff) as usize;
            crc = (crc >> 8) ^ CRC_TABLE[idx];
        }
        self.state = crc;
    }

    /// Returns the finished checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"accountable virtual machines";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
        assert_ne!(crc32(b"abc"), crc32(b"abcd"));
    }
}
