//! The audit wire protocol: one request/response message pair for every
//! exchange an auditor performs against a provider (paper §3.5, §4.5).
//!
//! The paper's audits are a *distributed* exchange: Alice downloads Bob's
//! log, snapshots, and — in the incremental mode of §3.5 — individual state
//! blobs over a real link.  This module defines the byte format of that
//! exchange so the same protocol can be carried by different transports (an
//! in-process call, or the simulated network in `avm-net`):
//!
//! * [`AuditRequest`] — auditor → provider.  Five kinds, covering every
//!   exchange a spot check, full audit or attested audit performs:
//!   1. **manifest fetch** — the chain-manifest metadata that starts an
//!      on-demand or dedup reconstruction,
//!   2. **batched blob fetch** — a [`BlobRequest`] of content digests,
//!   3. **log-segment fetch** — log entries addressed either by sequence
//!      range (full audits) or by snapshot chunk (spot checks, §3.5),
//!   4. **snapshot-section fetch** — the whole-section transfer stream of
//!      the full-download model,
//!   5. **attestation challenge** — the nonce'd launch-measurement
//!      challenge of [`crate::attest`], sent before the audit proper.
//! * [`AuditResponse`] — provider → auditor: the matching payloads, or an
//!   [`AuditResponse::Error`] when the provider cannot serve the request.
//!
//! Manifest and section payloads are *opaque byte strings* at this layer:
//! `avm-wire` sits below `avm-core`, so the semantic types (`ChainManifest`,
//! the section stream) encode themselves and travel here as bytes.  Log
//! entries travel as one encoded `LogEntry` per element for the same reason.
//!
//! # Envelopes, sessions, and retransmission
//!
//! On a lossy transport, requests are retransmitted on timeout, so a
//! response must be matchable to the request that caused it — and a
//! provider serving many concurrent auditors must know *which* auditor's
//! request-id space a frame belongs to.  [`seal_session_message`] wraps an
//! encoded message in `varint session-id || varint request-id || message`,
//! framed with the checksummed [`crate::frame`] format;
//! [`open_session_message`] reverses it.  Request ids are scoped to their
//! session: two sessions may both be on request 3 without ambiguity.  A
//! receiver discards frames whose (session, request) pair does not match an
//! exchange it is waiting on (stale responses to a retransmitted request).
//!
//! Single-session transports use the [`seal_message`] / [`open_message`]
//! wrappers, which pin the session id to [`CLIENT_SESSION`] — a fleet
//! session sealing with the same id is therefore *byte-identical* on the
//! wire to the single-client path, which is what lets the fleet refactor
//! pin its N=1 run against the legacy transport.  [`seal_encoded_message`]
//! seals an already-encoded message body, so a provider can serve one
//! cached response encoding to many sessions without re-encoding it.

use crate::attest::{AttestChallenge, AttestQuote, AttestQuoteRef};
use crate::blob::{BlobRequest, BlobResponse, BlobResponseRef};
use crate::frame::{read_frame, write_frame_parts};
use crate::{Decode, Encode, Reader, WireError, WireResult, Writer};

/// How a log-segment fetch addresses the entries it wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentAddress {
    /// An explicit sequence range `[from_seq, to_seq]`, 1-based inclusive;
    /// `to_seq == 0` means "to the end of the log".  Used by full audits.
    Seq {
        /// First sequence number requested.
        from_seq: u64,
        /// Last sequence number requested (0 = end of log).
        to_seq: u64,
    },
    /// The §3.5 chunk between two snapshots: every entry after the SNAPSHOT
    /// entry for `start_snapshot` (exclusive) up to the SNAPSHOT entry
    /// `chunk` snapshots later (inclusive), or the end of the log.  The
    /// provider resolves the boundaries — only it knows its log's layout.
    Chunk {
        /// Snapshot id the chunk starts from.
        start_snapshot: u64,
        /// Number of consecutive segments covered (`k`).
        chunk: u64,
    },
}

impl Encode for SegmentAddress {
    fn encode(&self, w: &mut Writer) {
        match self {
            SegmentAddress::Seq { from_seq, to_seq } => {
                w.put_u8(1);
                w.put_varint(*from_seq);
                w.put_varint(*to_seq);
            }
            SegmentAddress::Chunk {
                start_snapshot,
                chunk,
            } => {
                w.put_u8(2);
                w.put_varint(*start_snapshot);
                w.put_varint(*chunk);
            }
        }
    }
}

impl Decode for SegmentAddress {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            1 => Ok(SegmentAddress::Seq {
                from_seq: r.get_varint()?,
                to_seq: r.get_varint()?,
            }),
            2 => Ok(SegmentAddress::Chunk {
                start_snapshot: r.get_varint()?,
                chunk: r.get_varint()?,
            }),
            tag => Err(WireError::InvalidTag {
                what: "SegmentAddress",
                tag: tag as u64,
            }),
        }
    }
}

/// Auditor → provider: one request of the audit protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditRequest {
    /// "Send me the chain manifest for snapshot `snapshot_id`" — the
    /// metadata download that starts an on-demand or dedup reconstruction.
    Manifest {
        /// Snapshot the manifest should reconstruct.
        snapshot_id: u64,
    },
    /// "Send me these payload blobs" — the batched digest-addressed fetch.
    Blobs(BlobRequest),
    /// "Send me this log segment" (by seq range or snapshot chunk).
    LogSegment(SegmentAddress),
    /// "Send me the whole-section transfer stream up to snapshot `upto_id`"
    /// — the full-download model's state transfer.
    Sections {
        /// Snapshot the download reconstructs.
        upto_id: u64,
    },
    /// "Prove your launch state, bound to this nonce" — the attestation
    /// challenge ([`crate::attest`]).  Auditors send it first and continue
    /// into ordinary spot-check requests over the same session.
    Attest(AttestChallenge),
}

impl Encode for AuditRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            AuditRequest::Manifest { snapshot_id } => {
                w.put_u8(1);
                w.put_varint(*snapshot_id);
            }
            AuditRequest::Blobs(req) => {
                w.put_u8(2);
                req.encode(w);
            }
            AuditRequest::LogSegment(addr) => {
                w.put_u8(3);
                addr.encode(w);
            }
            AuditRequest::Sections { upto_id } => {
                w.put_u8(4);
                w.put_varint(*upto_id);
            }
            AuditRequest::Attest(challenge) => {
                w.put_u8(5);
                challenge.encode(w);
            }
        }
    }
}

impl Decode for AuditRequest {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            1 => Ok(AuditRequest::Manifest {
                snapshot_id: r.get_varint()?,
            }),
            2 => Ok(AuditRequest::Blobs(BlobRequest::decode(r)?)),
            3 => Ok(AuditRequest::LogSegment(SegmentAddress::decode(r)?)),
            4 => Ok(AuditRequest::Sections {
                upto_id: r.get_varint()?,
            }),
            5 => Ok(AuditRequest::Attest(AttestChallenge::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                what: "AuditRequest",
                tag: tag as u64,
            }),
        }
    }
}

/// Provider → auditor: the answer to one [`AuditRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditResponse {
    /// The encoded `ChainManifest` (opaque at this layer).
    Manifest {
        /// Encoded manifest bytes.
        manifest: Vec<u8>,
    },
    /// The payloads for a [`AuditRequest::Blobs`] request.
    Blobs(BlobResponse),
    /// A log segment: the chain hash preceding the first returned entry and
    /// one encoded `LogEntry` per element.
    ///
    /// For a [`SegmentAddress::Chunk`] request on a log whose SNAPSHOT
    /// records do not all decode, an honest provider returns the log
    /// *prefix* up to and including the first undecodable record — the
    /// auditor re-scans what it received and reaches the malformed-log
    /// verdict itself (it never trusts the provider's own classification).
    LogSegment {
        /// Hash of the entry preceding the segment (the chain anchor a
        /// syntactic check verifies against).
        prev_hash: [u8; 32],
        /// The entries, each encoded as a `LogEntry`.
        entries: Vec<Vec<u8>>,
    },
    /// The whole-section transfer stream (opaque at this layer).
    Sections {
        /// The stream bytes.
        stream: Vec<u8>,
    },
    /// The provider cannot serve the request (unknown snapshot, no log, …).
    Error {
        /// Human-readable reason, mapped back to an error by the client.
        message: String,
    },
    /// The attestation quote answering an [`AuditRequest::Attest`]
    /// challenge.  Nonce-dependent, so never served from a response cache.
    Attestation(AttestQuote),
}

impl Encode for AuditResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            AuditResponse::Manifest { manifest } => {
                w.put_u8(1);
                w.put_bytes(manifest);
            }
            AuditResponse::Blobs(resp) => {
                w.put_u8(2);
                resp.encode(w);
            }
            AuditResponse::LogSegment { prev_hash, entries } => {
                w.put_u8(3);
                w.put_raw(prev_hash);
                entries.encode(w);
            }
            AuditResponse::Sections { stream } => {
                w.put_u8(4);
                w.put_bytes(stream);
            }
            AuditResponse::Error { message } => {
                w.put_u8(5);
                w.put_str(message);
            }
            AuditResponse::Attestation(quote) => {
                w.put_u8(6);
                quote.encode(w);
            }
        }
    }
}

impl Decode for AuditResponse {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            1 => Ok(AuditResponse::Manifest {
                manifest: r.get_bytes()?.to_vec(),
            }),
            2 => Ok(AuditResponse::Blobs(BlobResponse::decode(r)?)),
            3 => {
                let mut prev_hash = [0u8; 32];
                prev_hash.copy_from_slice(r.get_raw(32)?);
                Ok(AuditResponse::LogSegment {
                    prev_hash,
                    entries: Vec::<Vec<u8>>::decode(r)?,
                })
            }
            4 => Ok(AuditResponse::Sections {
                stream: r.get_bytes()?.to_vec(),
            }),
            5 => Ok(AuditResponse::Error {
                message: r.get_string()?,
            }),
            6 => Ok(AuditResponse::Attestation(AttestQuote::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                what: "AuditResponse",
                tag: tag as u64,
            }),
        }
    }
}

impl AuditResponse {
    /// The variant's name, for protocol-violation diagnostics.
    pub fn variant_name(&self) -> &'static str {
        match self {
            AuditResponse::Manifest { .. } => "Manifest",
            AuditResponse::Blobs(_) => "Blobs",
            AuditResponse::LogSegment { .. } => "LogSegment",
            AuditResponse::Sections { .. } => "Sections",
            AuditResponse::Error { .. } => "Error",
            AuditResponse::Attestation(_) => "Attestation",
        }
    }
}

/// Borrowed view of an [`AuditResponse`]: every bulk payload — the manifest
/// bytes, each blob, each encoded log entry, the sections stream — aliases
/// the packet buffer it was decoded from.
///
/// This is what lets a receiver parse a response straight out of the framed
/// packet, verify or measure it, and copy only what it decides to keep,
/// instead of materializing an owned [`AuditResponse`] first.  Encoding a
/// `AuditResponseRef` is byte-identical to encoding the owned response it
/// borrows from or converts into ([`AuditResponseRef::to_owned`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditResponseRef<'a> {
    /// The encoded `ChainManifest`, borrowed from the packet.
    Manifest {
        /// Encoded manifest bytes.
        manifest: &'a [u8],
    },
    /// The payloads for a blob request, each borrowed from the packet.
    Blobs(BlobResponseRef<'a>),
    /// A log segment with its chain anchor; entries borrow from the packet.
    LogSegment {
        /// Hash of the entry preceding the segment.
        prev_hash: [u8; 32],
        /// The entries, each an encoded `LogEntry` slice.
        entries: Vec<&'a [u8]>,
    },
    /// The whole-section transfer stream, borrowed from the packet.
    Sections {
        /// The stream bytes.
        stream: &'a [u8],
    },
    /// The provider cannot serve the request.
    Error {
        /// Human-readable reason.
        message: &'a str,
    },
    /// The attestation quote; envelope and signature borrow from the packet.
    Attestation(AttestQuoteRef<'a>),
}

impl<'a> AuditResponseRef<'a> {
    /// Decodes a borrowed response from `r`; the payload slices live as long
    /// as the reader's input.  (An inherent method, not [`Decode`]: the trait
    /// erases the input lifetime, which a borrowing decode must keep.)
    pub fn decode(r: &mut Reader<'a>) -> WireResult<AuditResponseRef<'a>> {
        match r.get_u8()? {
            1 => Ok(AuditResponseRef::Manifest {
                manifest: r.get_bytes()?,
            }),
            2 => Ok(AuditResponseRef::Blobs(BlobResponseRef::decode(r)?)),
            3 => {
                let mut prev_hash = [0u8; 32];
                prev_hash.copy_from_slice(r.get_raw(32)?);
                let n = r.get_varint()?;
                // Every entry costs at least its one-byte length prefix.
                let max = r.remaining() as u64;
                if n > max {
                    return Err(WireError::LengthOverflow { declared: n, max });
                }
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    entries.push(r.get_bytes()?);
                }
                Ok(AuditResponseRef::LogSegment { prev_hash, entries })
            }
            4 => Ok(AuditResponseRef::Sections {
                stream: r.get_bytes()?,
            }),
            5 => Ok(AuditResponseRef::Error {
                message: r.get_str()?,
            }),
            6 => Ok(AuditResponseRef::Attestation(AttestQuoteRef::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                what: "AuditResponse",
                tag: tag as u64,
            }),
        }
    }

    /// Decodes a borrowed response from `bytes`, requiring that the whole
    /// input is consumed.
    pub fn decode_exact(bytes: &'a [u8]) -> WireResult<AuditResponseRef<'a>> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }

    /// Copies the borrowed payloads into an owned [`AuditResponse`].
    pub fn to_owned(&self) -> AuditResponse {
        match self {
            AuditResponseRef::Manifest { manifest } => AuditResponse::Manifest {
                manifest: manifest.to_vec(),
            },
            AuditResponseRef::Blobs(resp) => AuditResponse::Blobs(resp.to_owned()),
            AuditResponseRef::LogSegment { prev_hash, entries } => AuditResponse::LogSegment {
                prev_hash: *prev_hash,
                entries: entries.iter().map(|e| e.to_vec()).collect(),
            },
            AuditResponseRef::Sections { stream } => AuditResponse::Sections {
                stream: stream.to_vec(),
            },
            AuditResponseRef::Error { message } => AuditResponse::Error {
                message: (*message).to_string(),
            },
            AuditResponseRef::Attestation(quote) => AuditResponse::Attestation(quote.to_owned()),
        }
    }

    /// The variant's name, for protocol-violation diagnostics.
    pub fn variant_name(&self) -> &'static str {
        match self {
            AuditResponseRef::Manifest { .. } => "Manifest",
            AuditResponseRef::Blobs(_) => "Blobs",
            AuditResponseRef::LogSegment { .. } => "LogSegment",
            AuditResponseRef::Sections { .. } => "Sections",
            AuditResponseRef::Error { .. } => "Error",
            AuditResponseRef::Attestation(_) => "Attestation",
        }
    }
}

impl Encode for AuditResponseRef<'_> {
    fn encode(&self, w: &mut Writer) {
        match self {
            AuditResponseRef::Manifest { manifest } => {
                w.put_u8(1);
                w.put_bytes(manifest);
            }
            AuditResponseRef::Blobs(resp) => {
                w.put_u8(2);
                resp.encode(w);
            }
            AuditResponseRef::LogSegment { prev_hash, entries } => {
                w.put_u8(3);
                w.put_raw(prev_hash);
                w.put_varint(entries.len() as u64);
                for entry in entries {
                    w.put_bytes(entry);
                }
            }
            AuditResponseRef::Sections { stream } => {
                w.put_u8(4);
                w.put_bytes(stream);
            }
            AuditResponseRef::Error { message } => {
                w.put_u8(5);
                w.put_str(message);
            }
            AuditResponseRef::Attestation(quote) => {
                w.put_u8(6);
                quote.encode(w);
            }
        }
    }
}

/// The session id used by single-session transports (the [`seal_message`] /
/// [`open_message`] compatibility wrappers).  Fleet sessions count up from
/// this value, so auditor #0 of a fleet is wire-identical to a lone client.
pub const CLIENT_SESSION: u64 = 1;

/// Seals `message` into one transport packet: `session_id || request_id ||
/// message`, wrapped in a checksummed frame ([`crate::frame`]).  The same
/// sealing is used in both directions; a response carries the session and
/// request ids of the request it answers.
pub fn seal_session_message<M: Encode>(session_id: u64, request_id: u64, message: &M) -> Vec<u8> {
    seal_encoded_message(session_id, request_id, &message.encode_to_vec())
}

/// Seals an *already-encoded* message body under a session envelope —
/// byte-identical to [`seal_session_message`] over the message that produced
/// `encoded`.  This is what lets a provider cache one response encoding and
/// serve it to many sessions without re-encoding (or re-hashing) it.
///
/// The body is copied **once**, straight from `encoded` into the packet
/// ([`write_frame_parts`] accumulates the checksum incrementally), so a
/// cached multi-megabyte sections stream costs one copy per send rather than
/// an envelope copy plus a framing copy.
pub fn seal_encoded_message(session_id: u64, request_id: u64, encoded: &[u8]) -> Vec<u8> {
    let mut envelope = Writer::with_capacity(20);
    envelope.put_varint(session_id);
    envelope.put_varint(request_id);
    let mut packet = Vec::new();
    write_frame_parts(&mut packet, &[envelope.as_slice(), encoded]);
    packet
}

/// Opens the framed session envelope *without decoding the message*:
/// returns the session id, request id, and the borrowed encoded message
/// body (aliasing `packet`).
///
/// This is the cheap first step of every receive path: a receiver can match
/// (session, request) against the exchange it is waiting on — and drop a
/// stale retransmission duplicate — before paying to decode (or copy) a
/// potentially large message body.
pub fn open_session_frame(packet: &[u8]) -> WireResult<(u64, u64, &[u8])> {
    let (payload, consumed) = read_frame(packet).map_err(|_| WireError::Corrupt("audit frame"))?;
    if consumed != packet.len() {
        return Err(WireError::TrailingBytes(packet.len() - consumed));
    }
    let mut r = Reader::new(payload);
    let session_id = r.get_varint()?;
    let request_id = r.get_varint()?;
    Ok((session_id, request_id, &payload[r.position()..]))
}

/// Opens a packet produced by [`seal_session_message`], returning the
/// session id, request id, and decoded message.  Fails on framing
/// corruption, truncation, trailing bytes, or an undecodable message.
pub fn open_session_message<M: Decode>(packet: &[u8]) -> WireResult<(u64, u64, M)> {
    let (session_id, request_id, body) = open_session_frame(packet)?;
    let message = M::decode_exact(body)?;
    Ok((session_id, request_id, message))
}

/// Seals `message` under the fixed [`CLIENT_SESSION`] id — the
/// single-session transport wrapper.
pub fn seal_message<M: Encode>(request_id: u64, message: &M) -> Vec<u8> {
    seal_session_message(CLIENT_SESSION, request_id, message)
}

/// Opens a packet sealed under [`CLIENT_SESSION`], returning the request id
/// and the decoded message.  A packet from any other session is rejected as
/// corrupt-for-this-receiver: single-session transports never share a link
/// with fleet sessions.
pub fn open_message<M: Decode>(packet: &[u8]) -> WireResult<(u64, M)> {
    let (session_id, request_id, message) = open_session_message(packet)?;
    if session_id != CLIENT_SESSION {
        return Err(WireError::Corrupt("unexpected audit session"));
    }
    Ok((request_id, message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;

    fn roundtrip_request(req: AuditRequest) {
        let bytes = req.encode_to_vec();
        assert_eq!(AuditRequest::decode_exact(&bytes).unwrap(), req);
    }

    fn roundtrip_response(resp: AuditResponse) {
        let bytes = resp.encode_to_vec();
        assert_eq!(AuditResponse::decode_exact(&bytes).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(AuditRequest::Manifest { snapshot_id: 7 });
        roundtrip_request(AuditRequest::Blobs(BlobRequest {
            digests: vec![[3u8; 32], [0u8; 32]],
        }));
        roundtrip_request(AuditRequest::LogSegment(SegmentAddress::Seq {
            from_seq: 1,
            to_seq: 0,
        }));
        roundtrip_request(AuditRequest::LogSegment(SegmentAddress::Chunk {
            start_snapshot: 2,
            chunk: 3,
        }));
        roundtrip_request(AuditRequest::Sections { upto_id: 12 });
        roundtrip_request(AuditRequest::Attest(AttestChallenge {
            nonce: [0x5c; 32],
            issued_at_us: 77,
        }));
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(AuditResponse::Manifest {
            manifest: vec![1, 2, 3],
        });
        roundtrip_response(AuditResponse::Blobs(BlobResponse {
            blobs: vec![Some(vec![9u8; 40]), None],
        }));
        roundtrip_response(AuditResponse::LogSegment {
            prev_hash: [0xab; 32],
            entries: vec![vec![1, 2], vec![], vec![3]],
        });
        roundtrip_response(AuditResponse::Sections {
            stream: vec![0u8; 100],
        });
        roundtrip_response(AuditResponse::Error {
            message: "snapshot 9 not found".into(),
        });
        roundtrip_response(AuditResponse::Attestation(AttestQuote {
            envelope: vec![1u8; 77],
            nonce: [0x5c; 32],
            signed_at_us: 78,
            signature: vec![9u8; 64],
        }));
    }

    #[test]
    fn invalid_tags_rejected() {
        assert!(matches!(
            AuditRequest::decode_exact(&[9]).unwrap_err(),
            WireError::InvalidTag {
                what: "AuditRequest",
                ..
            }
        ));
        assert!(matches!(
            AuditResponse::decode_exact(&[0]).unwrap_err(),
            WireError::InvalidTag {
                what: "AuditResponse",
                ..
            }
        ));
        assert!(matches!(
            SegmentAddress::decode_exact(&[7]).unwrap_err(),
            WireError::InvalidTag {
                what: "SegmentAddress",
                ..
            }
        ));
    }

    #[test]
    fn seal_open_roundtrip_carries_request_id() {
        let req = AuditRequest::Manifest { snapshot_id: 4 };
        let packet = seal_message(99, &req);
        let (id, opened): (u64, AuditRequest) = open_message(&packet).unwrap();
        assert_eq!(id, 99);
        assert_eq!(opened, req);
    }

    #[test]
    fn corrupt_packets_rejected() {
        let req = AuditRequest::Sections { upto_id: 1 };
        let mut packet = seal_message(1, &req);
        // Flip a payload byte: the frame checksum catches it.
        let mid = packet.len() / 2;
        packet[mid] ^= 0xff;
        assert!(open_message::<AuditRequest>(&packet).is_err());
        // Truncation.
        let packet = seal_message(1, &req);
        assert!(open_message::<AuditRequest>(&packet[..packet.len() - 1]).is_err());
        // Trailing garbage after the frame.
        let mut packet = seal_message(1, &req);
        packet.push(0);
        assert!(matches!(
            open_message::<AuditRequest>(&packet).unwrap_err(),
            WireError::TrailingBytes(1)
        ));
    }

    #[test]
    fn trailing_bytes_inside_payload_rejected() {
        // A sealed Manifest request with an extra byte inside the frame
        // payload decodes the message but must reject the leftovers.
        let mut w = Writer::new();
        w.put_varint(CLIENT_SESSION);
        w.put_varint(5u64);
        AuditRequest::Manifest { snapshot_id: 1 }.encode(&mut w);
        w.put_u8(0xee);
        let mut packet = Vec::new();
        write_frame(&mut packet, &w.into_bytes());
        assert!(matches!(
            open_message::<AuditRequest>(&packet).unwrap_err(),
            WireError::TrailingBytes(1)
        ));
    }

    #[test]
    fn session_seal_open_roundtrip() {
        let resp = AuditResponse::Sections {
            stream: vec![7u8; 33],
        };
        let packet = seal_session_message(42, 9, &resp);
        let (session, id, opened): (u64, u64, AuditResponse) =
            open_session_message(&packet).unwrap();
        assert_eq!((session, id), (42, 9));
        assert_eq!(opened, resp);
        // The single-session opener rejects foreign sessions...
        assert!(open_message::<AuditResponse>(&packet).is_err());
        // ...and the single-session sealer is exactly session CLIENT_SESSION.
        let compat = seal_message(9, &resp);
        assert_eq!(compat, seal_session_message(CLIENT_SESSION, 9, &resp));
    }

    #[test]
    fn sealing_encoded_bytes_matches_sealing_the_message() {
        let resp = AuditResponse::Manifest {
            manifest: vec![1, 2, 3, 4],
        };
        let encoded = resp.encode_to_vec();
        assert_eq!(
            seal_encoded_message(3, 11, &encoded),
            seal_session_message(3, 11, &resp)
        );
    }

    fn sample_responses() -> Vec<AuditResponse> {
        vec![
            AuditResponse::Manifest {
                manifest: vec![1, 2, 3],
            },
            AuditResponse::Blobs(BlobResponse {
                blobs: vec![Some(vec![9u8; 40]), None, Some(vec![])],
            }),
            AuditResponse::LogSegment {
                prev_hash: [0xab; 32],
                entries: vec![vec![1, 2], vec![], vec![3]],
            },
            AuditResponse::Sections {
                stream: vec![0u8; 100],
            },
            AuditResponse::Error {
                message: "snapshot 9 not found".into(),
            },
            AuditResponse::Attestation(AttestQuote {
                envelope: vec![3u8; 50],
                nonce: [0x11; 32],
                signed_at_us: 9,
                signature: vec![8u8; 32],
            }),
        ]
    }

    #[test]
    fn borrowed_response_decode_matches_owned_and_reencodes_identically() {
        for resp in sample_responses() {
            let bytes = resp.encode_to_vec();
            let borrowed = AuditResponseRef::decode_exact(&bytes).unwrap();
            assert_eq!(borrowed.to_owned(), resp);
            assert_eq!(borrowed.variant_name(), resp.variant_name());
            assert_eq!(borrowed.encode_to_vec(), bytes);
        }
    }

    #[test]
    fn session_frame_peeks_ids_and_borrows_the_body() {
        let resp = AuditResponse::Sections {
            stream: vec![7u8; 513],
        };
        let packet = seal_session_message(42, 9, &resp);
        let (session, id, body) = open_session_frame(&packet).unwrap();
        assert_eq!((session, id), (42, 9));
        // The body aliases the packet buffer and decodes to the message.
        let ptr = body.as_ptr() as usize;
        let base = packet.as_ptr() as usize;
        assert!(ptr >= base && ptr < base + packet.len());
        assert_eq!(AuditResponse::decode_exact(body).unwrap(), resp);
        // The borrowed decode sees the same message without copying it.
        let borrowed = AuditResponseRef::decode_exact(body).unwrap();
        match borrowed {
            AuditResponseRef::Sections { stream } => assert_eq!(stream, &[7u8; 513][..]),
            other => panic!("unexpected variant {}", other.variant_name()),
        }
    }

    #[test]
    fn truncated_borrowed_response_rejected() {
        for resp in sample_responses() {
            let bytes = resp.encode_to_vec();
            assert!(AuditResponseRef::decode_exact(&bytes[..bytes.len() - 1]).is_err());
        }
        // A corrupt entry count larger than the remaining input is rejected
        // before any allocation.
        let mut corrupt = vec![3u8];
        corrupt.extend_from_slice(&[0u8; 32]);
        corrupt.push(0xff);
        corrupt.push(0xff);
        corrupt.push(0x7f);
        assert!(matches!(
            AuditResponseRef::decode_exact(&corrupt).unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
    }
}
