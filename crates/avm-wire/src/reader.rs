//! Decoding cursor over a borrowed byte slice.

use crate::varint::read_varint;
use crate::{WireError, WireResult};

/// Cursor that consumes typed values from a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Self { input, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Current offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> WireResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> WireResult<u64> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> WireResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a LEB128 varint.
    pub fn get_varint(&mut self) -> WireResult<u64> {
        let (value, consumed) = read_varint(&self.input[self.pos..])?;
        self.pos += consumed;
        Ok(value)
    }

    /// Reads `n` raw bytes without a length prefix.
    pub fn get_raw(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n)
    }

    /// Reads a varint length prefix followed by that many bytes.
    pub fn get_bytes(&mut self) -> WireResult<&'a [u8]> {
        let len = self.get_varint()?;
        let len = usize::try_from(len).map_err(|_| WireError::LengthOverflow {
            declared: len,
            max: usize::MAX as u64,
        })?;
        if len > self.remaining() {
            return Err(WireError::LengthOverflow {
                declared: len as u64,
                max: self.remaining() as u64,
            });
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> WireResult<String> {
        Ok(self.get_str()?.to_string())
    }

    /// Reads a length-prefixed UTF-8 string without copying it: the returned
    /// slice borrows the input (the zero-copy counterpart of
    /// [`Reader::get_string`]).
    pub fn get_str(&mut self) -> WireResult<&'a str> {
        let bytes = self.get_bytes()?;
        core::str::from_utf8(bytes).map_err(|_| WireError::Corrupt("invalid utf-8 string"))
    }

    /// Reads a boolean byte, rejecting values other than 0 and 1.
    pub fn get_bool(&mut self) -> WireResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag {
                what: "bool",
                tag: tag as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_reports_sizes() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.get_u32().unwrap_err();
        assert_eq!(
            err,
            WireError::UnexpectedEof {
                needed: 4,
                remaining: 2
            }
        );
    }

    #[test]
    fn length_prefix_larger_than_input_rejected() {
        // Varint declares 100 bytes but only 2 follow.
        let mut buf = Vec::new();
        crate::varint::write_varint(&mut buf, 100);
        buf.extend_from_slice(&[1, 2]);
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.get_bytes().unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(
            r.get_bool().unwrap_err(),
            WireError::InvalidTag { what: "bool", .. }
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        crate::varint::write_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.get_string().unwrap_err(),
            WireError::Corrupt("invalid utf-8 string")
        );
    }

    #[test]
    fn position_tracking() {
        let mut r = Reader::new(&[1, 2, 3, 4]);
        assert_eq!(r.position(), 0);
        r.get_u8().unwrap();
        assert_eq!(r.position(), 1);
        r.get_raw(2).unwrap();
        assert_eq!(r.position(), 3);
        assert_eq!(r.remaining(), 1);
        assert!(!r.is_empty());
    }
}
