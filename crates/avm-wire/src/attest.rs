//! The attestation wire messages: nonce'd challenge, envelope response.
//!
//! The confidential-VM related work frames launch verification as a
//! challenge/response: the verifier sends a fresh nonce, the attester
//! answers with a *quote* — its attestation envelope plus a signature
//! binding the envelope to that nonce — and the verifier accepts only
//! quotes produced inside a freshness window.  This module defines the byte
//! format of that exchange; the envelope itself is an *opaque byte string*
//! at this layer (`avm-wire` sits below `avm-attest`, which defines the
//! envelope semantics), exactly like manifests and section streams in
//! [`crate::audit`].
//!
//! The two messages ride the ordinary audit session
//! ([`crate::audit::AuditRequest::Attest`] /
//! [`crate::audit::AuditResponse::Attestation`]), so an auditor verifies the
//! launch measurement and then continues into spot-check auditing over the
//! same session — one connection covers launch *and* lifetime.

use crate::{Decode, Encode, Reader, WireResult, Writer};

/// Length of the challenge nonce in bytes.
pub const ATTEST_NONCE_LEN: usize = 32;

/// Default freshness window: a quote answering a challenge issued more than
/// this many microseconds ago is rejected as expired.
pub const DEFAULT_FRESHNESS_US: u64 = 5_000_000;

/// Verifier → attester: "prove your launch state, binding the proof to this
/// nonce".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestChallenge {
    /// Fresh, unpredictable challenge nonce.  A quote echoing any other
    /// nonce is a replay of an earlier attestation.
    pub nonce: [u8; ATTEST_NONCE_LEN],
    /// Verifier clock when the challenge was issued (µs); anchors the
    /// freshness window.
    pub issued_at_us: u64,
}

impl Encode for AttestChallenge {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.nonce);
        w.put_varint(self.issued_at_us);
    }
}

impl Decode for AttestChallenge {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let mut nonce = [0u8; ATTEST_NONCE_LEN];
        nonce.copy_from_slice(r.get_raw(ATTEST_NONCE_LEN)?);
        Ok(AttestChallenge {
            nonce,
            issued_at_us: r.get_varint()?,
        })
    }
}

/// Attester → verifier: the attestation quote answering one challenge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestQuote {
    /// The encoded attestation envelope (opaque at this layer; decoded and
    /// verified by `avm-attest`).
    pub envelope: Vec<u8>,
    /// Echo of the challenge nonce this quote answers.
    pub nonce: [u8; ATTEST_NONCE_LEN],
    /// Attester clock when the quote was signed (µs).
    pub signed_at_us: u64,
    /// Signature over `(nonce, signed_at_us, envelope digest)` with the
    /// attester's key — the anti-replay binding.
    pub signature: Vec<u8>,
}

impl Encode for AttestQuote {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.envelope);
        w.put_raw(&self.nonce);
        w.put_varint(self.signed_at_us);
        w.put_bytes(&self.signature);
    }
}

impl Decode for AttestQuote {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let envelope = r.get_bytes()?.to_vec();
        let mut nonce = [0u8; ATTEST_NONCE_LEN];
        nonce.copy_from_slice(r.get_raw(ATTEST_NONCE_LEN)?);
        Ok(AttestQuote {
            envelope,
            nonce,
            signed_at_us: r.get_varint()?,
            signature: r.get_bytes()?.to_vec(),
        })
    }
}

/// Borrowed view of an [`AttestQuote`]: the envelope and signature alias the
/// packet buffer they were decoded from (see
/// [`crate::audit::AuditResponseRef`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestQuoteRef<'a> {
    /// The encoded attestation envelope, borrowed from the packet.
    pub envelope: &'a [u8],
    /// Echo of the challenge nonce.
    pub nonce: [u8; ATTEST_NONCE_LEN],
    /// Attester clock when the quote was signed (µs).
    pub signed_at_us: u64,
    /// Signature bytes, borrowed from the packet.
    pub signature: &'a [u8],
}

impl<'a> AttestQuoteRef<'a> {
    /// Decodes a borrowed quote; payload slices live as long as the input.
    pub fn decode(r: &mut Reader<'a>) -> WireResult<AttestQuoteRef<'a>> {
        let envelope = r.get_bytes()?;
        let mut nonce = [0u8; ATTEST_NONCE_LEN];
        nonce.copy_from_slice(r.get_raw(ATTEST_NONCE_LEN)?);
        Ok(AttestQuoteRef {
            envelope,
            nonce,
            signed_at_us: r.get_varint()?,
            signature: r.get_bytes()?,
        })
    }

    /// Copies the borrowed payloads into an owned [`AttestQuote`].
    pub fn to_owned(&self) -> AttestQuote {
        AttestQuote {
            envelope: self.envelope.to_vec(),
            nonce: self.nonce,
            signed_at_us: self.signed_at_us,
            signature: self.signature.to_vec(),
        }
    }
}

impl Encode for AttestQuoteRef<'_> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.envelope);
        w.put_raw(&self.nonce);
        w.put_varint(self.signed_at_us);
        w.put_bytes(self.signature);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_quote() -> AttestQuote {
        AttestQuote {
            envelope: vec![0xaa; 120],
            nonce: [7u8; ATTEST_NONCE_LEN],
            signed_at_us: 123_456,
            signature: vec![0x55; 64],
        }
    }

    #[test]
    fn challenge_roundtrips() {
        let c = AttestChallenge {
            nonce: [9u8; ATTEST_NONCE_LEN],
            issued_at_us: 44,
        };
        let bytes = c.encode_to_vec();
        assert_eq!(AttestChallenge::decode_exact(&bytes).unwrap(), c);
        assert!(AttestChallenge::decode_exact(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn quote_roundtrips() {
        let q = sample_quote();
        let bytes = q.encode_to_vec();
        assert_eq!(AttestQuote::decode_exact(&bytes).unwrap(), q);
        assert!(AttestQuote::decode_exact(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn borrowed_quote_matches_owned_and_reencodes_identically() {
        let q = sample_quote();
        let bytes = q.encode_to_vec();
        let mut r = Reader::new(&bytes);
        let borrowed = AttestQuoteRef::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(borrowed.to_owned(), q);
        assert_eq!(borrowed.encode_to_vec(), bytes);
    }
}
