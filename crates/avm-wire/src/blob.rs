//! Digest-addressed blob transfer: the wire half of the hash-addressed
//! snapshot download protocol (paper §3.5).
//!
//! An auditor reconstructing snapshot state does not need whole snapshot
//! sections: state payloads (memory pages, disk blocks) are content-addressed
//! by their SHA-256, so the auditor enumerates the digests a snapshot chain
//! references and requests **only the digests it does not already hold** — a
//! Venti-style content-addressed transfer.  This module defines the two
//! messages of that exchange:
//!
//! * [`BlobRequest`] — auditor → operator: the list of 32-byte digests the
//!   auditor is missing.
//! * [`BlobResponse`] — operator → auditor: one payload per requested digest,
//!   in request order (`None` where the operator does not hold the blob).
//!
//! The response deliberately does **not** echo the digests: the auditor must
//! re-hash every received payload and compare against what it asked for
//! (authentication against the digest, and transitively against the Merkle
//! state root the digests came from), so repeating them would only inflate
//! the transfer the experiments measure.
//!
//! The semantic layer — which digests to ask for, verification, caching —
//! lives in `avm-core` (`ondemand` module); this module is only the byte
//! format.

use crate::{Decode, Encode, Reader, WireError, WireResult, Writer};

/// Length of a content digest on the wire (SHA-256).
pub const BLOB_DIGEST_LEN: usize = 32;

/// A raw 32-byte content digest as carried on the wire.
///
/// `avm-wire` sits below `avm-crypto`, so the digest is a plain byte array
/// here; `avm-core` converts to and from its typed `Digest`.
pub type BlobDigest = [u8; BLOB_DIGEST_LEN];

impl Encode for BlobDigest {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self);
    }
}

impl Decode for BlobDigest {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let raw = r.get_raw(BLOB_DIGEST_LEN)?;
        let mut out = [0u8; BLOB_DIGEST_LEN];
        out.copy_from_slice(raw);
        Ok(out)
    }
}

/// Auditor → operator: "send me the payloads for these digests".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlobRequest {
    /// Digests the auditor does not hold, in the order it wants them served.
    pub digests: Vec<BlobDigest>,
}

/// Default number of digests per batched [`BlobRequest`].
///
/// Each round trip then carries up to 32 × 32 B of request and up to 16 KiB
/// of 512 B chunk payloads — enough to amortise the per-round-trip latency
/// without turning the exchange back into one monolithic download.
pub const DEFAULT_BLOB_BATCH: usize = 32;

impl BlobRequest {
    /// True when nothing is requested (every needed digest was cached).
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// Number of requested digests.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// Splits `digests` into per-round-trip requests of at most
    /// `max_per_request` digests each (`0` means unlimited — a single
    /// request).  Order is preserved across the batches, so the batched
    /// exchange serves the same blobs in the same order as a one-request
    /// exchange (each batch still carries its own count prefix, so the
    /// concatenated framing differs by a few varint bytes).
    pub fn batches(digests: &[BlobDigest], max_per_request: usize) -> Vec<BlobRequest> {
        if digests.is_empty() {
            return Vec::new();
        }
        let per = if max_per_request == 0 {
            digests.len()
        } else {
            max_per_request
        };
        digests
            .chunks(per)
            .map(|c| BlobRequest {
                digests: c.to_vec(),
            })
            .collect()
    }
}

impl Encode for BlobRequest {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.digests.len() as u64);
        for d in &self.digests {
            d.encode(w);
        }
    }
}

impl Decode for BlobRequest {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let n = r.get_varint()?;
        // A digest is 32 bytes on the wire; a count that cannot fit in the
        // remaining input is corrupt, and bounding it up front prevents
        // attacker-controlled allocations.
        let max = (r.remaining() / BLOB_DIGEST_LEN) as u64;
        if n > max {
            return Err(WireError::LengthOverflow { declared: n, max });
        }
        let mut digests = Vec::with_capacity(n as usize);
        for _ in 0..n {
            digests.push(BlobDigest::decode(r)?);
        }
        Ok(BlobRequest { digests })
    }
}

/// Operator → auditor: the payloads for a [`BlobRequest`], in request order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlobResponse {
    /// One entry per requested digest: the payload, or `None` when the
    /// operator's store does not hold that digest (which an auditor treats
    /// as the operator failing to substantiate its own snapshot).
    pub blobs: Vec<Option<Vec<u8>>>,
}

impl BlobResponse {
    /// Total payload bytes carried (excluding framing).
    pub fn payload_bytes(&self) -> u64 {
        self.blobs.iter().flatten().map(|b| b.len() as u64).sum()
    }
}

impl Encode for BlobResponse {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.blobs.len() as u64);
        for blob in &self.blobs {
            blob.encode(w);
        }
    }
}

impl Decode for BlobResponse {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let n = r.get_varint()?;
        // Every entry costs at least one tag byte.
        let max = r.remaining() as u64;
        if n > max {
            return Err(WireError::LengthOverflow { declared: n, max });
        }
        let mut blobs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            blobs.push(Option::<Vec<u8>>::decode(r)?);
        }
        Ok(BlobResponse { blobs })
    }
}

/// Borrowed view of a [`BlobResponse`]: every payload aliases the packet
/// buffer it was decoded from, so a receiver can verify digests (and decide
/// what to keep) without first copying each blob into its own `Vec`.
///
/// Encoding a `BlobResponseRef` is byte-identical to encoding the
/// [`BlobResponse`] it borrows from or converts into.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlobResponseRef<'a> {
    /// One entry per requested digest, borrowing from the decode input.
    pub blobs: Vec<Option<&'a [u8]>>,
}

impl<'a> BlobResponseRef<'a> {
    /// Decodes a borrowed response from `r`; the payload slices live as long
    /// as the reader's input.  (An inherent method, not [`Decode`]: the trait
    /// erases the input lifetime, which a borrowing decode must keep.)
    pub fn decode(r: &mut Reader<'a>) -> WireResult<BlobResponseRef<'a>> {
        let n = r.get_varint()?;
        // Every entry costs at least one tag byte.
        let max = r.remaining() as u64;
        if n > max {
            return Err(WireError::LengthOverflow { declared: n, max });
        }
        let mut blobs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            blobs.push(match r.get_u8()? {
                0 => None,
                1 => Some(r.get_bytes()?),
                tag => {
                    return Err(WireError::InvalidTag {
                        what: "Option",
                        tag: tag as u64,
                    })
                }
            });
        }
        Ok(BlobResponseRef { blobs })
    }

    /// Total payload bytes carried (excluding framing).
    pub fn payload_bytes(&self) -> u64 {
        self.blobs.iter().flatten().map(|b| b.len() as u64).sum()
    }

    /// Copies the borrowed payloads into an owned [`BlobResponse`].
    pub fn to_owned(&self) -> BlobResponse {
        BlobResponse {
            blobs: self.blobs.iter().map(|b| b.map(<[u8]>::to_vec)).collect(),
        }
    }
}

impl Encode for BlobResponseRef<'_> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.blobs.len() as u64);
        for blob in &self.blobs {
            match blob {
                None => w.put_u8(0),
                Some(payload) => {
                    w.put_u8(1);
                    w.put_bytes(payload);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(fill: u8) -> BlobDigest {
        [fill; BLOB_DIGEST_LEN]
    }

    #[test]
    fn request_roundtrip() {
        let req = BlobRequest {
            digests: vec![digest(1), digest(0xff), digest(0)],
        };
        assert_eq!(req.len(), 3);
        assert!(!req.is_empty());
        let bytes = req.encode_to_vec();
        // varint count + 3 * 32 digest bytes.
        assert_eq!(bytes.len(), 1 + 3 * BLOB_DIGEST_LEN);
        assert_eq!(BlobRequest::decode_exact(&bytes).unwrap(), req);

        let empty = BlobRequest::default();
        assert!(empty.is_empty());
        assert_eq!(
            BlobRequest::decode_exact(&empty.encode_to_vec()).unwrap(),
            empty
        );
    }

    #[test]
    fn response_roundtrip_and_payload_accounting() {
        let resp = BlobResponse {
            blobs: vec![Some(vec![9u8; 100]), None, Some(vec![])],
        };
        assert_eq!(resp.payload_bytes(), 100);
        let bytes = resp.encode_to_vec();
        assert_eq!(BlobResponse::decode_exact(&bytes).unwrap(), resp);
    }

    #[test]
    fn batches_preserve_order_and_bound_size() {
        let digests: Vec<BlobDigest> = (0u8..10).map(digest).collect();
        let batches = BlobRequest::batches(&digests, 4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        let rejoined: Vec<BlobDigest> = batches
            .iter()
            .flat_map(|b| b.digests.iter().copied())
            .collect();
        assert_eq!(rejoined, digests);
        // 0 = unlimited: one request with everything.
        let unlimited = BlobRequest::batches(&digests, 0);
        assert_eq!(unlimited.len(), 1);
        assert_eq!(unlimited[0].digests, digests);
        assert!(BlobRequest::batches(&[], 4).is_empty());
    }

    #[test]
    fn truncated_request_rejected() {
        let req = BlobRequest {
            digests: vec![digest(7), digest(8)],
        };
        let bytes = req.encode_to_vec();
        assert!(BlobRequest::decode_exact(&bytes[..bytes.len() - 1]).is_err());
        // A corrupt count larger than the remaining input is rejected
        // before any allocation.
        let mut corrupt = Vec::new();
        crate::varint::write_varint(&mut corrupt, u64::MAX);
        assert!(matches!(
            BlobRequest::decode_exact(&corrupt).unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
    }

    #[test]
    fn borrowed_response_matches_owned_decode() {
        let resp = BlobResponse {
            blobs: vec![Some(vec![9u8; 100]), None, Some(vec![])],
        };
        let bytes = resp.encode_to_vec();
        let mut r = Reader::new(&bytes);
        let borrowed = BlobResponseRef::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(borrowed.payload_bytes(), resp.payload_bytes());
        assert_eq!(borrowed.to_owned(), resp);
        // Re-encoding the borrowed view reproduces the original bytes.
        assert_eq!(borrowed.encode_to_vec(), bytes);
        // The payloads alias the input buffer, not fresh allocations.
        let payload = borrowed.blobs[0].unwrap();
        let ptr = payload.as_ptr() as usize;
        let base = bytes.as_ptr() as usize;
        assert!(ptr >= base && ptr < base + bytes.len());
    }

    #[test]
    fn truncated_response_rejected() {
        let resp = BlobResponse {
            blobs: vec![Some(vec![1, 2, 3])],
        };
        let bytes = resp.encode_to_vec();
        assert!(BlobResponse::decode_exact(&bytes[..bytes.len() - 1]).is_err());
        let mut corrupt = Vec::new();
        crate::varint::write_varint(&mut corrupt, u64::MAX);
        assert!(matches!(
            BlobResponse::decode_exact(&corrupt).unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
    }
}
