//! LEB128 variable-length unsigned integer encoding.
//!
//! Varints keep the execution log compact: most sequence numbers, step
//! deltas and payload lengths are small, so they usually occupy one or two
//! bytes instead of eight.

use crate::{WireError, WireResult};

/// Maximum number of bytes a 64-bit varint may occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out` and returns the number of
/// bytes written.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
pub fn read_varint(input: &[u8]) -> WireResult<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(WireError::VarintOverflow);
        }
        let low = (byte & 0x7f) as u64;
        // The tenth byte may only contribute a single bit.
        if shift == 63 && low > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(WireError::UnexpectedEof {
        needed: 1,
        remaining: 0,
    })
}

/// Number of bytes the varint encoding of `value` occupies.
pub fn varint_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    let bits = 64 - value.leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Encodes a signed integer with ZigZag so small negative numbers stay short.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            let written = write_varint(&mut buf, v);
            assert_eq!(written, buf.len());
            assert_eq!(written, varint_len(v));
            let (decoded, consumed) = read_varint(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        let truncated = &buf[..buf.len() - 1];
        assert!(read_varint(truncated).is_err());
    }

    #[test]
    fn overlong_encoding_rejected() {
        // Eleven continuation bytes can never be a valid 64-bit varint.
        let bad = [0x80u8; 11];
        assert_eq!(read_varint(&bad).unwrap_err(), WireError::VarintOverflow);
    }

    #[test]
    fn tenth_byte_overflow_rejected() {
        // 10 bytes whose final byte carries more than one bit of payload.
        let mut bad = vec![0xffu8; 9];
        bad.push(0x7f);
        assert_eq!(read_varint(&bad).unwrap_err(), WireError::VarintOverflow);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes stay small.
        assert!(varint_len(zigzag_encode(-1)) == 1);
        assert!(varint_len(zigzag_encode(63)) == 1);
    }
}
