//! Binary wire-format primitives shared across the AVM workspace.
//!
//! Every persistent or network-visible structure in this reproduction (log
//! entries, authenticators, snapshots, simulated packets) is serialized with
//! the small, explicit codec defined here rather than with an external
//! serialization framework.  This keeps byte counts — which several of the
//! paper's experiments report — fully under our control and auditable.
//!
//! The format is deliberately simple:
//!
//! * fixed-width integers are little-endian,
//! * variable-width unsigned integers use LEB128 (`varint`),
//! * byte strings are length-prefixed with a varint,
//! * optional framing adds a magic byte, a length and a CRC-32 checksum.
//!
//! The [`Encode`] and [`Decode`] traits give each crate a uniform way to
//! declare wire formats; [`Writer`] and [`Reader`] are the low-level cursors.
//! On top of the primitives, [`blob`] defines the digest-addressed transfer
//! messages ([`BlobRequest`]/[`BlobResponse`]) of the §3.5 snapshot download
//! protocol, and [`audit`] defines the full audit protocol
//! ([`AuditRequest`]/[`AuditResponse`]: manifest, blob, log-segment and
//! snapshot-section fetches) those messages ride in; their semantics live in
//! `avm-core`'s `ondemand` and `endpoint` modules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod audit;
pub mod blob;
pub mod checksum;
pub mod frame;
pub mod reader;
pub mod rtt;
pub mod varint;
pub mod writer;

pub use attest::{
    AttestChallenge, AttestQuote, AttestQuoteRef, ATTEST_NONCE_LEN, DEFAULT_FRESHNESS_US,
};
pub use audit::{
    open_message, open_session_frame, seal_message, AuditRequest, AuditResponse, AuditResponseRef,
    SegmentAddress,
};
pub use blob::{
    BlobDigest, BlobRequest, BlobResponse, BlobResponseRef, BLOB_DIGEST_LEN, DEFAULT_BLOB_BATCH,
};
pub use checksum::crc32;
pub use frame::{read_frame, write_frame, write_frame_parts, Frame, FrameError, FRAME_MAGIC};
pub use reader::Reader;
pub use rtt::RttModel;
pub use writer::Writer;

/// Error produced when decoding malformed wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Number of additional bytes that were required.
        needed: usize,
        /// Number of bytes that remained in the input.
        remaining: usize,
    },
    /// A varint was longer than the maximum allowed encoding.
    VarintOverflow,
    /// A length prefix exceeded the configured or sane limit.
    LengthOverflow {
        /// The declared length.
        declared: u64,
        /// The maximum permitted length.
        max: u64,
    },
    /// A tag byte did not correspond to any known variant.
    InvalidTag {
        /// Name of the type being decoded.
        what: &'static str,
        /// The unrecognised tag value.
        tag: u64,
    },
    /// A checksum or magic value did not match.
    Corrupt(&'static str),
    /// Trailing bytes remained after a complete decode where none were expected.
    TrailingBytes(usize),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} more bytes, {remaining} remaining"
            ),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::LengthOverflow { declared, max } => {
                write!(f, "declared length {declared} exceeds maximum {max}")
            }
            WireError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            WireError::Corrupt(what) => write!(f, "corrupt data: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire operations.
pub type WireResult<T> = Result<T, WireError>;

/// Types that can serialize themselves into the AVM wire format.
pub trait Encode {
    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience helper returning the encoding as a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Number of bytes the encoding occupies.
    fn encoded_len(&self) -> usize {
        self.encode_to_vec().len()
    }
}

/// Types that can deserialize themselves from the AVM wire format.
pub trait Decode: Sized {
    /// Reads one value from `r`, advancing the cursor.
    fn decode(r: &mut Reader<'_>) -> WireResult<Self>;

    /// Decodes a value from `bytes`, requiring that the whole input is consumed.
    fn decode_exact(bytes: &[u8]) -> WireResult<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(r.get_bytes()?.to_vec())
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        r.get_string()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        r.get_varint()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let n = r.get_varint()?;
        // Guard against absurd allocations from corrupt length prefixes.
        let n = usize::try_from(n).map_err(|_| WireError::LengthOverflow {
            declared: n,
            max: usize::MAX as u64,
        })?;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                what: "Option",
                tag: tag as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Pair {
        a: u64,
        b: Vec<u8>,
    }

    impl Encode for Pair {
        fn encode(&self, w: &mut Writer) {
            w.put_varint(self.a);
            w.put_bytes(&self.b);
        }
    }

    impl Decode for Pair {
        fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
            Ok(Pair {
                a: r.get_varint()?,
                b: r.get_bytes()?.to_vec(),
            })
        }
    }

    #[test]
    fn roundtrip_struct() {
        let p = Pair {
            a: 123456,
            b: vec![1, 2, 3, 255],
        };
        let bytes = p.encode_to_vec();
        assert_eq!(Pair::decode_exact(&bytes).unwrap(), p);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let p = Pair { a: 1, b: vec![] };
        let mut bytes = p.encode_to_vec();
        bytes.push(0);
        assert_eq!(
            Pair::decode_exact(&bytes).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(
            Option::<u64>::decode_exact(&some.encode_to_vec()).unwrap(),
            some
        );
        assert_eq!(
            Option::<u64>::decode_exact(&none.encode_to_vec()).unwrap(),
            none
        );
    }

    #[test]
    fn vec_of_u64_roundtrip() {
        let v: Vec<u64> = vec![0, 1, 127, 128, u64::MAX];
        assert_eq!(Vec::<u64>::decode_exact(&v.encode_to_vec()).unwrap(), v);
    }

    #[test]
    fn invalid_option_tag() {
        let err = Option::<u64>::decode_exact(&[9]).unwrap_err();
        assert!(matches!(err, WireError::InvalidTag { what: "Option", .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::UnexpectedEof {
            needed: 4,
            remaining: 1,
        };
        assert!(e.to_string().contains("needed 4"));
        assert!(WireError::VarintOverflow.to_string().contains("64"));
    }
}
