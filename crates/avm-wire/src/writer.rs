//! Append-only encoder cursor.

use crate::varint::write_varint;

/// Growable byte buffer with typed append helpers.
///
/// All multi-byte fixed-width integers are written little-endian.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates a writer with `cap` bytes of preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the underlying bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a LEB128 varint.
    pub fn put_varint(&mut self, v: u64) {
        write_varint(&mut self.buf, v);
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a varint length prefix followed by `bytes`.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_raw(bytes);
    }

    /// Appends a UTF-8 string with a varint length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a boolean as a single byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reader;

    #[test]
    fn fixed_width_little_endian() {
        let mut w = Writer::new();
        w.put_u16(0x0102);
        w.put_u32(0x03040506);
        w.put_u64(0x0708090a0b0c0d0e);
        assert_eq!(
            w.as_slice(),
            &[
                0x02, 0x01, //
                0x06, 0x05, 0x04, 0x03, //
                0x0e, 0x0d, 0x0c, 0x0b, 0x0a, 0x09, 0x08, 0x07
            ]
        );
    }

    #[test]
    fn writer_reader_symmetry() {
        let mut w = Writer::with_capacity(64);
        w.put_u8(7);
        w.put_bool(true);
        w.put_varint(300);
        w.put_bytes(b"hello");
        w.put_str("world");
        w.put_i64(-42);

        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_varint().unwrap(), 300);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_string().unwrap(), "world");
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_writer() {
        let w = Writer::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }
}
