//! Per-round-trip latency modelling for the blob transfer protocol.
//!
//! Byte counts alone understate the cost of on-demand audits: an auditor
//! that faults state in lazily pays a network round trip per fault unless
//! requests are batched (the follow-on ROADMAP calls out exactly this).  An
//! [`RttModel`] turns `(round trips, bytes)` into modelled wall time so the
//! spot-check reports can price the batched and unbatched variants of the
//! same download side by side — the same way `avm-compress` prices raw and
//! compressed sizes of one stream.
//!
//! The model is the classic two-parameter link: a fixed per-round-trip
//! latency plus a serialisation term at a fixed bandwidth.  Both parameters
//! are public and configurable; [`RttModel::default`] is a 2010-era WAN
//! (50 ms RTT, 10 Mbit/s), matching the evaluation setting of the paper.

/// A configurable round-trip latency + bandwidth link model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttModel {
    /// One network round trip, in microseconds.
    pub rtt_micros: u64,
    /// Link bandwidth, in bytes per second.
    pub bytes_per_sec: u64,
}

impl RttModel {
    /// A 2010-era consumer WAN: 50 ms RTT, 10 Mbit/s downstream.
    pub const DEFAULT: RttModel = RttModel {
        rtt_micros: 50_000,
        bytes_per_sec: 1_250_000,
    };

    /// Modelled wall time, in microseconds, for a transfer of `bytes` spread
    /// over `round_trips` request/response exchanges: every exchange pays
    /// one RTT, and the payload pays the serialisation delay once.
    pub fn latency_micros(&self, round_trips: u64, bytes: u64) -> u64 {
        let serialise = bytes.saturating_mul(1_000_000) / self.bytes_per_sec.max(1);
        round_trips.saturating_mul(self.rtt_micros) + serialise
    }
}

impl Default for RttModel {
    fn default() -> RttModel {
        RttModel::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sums_rtts_and_serialisation() {
        let model = RttModel {
            rtt_micros: 10_000,
            bytes_per_sec: 1_000_000, // 1 byte per µs
        };
        assert_eq!(model.latency_micros(0, 0), 0);
        assert_eq!(model.latency_micros(3, 0), 30_000);
        assert_eq!(model.latency_micros(1, 2_000), 10_000 + 2_000);
        // Fewer round trips for the same bytes is strictly cheaper.
        assert!(model.latency_micros(2, 5_000) < model.latency_micros(9, 5_000));
    }

    #[test]
    fn zero_bandwidth_does_not_divide_by_zero() {
        let degenerate = RttModel {
            rtt_micros: 1,
            bytes_per_sec: 0,
        };
        let _ = degenerate.latency_micros(1, 100);
    }

    #[test]
    fn default_is_the_documented_wan() {
        assert_eq!(RttModel::default(), RttModel::DEFAULT);
        assert_eq!(RttModel::DEFAULT.rtt_micros, 50_000);
    }
}
