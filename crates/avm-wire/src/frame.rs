//! Checksummed framing for records stored on disk or shipped over the
//! simulated network.
//!
//! A frame is `MAGIC (1) || varint length || payload || crc32 (4)`, where the
//! checksum covers the payload only.  Frames let a reader resynchronise and
//! detect truncation when scanning a byte stream of concatenated records,
//! e.g. a persisted execution log.

use crate::checksum::{crc32, Crc32};
use crate::varint::{read_varint, varint_len, write_varint};
use crate::WireError;

/// Magic byte prefixing every frame.
pub const FRAME_MAGIC: u8 = 0xA7;

/// Errors surfaced when reading a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The first byte was not [`FRAME_MAGIC`].
    BadMagic(u8),
    /// The payload checksum did not match.
    BadChecksum {
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// The length prefix was malformed.
    BadLength,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic(b) => write!(f, "bad frame magic byte {b:#04x}"),
            FrameError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            FrameError::BadLength => write!(f, "malformed frame length"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends a frame containing `payload` to `out`.
///
/// Returns the total number of bytes appended.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) -> usize {
    out.push(FRAME_MAGIC);
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    1 + varint_len(payload.len() as u64) + payload.len() + 4
}

/// Appends one frame whose payload is the concatenation of `parts`.
///
/// Byte-identical to [`write_frame`] over the concatenated parts, but the
/// payload bytes are copied **once** — straight from each part into `out` —
/// with the checksum accumulated incrementally ([`Crc32`]) instead of over a
/// materialized concatenation.  This is what lets message sealing write an
/// envelope prefix and a caller-owned body into the packet without an
/// intermediate payload buffer.
pub fn write_frame_parts(out: &mut Vec<u8>, parts: &[&[u8]]) -> usize {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    out.reserve(1 + varint_len(len as u64) + len + 4);
    out.push(FRAME_MAGIC);
    write_varint(out, len as u64);
    let mut crc = Crc32::new();
    for part in parts {
        out.extend_from_slice(part);
        crc.update(part);
    }
    out.extend_from_slice(&crc.finish().to_le_bytes());
    1 + varint_len(len as u64) + len + 4
}

/// One parsed frame, borrowing its payload from the input stream.
///
/// The borrowed form of [`read_frame`]'s tuple: `payload` aliases the input
/// buffer (no copy), and `consumed` says where the next frame starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The checksum-verified payload, borrowed from the input.
    pub payload: &'a [u8],
    /// Total bytes the frame occupied, header and checksum included.
    pub consumed: usize,
}

impl<'a> Frame<'a> {
    /// Parses one frame from the front of `input` without copying the
    /// payload.
    pub fn parse(input: &'a [u8]) -> Result<Frame<'a>, FrameError> {
        let (payload, consumed) = read_frame(input)?;
        Ok(Frame { payload, consumed })
    }
}

/// Reads one frame from the front of `input`.
///
/// Returns the payload and the total number of bytes the frame occupied.
pub fn read_frame(input: &[u8]) -> Result<(&[u8], usize), FrameError> {
    if input.is_empty() {
        return Err(FrameError::Truncated);
    }
    if input[0] != FRAME_MAGIC {
        return Err(FrameError::BadMagic(input[0]));
    }
    // A stream that ends inside the length prefix is truncation, exactly
    // like one that ends inside the payload — a torn append routinely cuts
    // mid-varint, since payloads over 127 bytes have multi-byte lengths.
    let (len, len_bytes) = read_varint(&input[1..]).map_err(|e| match e {
        WireError::UnexpectedEof { .. } => FrameError::Truncated,
        _ => FrameError::BadLength,
    })?;
    let len = usize::try_from(len).map_err(|_| FrameError::BadLength)?;
    let header = 1 + len_bytes;
    let total = header + len + 4;
    if input.len() < total {
        return Err(FrameError::Truncated);
    }
    let payload = &input[header..header + len];
    let stored = u32::from_le_bytes([
        input[header + len],
        input[header + len + 1],
        input[header + len + 2],
        input[header + len + 3],
    ]);
    let computed = crc32(payload);
    if stored != computed {
        return Err(FrameError::BadChecksum { stored, computed });
    }
    Ok((payload, total))
}

/// Iterates over all frames in a byte stream.
pub fn iter_frames(mut input: &[u8]) -> impl Iterator<Item = Result<&[u8], FrameError>> {
    std::iter::from_fn(move || {
        if input.is_empty() {
            return None;
        }
        match read_frame(input) {
            Ok((payload, consumed)) => {
                input = &input[consumed..];
                Some(Ok(payload))
            }
            Err(e) => {
                input = &[];
                Some(Err(e))
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut out = Vec::new();
        let n = write_frame(&mut out, b"payload");
        assert_eq!(n, out.len());
        let (payload, consumed) = read_frame(&out).unwrap();
        assert_eq!(payload, b"payload");
        assert_eq!(consumed, out.len());
    }

    #[test]
    fn empty_payload_frame() {
        let mut out = Vec::new();
        write_frame(&mut out, b"");
        let (payload, consumed) = read_frame(&out).unwrap();
        assert!(payload.is_empty());
        assert_eq!(consumed, out.len());
    }

    #[test]
    fn corruption_detected() {
        let mut out = Vec::new();
        write_frame(&mut out, b"some payload bytes");
        let mid = out.len() / 2;
        out[mid] ^= 0xff;
        assert!(matches!(
            read_frame(&out).unwrap_err(),
            FrameError::BadChecksum { .. } | FrameError::BadLength | FrameError::Truncated
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut out = Vec::new();
        write_frame(&mut out, b"x");
        out[0] = 0x00;
        assert_eq!(read_frame(&out).unwrap_err(), FrameError::BadMagic(0));
    }

    #[test]
    fn truncation_inside_the_header_is_truncated_not_bad_length() {
        let mut out = Vec::new();
        // 300-byte payload: the length prefix is a two-byte varint.
        write_frame(&mut out, &[7u8; 300]);
        // Cut after just the magic byte, then mid-way through the varint.
        assert_eq!(read_frame(&out[..1]).unwrap_err(), FrameError::Truncated);
        assert_eq!(read_frame(&out[..2]).unwrap_err(), FrameError::Truncated);
    }

    #[test]
    fn overlong_length_varint_is_bad_length() {
        // Eleven continuation bytes after the magic can never be a valid
        // 64-bit varint: corruption, not truncation.
        let mut bad = vec![FRAME_MAGIC];
        bad.extend_from_slice(&[0x80u8; 11]);
        assert_eq!(read_frame(&bad).unwrap_err(), FrameError::BadLength);
    }

    #[test]
    fn truncation_detected() {
        let mut out = Vec::new();
        write_frame(&mut out, b"truncate me please");
        let cut = &out[..out.len() - 3];
        assert_eq!(read_frame(cut).unwrap_err(), FrameError::Truncated);
    }

    #[test]
    fn frame_parts_match_concatenated_payload() {
        for parts in [
            vec![b"ab".as_slice(), b"".as_slice(), b"cdef".as_slice()],
            vec![b"".as_slice()],
            vec![],
            vec![&[0xA7u8; 300] as &[u8], b"tail".as_slice()],
        ] {
            let concatenated: Vec<u8> = parts.concat();
            let mut whole = Vec::new();
            let n_whole = write_frame(&mut whole, &concatenated);
            let mut split = Vec::new();
            let n_split = write_frame_parts(&mut split, &parts);
            assert_eq!(whole, split);
            assert_eq!(n_whole, n_split);
        }
    }

    #[test]
    fn parsed_frame_borrows_the_input() {
        let mut out = Vec::new();
        write_frame(&mut out, b"borrowed bytes");
        let frame = Frame::parse(&out).unwrap();
        assert_eq!(frame.payload, b"borrowed bytes");
        assert_eq!(frame.consumed, out.len());
        // The payload aliases the packet buffer: same address range.
        let payload_ptr = frame.payload.as_ptr() as usize;
        let packet_ptr = out.as_ptr() as usize;
        assert!(payload_ptr >= packet_ptr && payload_ptr < packet_ptr + out.len());
    }

    #[test]
    fn iterate_many_frames() {
        let mut out = Vec::new();
        for i in 0..10u8 {
            write_frame(&mut out, &[i; 5]);
        }
        let frames: Result<Vec<_>, _> = iter_frames(&out).collect();
        let frames = frames.unwrap();
        assert_eq!(frames.len(), 10);
        assert_eq!(frames[3], &[3u8; 5]);
    }
}
