//! Lossless compression for AVM execution logs.
//!
//! The paper reports raw and compressed log growth rates (Figure 4): bzip2
//! plus "a lossless, VMM-specific (but application-independent) compression
//! algorithm" bring the Counterstrike log from ~8 MB/min down to
//! ~2.47 MB/min.  This crate provides the equivalent for our AVMM: a
//! from-scratch LZ77 compressor with a greedy hash-chain match finder and a
//! varint token encoding, plus a delta pre-pass tuned to the highly
//! repetitive structure of replay logs (monotonic sequence numbers, repeated
//! entry headers).
//!
//! The format is framed (magic, original length, CRC-32 of the original
//! data), so decompression verifies integrity end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lz;
pub mod stats;

pub use lz::{compress, decompress, CompressError, CompressionLevel};
pub use stats::{CompressionStats, StreamMeasurer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_reexports_work() {
        let data = b"abcabcabcabc".to_vec();
        let c = compress(&data, CompressionLevel::Default);
        assert_eq!(decompress(&c).unwrap(), data);
    }
}
