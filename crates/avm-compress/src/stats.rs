//! Compression accounting used by the log-growth experiments (Figure 4).

use crate::lz::{compress, CompressionLevel};

/// Raw-vs-compressed accounting for a body of log data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompressionStats {
    /// Uncompressed size in bytes.
    pub raw_bytes: u64,
    /// Compressed size in bytes.
    pub compressed_bytes: u64,
}

impl CompressionStats {
    /// Compresses `data` at the given level and records both sizes.
    pub fn measure(data: &[u8], level: CompressionLevel) -> CompressionStats {
        CompressionStats {
            raw_bytes: data.len() as u64,
            compressed_bytes: compress(data, level).len() as u64,
        }
    }

    /// Compression ratio (raw / compressed); 1.0 for empty input.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Fraction of the original size that remains after compression.
    pub fn compressed_fraction(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.raw_bytes as f64
        }
    }

    /// Accumulates another measurement.
    pub fn accumulate(&mut self, other: &CompressionStats) {
        self.raw_bytes += other.raw_bytes;
        self.compressed_bytes += other.compressed_bytes;
    }

    /// Measures a transfer assembled from multiple chunks (log entries,
    /// snapshot sections) as *one* compressed stream, so back-references can
    /// span chunk boundaries — how an auditor's single download behaves.
    ///
    /// Equivalent to pushing every chunk through a [`StreamMeasurer`].
    pub fn measure_stream<I, T>(chunks: I, level: CompressionLevel) -> CompressionStats
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        let mut measurer = StreamMeasurer::new();
        for chunk in chunks {
            measurer.push(chunk.as_ref());
        }
        measurer.finish(level)
    }
}

/// Incrementally assembles a transfer stream chunk by chunk and measures its
/// compressed size on [`StreamMeasurer::finish`].
///
/// The chunks are compressed as a single stream (matches may cross chunk
/// boundaries), which models a downloaded log segment or snapshot chain more
/// faithfully than compressing each chunk in isolation would.
#[derive(Debug, Clone, Default)]
pub struct StreamMeasurer {
    buf: Vec<u8>,
}

impl StreamMeasurer {
    /// Creates an empty measurer.
    pub fn new() -> StreamMeasurer {
        StreamMeasurer::default()
    }

    /// Appends one chunk to the stream.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Raw bytes accumulated so far.
    pub fn raw_bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Compresses the accumulated stream at `level` and returns both sizes.
    pub fn finish(self, level: CompressionLevel) -> CompressionStats {
        CompressionStats::measure(&self.buf, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_accumulates() {
        let data = b"abcabcabcabcabcabcabcabc".repeat(50);
        let s = CompressionStats::measure(&data, CompressionLevel::Default);
        assert_eq!(s.raw_bytes, data.len() as u64);
        assert!(s.compressed_bytes < s.raw_bytes);
        assert!(s.ratio() > 1.0);
        assert!(s.compressed_fraction() < 1.0);

        let mut total = CompressionStats::default();
        total.accumulate(&s);
        total.accumulate(&s);
        assert_eq!(total.raw_bytes, 2 * s.raw_bytes);
    }

    #[test]
    fn stream_measurement_matches_concatenated_one_shot() {
        let chunks: Vec<Vec<u8>> = (0u8..20).map(|i| vec![i % 4; 64]).collect();
        let concatenated: Vec<u8> = chunks.iter().flatten().copied().collect();
        let via_stream = CompressionStats::measure_stream(chunks.iter(), CompressionLevel::Default);
        let one_shot = CompressionStats::measure(&concatenated, CompressionLevel::Default);
        assert_eq!(via_stream, one_shot);
        assert_eq!(via_stream.raw_bytes, concatenated.len() as u64);

        let mut measurer = StreamMeasurer::new();
        for c in &chunks {
            measurer.push(c);
        }
        assert_eq!(measurer.raw_bytes(), concatenated.len() as u64);
        assert_eq!(measurer.finish(CompressionLevel::Default), one_shot);
    }

    #[test]
    fn empty_input_has_unit_ratio() {
        let s = CompressionStats {
            raw_bytes: 0,
            compressed_bytes: 0,
        };
        assert_eq!(s.ratio(), 1.0);
        assert_eq!(s.compressed_fraction(), 1.0);
    }
}
