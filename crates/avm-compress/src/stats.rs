//! Compression accounting used by the log-growth experiments (Figure 4).

use crate::lz::{compress, CompressionLevel};

/// Raw-vs-compressed accounting for a body of log data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompressionStats {
    /// Uncompressed size in bytes.
    pub raw_bytes: u64,
    /// Compressed size in bytes.
    pub compressed_bytes: u64,
}

impl CompressionStats {
    /// Compresses `data` at the given level and records both sizes.
    pub fn measure(data: &[u8], level: CompressionLevel) -> CompressionStats {
        CompressionStats {
            raw_bytes: data.len() as u64,
            compressed_bytes: compress(data, level).len() as u64,
        }
    }

    /// Compression ratio (raw / compressed); 1.0 for empty input.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Fraction of the original size that remains after compression.
    pub fn compressed_fraction(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.compressed_bytes as f64 / self.raw_bytes as f64
        }
    }

    /// Accumulates another measurement.
    pub fn accumulate(&mut self, other: &CompressionStats) {
        self.raw_bytes += other.raw_bytes;
        self.compressed_bytes += other.compressed_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_accumulates() {
        let data = b"abcabcabcabcabcabcabcabc".repeat(50);
        let s = CompressionStats::measure(&data, CompressionLevel::Default);
        assert_eq!(s.raw_bytes, data.len() as u64);
        assert!(s.compressed_bytes < s.raw_bytes);
        assert!(s.ratio() > 1.0);
        assert!(s.compressed_fraction() < 1.0);

        let mut total = CompressionStats::default();
        total.accumulate(&s);
        total.accumulate(&s);
        assert_eq!(total.raw_bytes, 2 * s.raw_bytes);
    }

    #[test]
    fn empty_input_has_unit_ratio() {
        let s = CompressionStats {
            raw_bytes: 0,
            compressed_bytes: 0,
        };
        assert_eq!(s.ratio(), 1.0);
        assert_eq!(s.compressed_fraction(), 1.0);
    }
}
