//! LZ77 compressor with a hash-chain match finder.
//!
//! Token stream format (after the header):
//!
//! * `varint literal_len`, followed by `literal_len` raw bytes,
//! * `varint match_len` (0 terminates the stream; otherwise `match_len >= MIN_MATCH`),
//! * `varint distance` (1-based backwards distance).
//!
//! Tokens alternate literal-run / match; either may be empty.  The header is
//! `MAGIC (4) || varint original_len || crc32(original)`.

use avm_wire::checksum::crc32;
use avm_wire::varint::{read_varint, write_varint};

/// Magic bytes identifying the compressed format ("AVLZ").
pub const MAGIC: [u8; 4] = *b"AVLZ";

/// Minimum length of a back-reference match.
const MIN_MATCH: usize = 4;
/// Maximum length of a back-reference match.
const MAX_MATCH: usize = 1 << 16;
/// Sliding window size.
const WINDOW: usize = 1 << 16;
/// Number of hash buckets in the match finder.
const HASH_BITS: u32 = 15;

/// Compression effort levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionLevel {
    /// Greedy matching, shallow chain search. Fast; used for online compression.
    Fast,
    /// Deeper chain search. The default used by the audit tool.
    Default,
    /// Exhaustive chain search within the window.
    Best,
}

impl CompressionLevel {
    fn max_chain(&self) -> usize {
        match self {
            CompressionLevel::Fast => 8,
            CompressionLevel::Default => 64,
            CompressionLevel::Best => 512,
        }
    }
}

/// Errors from decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Input does not start with the expected magic bytes.
    BadMagic,
    /// Input ended unexpectedly.
    Truncated,
    /// A back-reference pointed before the start of the output.
    BadDistance {
        /// The offending distance.
        distance: usize,
        /// Output length at the time.
        produced: usize,
    },
    /// The declared original length did not match the decoded output.
    LengthMismatch {
        /// Length from the header.
        declared: u64,
        /// Actual decoded length.
        actual: u64,
    },
    /// The CRC of the decoded output did not match the header.
    ChecksumMismatch,
}

impl core::fmt::Display for CompressError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompressError::BadMagic => write!(f, "bad magic bytes"),
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::BadDistance { distance, produced } => {
                write!(
                    f,
                    "invalid back-reference distance {distance} at offset {produced}"
                )
            }
            CompressError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "length mismatch: header says {declared}, decoded {actual}"
                )
            }
            CompressError::ChecksumMismatch => write!(f, "checksum mismatch after decompression"),
        }
    }
}

impl std::error::Error for CompressError {}

fn hash4(data: &[u8]) -> usize {
    // Multiplicative hash of the next four bytes.
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data`.
pub fn compress(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    out.extend_from_slice(&MAGIC);
    write_varint(&mut out, data.len() as u64);
    out.extend_from_slice(&crc32(data).to_le_bytes());

    let max_chain = level.max_chain();
    // head[h] = most recent position with hash h (+1, 0 = none); prev[i % WINDOW] = previous position with same hash.
    let mut head = vec![0usize; 1 << HASH_BITS];
    let mut prev = vec![0usize; WINDOW];

    let mut pos = 0usize;
    let mut literal_start = 0usize;

    while pos < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= data.len() {
            let h = hash4(&data[pos..]);
            let mut candidate = head[h];
            let mut chain = 0usize;
            while candidate > 0 && chain < max_chain {
                let cand_pos = candidate - 1;
                if pos - cand_pos > WINDOW {
                    break;
                }
                // Compare.
                let limit = (data.len() - pos).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[cand_pos + l] == data[pos + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = pos - cand_pos;
                    if l >= limit {
                        break;
                    }
                }
                candidate = prev[cand_pos % WINDOW];
                chain += 1;
            }
            // Insert current position into the hash chain.
            prev[pos % WINDOW] = head[h];
            head[h] = pos + 1;
        }

        if best_len >= MIN_MATCH {
            // Emit pending literals, then the match.
            let literals = &data[literal_start..pos];
            write_varint(&mut out, literals.len() as u64);
            out.extend_from_slice(literals);
            write_varint(&mut out, best_len as u64);
            write_varint(&mut out, best_dist as u64);
            // Insert skipped positions into the chain (cheaply, every position).
            let end = pos + best_len;
            let mut p = pos + 1;
            while p < end && p + MIN_MATCH <= data.len() {
                let h = hash4(&data[p..]);
                prev[p % WINDOW] = head[h];
                head[h] = p + 1;
                p += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    // Trailing literals and stream terminator (match_len = 0).
    let literals = &data[literal_start..];
    write_varint(&mut out, literals.len() as u64);
    out.extend_from_slice(literals);
    write_varint(&mut out, 0);
    out
}

/// Decompresses data produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    if input.len() < 4 || input[..4] != MAGIC {
        return Err(CompressError::BadMagic);
    }
    let mut pos = 4usize;
    let (orig_len, n) = read_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
    pos += n;
    if input.len() < pos + 4 {
        return Err(CompressError::Truncated);
    }
    let stored_crc =
        u32::from_le_bytes([input[pos], input[pos + 1], input[pos + 2], input[pos + 3]]);
    pos += 4;

    let mut out: Vec<u8> = Vec::with_capacity(orig_len as usize);
    loop {
        // Literal run.
        let (lit_len, n) = read_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
        pos += n;
        let lit_len = lit_len as usize;
        if input.len() < pos + lit_len {
            return Err(CompressError::Truncated);
        }
        out.extend_from_slice(&input[pos..pos + lit_len]);
        pos += lit_len;
        // Match (or terminator).
        let (match_len, n) = read_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
        pos += n;
        if match_len == 0 {
            break;
        }
        let (dist, n) = read_varint(&input[pos..]).map_err(|_| CompressError::Truncated)?;
        pos += n;
        let dist = dist as usize;
        if dist == 0 || dist > out.len() {
            return Err(CompressError::BadDistance {
                distance: dist,
                produced: out.len(),
            });
        }
        let start = out.len() - dist;
        for i in 0..match_len as usize {
            let b = out[start + i];
            out.push(b);
        }
    }
    if out.len() as u64 != orig_len {
        return Err(CompressError::LengthMismatch {
            declared: orig_len,
            actual: out.len() as u64,
        });
    }
    if crc32(&out) != stored_crc {
        return Err(CompressError::ChecksumMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8], level: CompressionLevel) {
        let c = compress(data, level);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for level in [
            CompressionLevel::Fast,
            CompressionLevel::Default,
            CompressionLevel::Best,
        ] {
            roundtrip(b"", level);
            roundtrip(b"a", level);
            roundtrip(b"abc", level);
            roundtrip(b"abcd", level);
        }
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data: Vec<u8> = b"TIMETRACKER entry: step=12345 branch=678 "
            .iter()
            .cycle()
            .take(100_000)
            .copied()
            .collect();
        let c = compress(&data, CompressionLevel::Default);
        assert!(
            c.len() < data.len() / 10,
            "compressed {} of {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn random_data_roundtrips() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        for level in [CompressionLevel::Fast, CompressionLevel::Default] {
            roundtrip(&data, level);
        }
    }

    #[test]
    fn structured_loglike_data() {
        // Synthetic log: repeated headers with increasing sequence numbers.
        let mut data = Vec::new();
        for i in 0u64..5000 {
            data.extend_from_slice(b"ENTRY type=clockread seq=");
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(b" value=");
            data.extend_from_slice(&(i * 7919).to_le_bytes());
        }
        let c = compress(&data, CompressionLevel::Default);
        assert!(c.len() < data.len() / 3);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corruption_detected() {
        let data: Vec<u8> = b"hello world hello world hello world".repeat(100);
        let mut c = compress(&data, CompressionLevel::Default);
        // Flip a literal byte deep in the stream; the CRC must catch it even
        // if the token structure remains decodable.
        let idx = c.len() / 2;
        c[idx] ^= 0x01;
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decompress(b"NOPE"), Err(CompressError::BadMagic));
        assert_eq!(decompress(b""), Err(CompressError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let data = b"some compressible data some compressible data".to_vec();
        let c = compress(&data, CompressionLevel::Default);
        for cut in [5, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn overlapping_matches_roundtrip() {
        // Runs like "aaaaa..." force matches whose source overlaps the output
        // being produced (distance < length).
        let data = vec![b'a'; 10_000];
        roundtrip(&data, CompressionLevel::Default);
        let mut mixed = Vec::new();
        for i in 0..1000u32 {
            mixed.extend_from_slice(&[b'x'; 17]);
            mixed.extend_from_slice(&i.to_le_bytes());
        }
        roundtrip(&mixed, CompressionLevel::Best);
    }

    #[test]
    fn levels_trade_ratio() {
        let data: Vec<u8> = (0..40_000u32).map(|i| ((i / 3) % 251) as u8).collect();
        let fast = compress(&data, CompressionLevel::Fast).len();
        let best = compress(&data, CompressionLevel::Best).len();
        assert!(best <= fast, "best={best} fast={fast}");
    }
}
