//! Attestation envelopes: launch measurement bound to the accountability
//! chain.
//!
//! The AVM paper makes *post-launch* conduct verifiable: a tamper-evident
//! log plus spot-check replay detects any behavioural deviation of a
//! machine a third party does not control.  The confidential-VM line of
//! work asks the complementary question about *launch* integrity: did the
//! machine boot the image everyone agreed on?  This crate marries the two
//! by making launch measurement and lifetime execution one verifiable
//! artifact:
//!
//! * [`ImageMeasurement`] — a chunk-granular Merkle measurement of the
//!   initial VM image (one leaf per 512-byte chunk of its canonical
//!   serialization), so two parties agree on the *exact* launch bytes.
//! * [`BootEventLog`] — a measured-boot event log in the
//!   measure → extend → seal style: each boot event extends a running
//!   measurement register (`reg' = H(tag ‖ reg ‖ event)`), and sealing
//!   signs the final register, after which the log cannot be grown or
//!   forked without breaking the seal.
//! * [`AttestationEnvelope`] — the transferable artifact: the image
//!   measurement, the sealed boot log, the provider log's META record
//!   content, and the **genesis authenticator** — the signed commitment to
//!   log entry 1.  Because the authenticator commits to the META record
//!   (which names the image digest), the provider's accountability chain is
//!   anchored in its launch measurement: the same key that will sign every
//!   later authenticator has signed what was booted.
//! * [`verify_quote`] — the verifier side of the nonce'd
//!   challenge/response of [`avm_wire::attest`], classifying failures into
//!   the distinct verdicts of [`AttestVerdict`]: a tampered image, a
//!   forked/extended-after-seal boot log, a replayed (stale-nonce) quote
//!   and an expired quote are all told apart.
//!
//! Post-launch execution tampering is deliberately *not* an attestation
//! verdict: a verified envelope only certifies the launch state, and the
//! auditor continues into ordinary spot-check replay over the same session
//! to check conduct (the premise this crate shares with the paper).
//!
//! # Example: measure, seal, bind, verify
//!
//! ```
//! use avm_attest::{
//!     make_quote, verify_quote, AttestVerdict, AttestationEnvelope, BootEventLog,
//!     ExpectedLaunch, ImageMeasurement, EVENT_GENESIS, EVENT_IMAGE,
//! };
//! use avm_crypto::keys::{SignatureScheme, SigningKey};
//! use avm_crypto::sha256::Digest;
//! use avm_log::{Authenticator, EntryKind, TamperEvidentLog};
//! use avm_wire::attest::AttestChallenge;
//! use avm_wire::Encode;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // The provider boots an agreed-upon image and measures it chunk by chunk.
//! let image_bytes = b"canonical image serialization".to_vec();
//! let measurement = ImageMeasurement::measure(&image_bytes);
//!
//! // Measured boot: each step extends the register, then the log is sealed.
//! let key = SigningKey::generate(&mut StdRng::seed_from_u64(7), SignatureScheme::Rsa(512));
//! let meta_content = b"meta-record".to_vec();
//! let mut boot = BootEventLog::new();
//! boot.measure(EVENT_IMAGE, measurement.root.as_bytes()).unwrap();
//! boot.measure(EVENT_GENESIS, &meta_content).unwrap();
//! boot.seal(&key);
//!
//! // The genesis authenticator commits the launch claim into the log chain.
//! let mut log = TamperEvidentLog::new();
//! let entry = log.append(EntryKind::Meta, meta_content.clone()).clone();
//! let genesis = Authenticator::create(&key, &entry, Digest::ZERO);
//! let envelope = AttestationEnvelope { image: measurement.clone(), boot, meta_content: meta_content.clone(), genesis };
//!
//! // Challenge/response: the verifier's nonce binds the quote to this exchange.
//! let challenge = AttestChallenge { nonce: [9u8; 32], issued_at_us: 1_000 };
//! let quote = make_quote(&envelope.encode_to_vec(), &challenge, &key);
//! let expected = ExpectedLaunch { measurement, meta_content };
//! let (verdict, _) = verify_quote(&quote, &challenge, challenge.issued_at_us,
//!                                 5_000_000, &expected, &key.verifying_key());
//! assert_eq!(verdict, AttestVerdict::Verified);
//!
//! // A replayed quote echoes a stale nonce and is caught distinctly.
//! let fresh = AttestChallenge { nonce: [1u8; 32], issued_at_us: 2_000 };
//! let (verdict, _) = verify_quote(&quote, &fresh, fresh.issued_at_us,
//!                                 5_000_000, &expected, &key.verifying_key());
//! assert_eq!(verdict, AttestVerdict::StaleNonce);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avm_crypto::keys::{SigningKey, VerifyingKey};
use avm_crypto::merkle::MerkleTree;
use avm_crypto::sha256::{sha256, Digest, Sha256};
use avm_log::{Authenticator, EntryKind};
use avm_wire::attest::{AttestChallenge, AttestQuote};
use avm_wire::{Decode, Encode, Reader, WireError, WireResult, Writer};

/// Chunk size of the image measurement: one Merkle leaf per this many bytes
/// of the image's canonical serialization (matches the state tree's 512-byte
/// chunk granularity).
pub const MEASURE_CHUNK_SIZE: usize = 512;

/// Standard boot-event label: the image measurement root was loaded.
pub const EVENT_IMAGE: &str = "avm.image";
/// Standard boot-event label: the log's META record (the launch claim) was
/// written.
pub const EVENT_GENESIS: &str = "avm.genesis";

const EVENT_TAG: &[u8] = b"avm-attest-event";
const EXTEND_TAG: &[u8] = b"avm-attest-extend";
const SEAL_TAG: &[u8] = b"avm-attest-seal";
const ENVELOPE_TAG: &[u8] = b"avm-attest-envelope";
const QUOTE_TAG: &[u8] = b"avm-attest-quote";

/// Errors raised while *building* attestation state (verification failures
/// are [`AttestVerdict`]s, not errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestError {
    /// A boot event was measured into an already-sealed log.
    Sealed,
}

impl core::fmt::Display for AttestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AttestError::Sealed => write!(f, "boot event log is sealed"),
        }
    }
}

impl std::error::Error for AttestError {}

/// Chunk-granular Merkle measurement of a VM image's canonical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageMeasurement {
    /// Bytes per Merkle leaf.
    pub chunk_size: u64,
    /// Number of leaves (the last may be short).
    pub chunk_count: u64,
    /// Merkle root over the chunks.
    pub root: Digest,
}

impl ImageMeasurement {
    /// Measures `bytes` at [`MEASURE_CHUNK_SIZE`] granularity.
    pub fn measure(bytes: &[u8]) -> ImageMeasurement {
        let chunks: Vec<&[u8]> = if bytes.is_empty() {
            vec![&[][..]]
        } else {
            bytes.chunks(MEASURE_CHUNK_SIZE).collect()
        };
        let tree = MerkleTree::from_leaves(&chunks);
        ImageMeasurement {
            chunk_size: MEASURE_CHUNK_SIZE as u64,
            chunk_count: chunks.len() as u64,
            root: tree.root(),
        }
    }
}

impl Encode for ImageMeasurement {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.chunk_size);
        w.put_varint(self.chunk_count);
        w.put_raw(self.root.as_bytes());
    }
}

impl Decode for ImageMeasurement {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(ImageMeasurement {
            chunk_size: r.get_varint()?,
            chunk_count: r.get_varint()?,
            root: Digest::from_slice(r.get_raw(32)?).ok_or(WireError::Corrupt("digest"))?,
        })
    }
}

/// One measured boot event: a label and the digest of the measured payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootEvent {
    /// What was measured (e.g. [`EVENT_IMAGE`]).
    pub label: String,
    /// SHA-256 of the measured payload.
    pub payload_digest: Digest,
}

impl BootEvent {
    /// The digest this event contributes to the measurement register.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(EVENT_TAG);
        h.update(&(self.label.len() as u64).to_le_bytes());
        h.update(self.label.as_bytes());
        h.update(self.payload_digest.as_bytes());
        h.finalize()
    }
}

impl Encode for BootEvent {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.label);
        w.put_raw(self.payload_digest.as_bytes());
    }
}

impl Decode for BootEvent {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(BootEvent {
            label: r.get_string()?,
            payload_digest: Digest::from_slice(r.get_raw(32)?)
                .ok_or(WireError::Corrupt("digest"))?,
        })
    }
}

/// A measured-boot event log: measure → extend → seal.
///
/// Each [`BootEventLog::measure`] appends an event and (conceptually)
/// extends the running register; [`BootEventLog::seal`] signs the final
/// register value.  The register is always *recomputed from the events* by
/// verifiers, so appending, removing or reordering events after sealing
/// breaks the seal signature — there is no way to extend or fork a sealed
/// log without the signing key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootEventLog {
    events: Vec<BootEvent>,
    seal: Option<Vec<u8>>,
}

impl BootEventLog {
    /// An empty, unsealed log.
    pub fn new() -> BootEventLog {
        BootEventLog {
            events: Vec::new(),
            seal: None,
        }
    }

    /// Reassembles a log from raw parts (decode path and tamper harnesses).
    pub fn from_parts(events: Vec<BootEvent>, seal: Option<Vec<u8>>) -> BootEventLog {
        BootEventLog { events, seal }
    }

    /// The measured events, in boot order.
    pub fn events(&self) -> &[BootEvent] {
        &self.events
    }

    /// True once sealed.
    pub fn is_sealed(&self) -> bool {
        self.seal.is_some()
    }

    /// Measures `payload` under `label`, extending the register.  Fails on a
    /// sealed log — sealing is the point of no return.
    pub fn measure(&mut self, label: &str, payload: &[u8]) -> Result<Digest, AttestError> {
        if self.is_sealed() {
            return Err(AttestError::Sealed);
        }
        self.events.push(BootEvent {
            label: label.to_string(),
            payload_digest: sha256(payload),
        });
        Ok(self.register())
    }

    /// The current measurement register, recomputed from the events:
    /// `reg_0 = 0`, `reg_i = H(tag ‖ reg_{i-1} ‖ event_i)`.
    pub fn register(&self) -> Digest {
        self.events.iter().fold(Digest::ZERO, |reg, event| {
            let mut h = Sha256::new();
            h.update(EXTEND_TAG);
            h.update(reg.as_bytes());
            h.update(event.digest().as_bytes());
            h.finalize()
        })
    }

    /// Bytes the seal signature covers for register value `register`.
    pub fn seal_payload(register: &Digest) -> Vec<u8> {
        let mut payload = Vec::with_capacity(SEAL_TAG.len() + 32);
        payload.extend_from_slice(SEAL_TAG);
        payload.extend_from_slice(register.as_bytes());
        payload
    }

    /// Seals the log: signs the current register.  Further measures fail.
    pub fn seal(&mut self, key: &SigningKey) {
        let register = self.register();
        self.seal = Some(key.sign(&Self::seal_payload(&register)));
    }

    /// Verifies the seal over the register recomputed from the events.
    /// `false` for an unsealed log, a forged seal, or any post-seal change
    /// to the event list (extension, truncation, reorder, edit).
    pub fn verify_seal(&self, key: &VerifyingKey) -> bool {
        match &self.seal {
            None => false,
            Some(sig) => key
                .verify(&Self::seal_payload(&self.register()), sig)
                .is_ok(),
        }
    }
}

impl Default for BootEventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl Encode for BootEventLog {
    fn encode(&self, w: &mut Writer) {
        self.events.encode(w);
        self.seal.encode(w);
    }
}

impl Decode for BootEventLog {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(BootEventLog {
            events: Vec::<BootEvent>::decode(r)?,
            seal: Option::<Vec<u8>>::decode(r)?,
        })
    }
}

/// The transferable launch artifact: what a provider serves in answer to an
/// attestation challenge.
///
/// The binding is three-way: the *boot log* measures the image root and the
/// META content (so the sealed register commits to both), the *META
/// content* names the image digest (the launch claim recorded in log entry
/// 1), and the *genesis authenticator* signs the chain hash of that very
/// entry — the same signature chain every later audit verifies.  Launch
/// measurement and lifetime accountability share one root of trust.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationEnvelope {
    /// Chunk-granular measurement of the booted image.
    pub image: ImageMeasurement,
    /// The sealed measured-boot event log.
    pub boot: BootEventLog,
    /// Content bytes of the provider log's META record (log entry 1).
    pub meta_content: Vec<u8>,
    /// The provider's authenticator for log entry 1 — the signed commitment
    /// anchoring the accountability chain in this launch.
    pub genesis: Authenticator,
}

impl AttestationEnvelope {
    /// Digest of the encoded envelope (what a quote signature covers).
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(ENVELOPE_TAG);
        h.update(&self.encode_to_vec());
        h.finalize()
    }
}

impl Encode for AttestationEnvelope {
    fn encode(&self, w: &mut Writer) {
        self.image.encode(w);
        self.boot.encode(w);
        w.put_bytes(&self.meta_content);
        self.genesis.encode(w);
    }
}

impl Decode for AttestationEnvelope {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(AttestationEnvelope {
            image: ImageMeasurement::decode(r)?,
            boot: BootEventLog::decode(r)?,
            meta_content: r.get_bytes()?.to_vec(),
            genesis: Authenticator::decode(r)?,
        })
    }
}

/// What the verifier knows out-of-band: the reference launch state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpectedLaunch {
    /// The reference image's measurement.
    pub measurement: ImageMeasurement,
    /// The META record content an honest launch of that image records.
    pub meta_content: Vec<u8>,
}

/// Outcome of verifying an attestation quote.  Each tamper class maps to
/// its own verdict, so evidence states *what* went wrong, not just that
/// something did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttestVerdict {
    /// Launch measurement verified; continue into spot-check auditing.
    Verified,
    /// The measured image (or its claimed META record) is not the reference
    /// image — a tampered initial image.
    ImageMismatch,
    /// The boot event log fails its seal, or its events do not match the
    /// envelope's own claims — forked, extended after seal, or resealed by
    /// another key.
    BootLogForged,
    /// The genesis authenticator does not commit to the META record under
    /// the provider's key — the accountability chain is not anchored in
    /// this launch.
    ChainMismatch,
    /// The quote echoes a nonce other than the challenge's — a replayed
    /// attestation.
    StaleNonce,
    /// The challenge fell outside the freshness window before the quote was
    /// verified.
    Expired,
    /// The quote signature is invalid or the envelope is undecodable.
    BadQuote,
}

impl AttestVerdict {
    /// True only for [`AttestVerdict::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, AttestVerdict::Verified)
    }
}

impl core::fmt::Display for AttestVerdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            AttestVerdict::Verified => "verified",
            AttestVerdict::ImageMismatch => "image mismatch",
            AttestVerdict::BootLogForged => "boot event log forged",
            AttestVerdict::ChainMismatch => "authenticator chain mismatch",
            AttestVerdict::StaleNonce => "stale nonce (replayed attestation)",
            AttestVerdict::Expired => "challenge expired",
            AttestVerdict::BadQuote => "bad quote",
        };
        f.write_str(s)
    }
}

/// Bytes a quote signature covers: the challenge nonce, the signing time
/// and the envelope digest.
pub fn quote_payload(nonce: &[u8; 32], signed_at_us: u64, envelope_digest: &Digest) -> Vec<u8> {
    let mut payload = Vec::with_capacity(QUOTE_TAG.len() + 32 + 8 + 32);
    payload.extend_from_slice(QUOTE_TAG);
    payload.extend_from_slice(nonce);
    payload.extend_from_slice(&signed_at_us.to_le_bytes());
    payload.extend_from_slice(envelope_digest.as_bytes());
    payload
}

/// Produces the attester's quote for `challenge` over an already-encoded
/// envelope: echoes the nonce and signs `(nonce, time, envelope digest)`.
pub fn make_quote(
    envelope_bytes: &[u8],
    challenge: &AttestChallenge,
    key: &SigningKey,
) -> AttestQuote {
    let mut h = Sha256::new();
    h.update(ENVELOPE_TAG);
    h.update(envelope_bytes);
    let digest = h.finalize();
    let signed_at_us = challenge.issued_at_us;
    let signature = key.sign(&quote_payload(&challenge.nonce, signed_at_us, &digest));
    AttestQuote {
        envelope: envelope_bytes.to_vec(),
        nonce: challenge.nonce,
        signed_at_us,
        signature,
    }
}

/// Verifies the envelope alone (no challenge binding): launch measurement,
/// boot log seal, and genesis anchoring against the reference launch.
pub fn verify_envelope(
    envelope: &AttestationEnvelope,
    expected: &ExpectedLaunch,
    provider_key: &VerifyingKey,
) -> AttestVerdict {
    // 1. The measured image must be the reference image, chunk for chunk.
    if envelope.image != expected.measurement {
        return AttestVerdict::ImageMismatch;
    }

    // 2. The boot log must be sealed under the provider's key and its
    //    events must measure exactly this envelope's image root and META
    //    content — a log from some other boot (forked) or one grown after
    //    sealing fails here.
    if !envelope.boot.verify_seal(provider_key) {
        return AttestVerdict::BootLogForged;
    }
    let image_event = sha256(envelope.image.root.as_bytes());
    let genesis_event = sha256(&envelope.meta_content);
    let claims = |label: &str, digest: Digest| {
        envelope
            .boot
            .events()
            .iter()
            .any(|e| e.label == label && e.payload_digest == digest)
    };
    if !claims(EVENT_IMAGE, image_event) || !claims(EVENT_GENESIS, genesis_event) {
        return AttestVerdict::BootLogForged;
    }

    // 3. The launch claim itself must match the reference: an envelope
    //    whose META record names a different image digest (or node) is a
    //    measured-but-wrong launch.
    if envelope.meta_content != expected.meta_content {
        return AttestVerdict::ImageMismatch;
    }

    // 4. The genesis authenticator must anchor the accountability chain in
    //    this launch: entry 1, chain starting at zero, committing to the
    //    META content, signed by the provider.
    let genesis = &envelope.genesis;
    if genesis.seq != 1
        || genesis.prev_hash != Digest::ZERO
        || !genesis.commits_to(EntryKind::Meta, &envelope.meta_content)
        || genesis.verify_signature(provider_key).is_err()
    {
        return AttestVerdict::ChainMismatch;
    }

    AttestVerdict::Verified
}

/// Verifies a quote against the challenge that solicited it: freshness,
/// nonce binding, quote signature, then [`verify_envelope`].  Returns the
/// verdict and, when the envelope at least decoded, the envelope itself
/// (evidence for any verdict).
pub fn verify_quote(
    quote: &AttestQuote,
    challenge: &AttestChallenge,
    now_us: u64,
    freshness_us: u64,
    expected: &ExpectedLaunch,
    provider_key: &VerifyingKey,
) -> (AttestVerdict, Option<AttestationEnvelope>) {
    let envelope = AttestationEnvelope::decode_exact(&quote.envelope).ok();

    // Replay before freshness: a stale nonce is the sharper diagnosis even
    // when the replayed quote is also old.
    if quote.nonce != challenge.nonce {
        return (AttestVerdict::StaleNonce, envelope);
    }
    if now_us.saturating_sub(challenge.issued_at_us) > freshness_us
        || quote.signed_at_us < challenge.issued_at_us
    {
        return (AttestVerdict::Expired, envelope);
    }

    let Some(envelope) = envelope else {
        return (AttestVerdict::BadQuote, None);
    };
    let payload = quote_payload(&quote.nonce, quote.signed_at_us, &envelope.digest());
    if provider_key.verify(&payload, &quote.signature).is_err() {
        return (AttestVerdict::BadQuote, Some(envelope));
    }

    let verdict = verify_envelope(&envelope, expected, provider_key);
    (verdict, Some(envelope))
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_crypto::keys::SignatureScheme;
    use avm_log::TamperEvidentLog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> SigningKey {
        SigningKey::generate(&mut StdRng::seed_from_u64(seed), SignatureScheme::Rsa(512))
    }

    fn honest_parts() -> (AttestationEnvelope, ExpectedLaunch, SigningKey) {
        let k = key(1);
        let image_bytes = vec![0xabu8; 3 * MEASURE_CHUNK_SIZE + 100];
        let measurement = ImageMeasurement::measure(&image_bytes);
        let meta_content = b"meta: image=abc node=bob scheme=rsa512".to_vec();
        let mut boot = BootEventLog::new();
        boot.measure(EVENT_IMAGE, measurement.root.as_bytes())
            .unwrap();
        boot.measure(EVENT_GENESIS, &meta_content).unwrap();
        boot.seal(&k);
        let mut log = TamperEvidentLog::new();
        let entry = log.append(EntryKind::Meta, meta_content.clone()).clone();
        let genesis = Authenticator::create(&k, &entry, Digest::ZERO);
        let envelope = AttestationEnvelope {
            image: measurement.clone(),
            boot,
            meta_content: meta_content.clone(),
            genesis,
        };
        let expected = ExpectedLaunch {
            measurement,
            meta_content,
        };
        (envelope, expected, k)
    }

    #[test]
    fn image_measurement_is_chunk_granular() {
        let a = ImageMeasurement::measure(&vec![1u8; 2 * MEASURE_CHUNK_SIZE]);
        assert_eq!(a.chunk_count, 2);
        // Flipping one byte in one chunk changes the root.
        let mut bytes = vec![1u8; 2 * MEASURE_CHUNK_SIZE];
        bytes[MEASURE_CHUNK_SIZE + 3] ^= 0xff;
        assert_ne!(ImageMeasurement::measure(&bytes).root, a.root);
        // Chunk boundaries matter: same bytes, empty input has its own root.
        assert_eq!(ImageMeasurement::measure(&[]).chunk_count, 1);
    }

    #[test]
    fn sealed_boot_log_rejects_growth_and_detects_tamper() {
        let k = key(2);
        let mut boot = BootEventLog::new();
        boot.measure("stage0", b"firmware").unwrap();
        boot.measure("stage1", b"kernel").unwrap();
        boot.seal(&k);
        assert!(boot.is_sealed());
        assert!(boot.verify_seal(&k.verifying_key()));
        assert_eq!(boot.measure("late", b"rootkit"), Err(AttestError::Sealed));

        // Extending after seal (via raw parts) breaks the seal.
        let mut events = boot.events().to_vec();
        events.push(BootEvent {
            label: "late".into(),
            payload_digest: sha256(b"rootkit"),
        });
        let forged = BootEventLog::from_parts(events, Some(boot_seal(&boot)));
        assert!(!forged.verify_seal(&k.verifying_key()));

        // Reordering breaks it too.
        let mut events = boot.events().to_vec();
        events.swap(0, 1);
        let forked = BootEventLog::from_parts(events, Some(boot_seal(&boot)));
        assert!(!forked.verify_seal(&k.verifying_key()));

        // A different signer cannot reseal as the provider.
        let mut resealed = BootEventLog::from_parts(boot.events().to_vec(), None);
        resealed.seal(&key(3));
        assert!(!resealed.verify_seal(&k.verifying_key()));
    }

    fn boot_seal(log: &BootEventLog) -> Vec<u8> {
        // Round-trip through the wire format to extract the seal bytes.
        let bytes = log.encode_to_vec();
        let decoded = BootEventLog::decode_exact(&bytes).unwrap();
        match decoded {
            BootEventLog { seal: Some(s), .. } => s,
            _ => panic!("log not sealed"),
        }
    }

    #[test]
    fn envelope_roundtrips_and_digest_is_stable() {
        let (envelope, _, _) = honest_parts();
        let bytes = envelope.encode_to_vec();
        let decoded = AttestationEnvelope::decode_exact(&bytes).unwrap();
        assert_eq!(decoded, envelope);
        assert_eq!(decoded.digest(), envelope.digest());
        assert!(AttestationEnvelope::decode_exact(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn honest_quote_verifies() {
        let (envelope, expected, k) = honest_parts();
        let challenge = AttestChallenge {
            nonce: [3u8; 32],
            issued_at_us: 500,
        };
        let quote = make_quote(&envelope.encode_to_vec(), &challenge, &k);
        let (verdict, got) = verify_quote(
            &quote,
            &challenge,
            600,
            1_000,
            &expected,
            &k.verifying_key(),
        );
        assert_eq!(verdict, AttestVerdict::Verified);
        assert_eq!(got.unwrap(), envelope);
    }

    #[test]
    fn each_tamper_class_gets_its_own_verdict() {
        let (envelope, expected, k) = honest_parts();
        let vk = k.verifying_key();
        let challenge = AttestChallenge {
            nonce: [3u8; 32],
            issued_at_us: 500,
        };
        let verify = |env: &AttestationEnvelope| {
            let quote = make_quote(&env.encode_to_vec(), &challenge, &k);
            verify_quote(&quote, &challenge, 600, 1_000, &expected, &vk).0
        };

        // Tampered image: the provider measured different launch bytes.
        let mut tampered = envelope.clone();
        tampered.image = ImageMeasurement::measure(b"evil image");
        // Its boot log honestly measures the evil root — still caught.
        let mut boot = BootEventLog::new();
        boot.measure(EVENT_IMAGE, tampered.image.root.as_bytes())
            .unwrap();
        boot.measure(EVENT_GENESIS, &tampered.meta_content).unwrap();
        boot.seal(&k);
        tampered.boot = boot;
        assert_eq!(verify(&tampered), AttestVerdict::ImageMismatch);

        // Forked boot log: events extended after seal.
        let mut forked = envelope.clone();
        let mut events = forked.boot.events().to_vec();
        events.push(BootEvent {
            label: "late".into(),
            payload_digest: sha256(b"x"),
        });
        forked.boot = BootEventLog::from_parts(events, Some(boot_seal(&envelope.boot)));
        assert_eq!(verify(&forked), AttestVerdict::BootLogForged);

        // Chain mismatch: genesis signed by some other key.
        let mut unanchored = envelope.clone();
        unanchored.genesis.signature = key(9).sign(&Authenticator::signed_payload(
            unanchored.genesis.seq,
            &unanchored.genesis.hash,
        ));
        assert_eq!(verify(&unanchored), AttestVerdict::ChainMismatch);

        // Stale nonce: replay of a quote for an older challenge.
        let old = AttestChallenge {
            nonce: [8u8; 32],
            issued_at_us: 100,
        };
        let replayed = make_quote(&envelope.encode_to_vec(), &old, &k);
        let (verdict, _) = verify_quote(&replayed, &challenge, 600, 1_000, &expected, &vk);
        assert_eq!(verdict, AttestVerdict::StaleNonce);

        // Expired: the window closed before verification.
        let quote = make_quote(&envelope.encode_to_vec(), &challenge, &k);
        let (verdict, _) = verify_quote(&quote, &challenge, 5_000, 1_000, &expected, &vk);
        assert_eq!(verdict, AttestVerdict::Expired);

        // Bad quote: signature over a different envelope digest.
        let mut wrong_sig = make_quote(&envelope.encode_to_vec(), &challenge, &k);
        wrong_sig.signature = quote.signature.clone();
        wrong_sig.envelope.push(0);
        let (verdict, _) = verify_quote(&wrong_sig, &challenge, 600, 1_000, &expected, &vk);
        assert_eq!(verdict, AttestVerdict::BadQuote);
    }

    #[test]
    fn meta_substitution_is_an_image_mismatch() {
        // A provider that booted the right bytes but *claims* another image
        // in its META record (so later audits replay the wrong reference)
        // is caught as an image mismatch.
        let (envelope, expected, k) = honest_parts();
        let mut lying = envelope.clone();
        lying.meta_content = b"meta: image=OTHER node=bob scheme=rsa512".to_vec();
        let mut boot = BootEventLog::new();
        boot.measure(EVENT_IMAGE, lying.image.root.as_bytes())
            .unwrap();
        boot.measure(EVENT_GENESIS, &lying.meta_content).unwrap();
        boot.seal(&k);
        lying.boot = boot;
        let challenge = AttestChallenge {
            nonce: [3u8; 32],
            issued_at_us: 500,
        };
        let quote = make_quote(&lying.encode_to_vec(), &challenge, &k);
        let (verdict, _) = verify_quote(
            &quote,
            &challenge,
            600,
            1_000,
            &expected,
            &k.verifying_key(),
        );
        assert_eq!(verdict, AttestVerdict::ImageMismatch);
    }
}
