//! Tamper-evident logging in the style of PeerReview, as used by the AVMM.
//!
//! The paper (§4.3) structures the log as a hash chain: each entry is
//! `e_i = (s_i, t_i, c_i, h_i)` with `h_i = H(h_{i-1} || s_i || t_i || H(c_i))`
//! and `h_0 := 0`.  Outgoing messages carry an *authenticator*
//! `a_i = (s_i, h_i, σ(s_i || h_i))` — a signed commitment to the log prefix —
//! plus `h_{i-1}` so the recipient can verify that entry `e_i` really is
//! `SEND(m)`.  Because the hash function is second-pre-image resistant, a
//! machine that later reorders, modifies, forges or forks its log can no
//! longer produce a chain consistent with the authenticators it has already
//! handed out.
//!
//! This crate provides the log data structure, authenticators,
//! acknowledgment payloads and the verification routines an auditor runs
//! during the *syntactic* phase of an audit.  The *semantic* phase
//! (deterministic replay) lives in `avm-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod entry;
pub mod log;
pub mod source;
pub mod verify;

pub use auth::{Acknowledgment, Authenticator};
pub use entry::{EntryKind, LogEntry};
pub use log::TamperEvidentLog;
pub use source::LogSource;
pub use verify::{verify_segment, LogVerifyError, SegmentSummary};
