//! Read-only log access, independent of where the entries live.
//!
//! The audit endpoint serves log segments to auditors (paper §3.5).  Before
//! the storage layer existed, the only place entries could live was the
//! in-memory [`TamperEvidentLog`]; with durable segment files the same
//! protocol must be servable straight from recovered segments.  [`LogSource`]
//! is the small trait both implement: a dense, 1-based, hash-chained run of
//! entries starting at the `h_0 = 0` anchor.

use avm_crypto::sha256::Digest;

use crate::entry::LogEntry;
use crate::log::TamperEvidentLog;

/// A readable hash-chained log: dense 1-based sequence numbers anchored at
/// `h_0 = 0`.
///
/// Implementors guarantee `entries()[i].seq == i + 1`; the provided methods
/// rely on it.
pub trait LogSource: core::fmt::Debug {
    /// All entries, in sequence order.
    fn entries(&self) -> &[LogEntry];

    /// Number of entries.
    fn len(&self) -> usize {
        self.entries().len()
    }

    /// True when the log holds no entries.
    fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// The segment with sequence numbers in `[from_seq, to_seq]`, plus the
    /// hash of the entry preceding it (needed to verify the chain from the
    /// segment start).  Same contract as [`TamperEvidentLog::segment`].
    fn segment(&self, from_seq: u64, to_seq: u64) -> Option<(Digest, Vec<LogEntry>)> {
        if from_seq == 0 || from_seq > to_seq {
            return None;
        }
        let entries = self.entries();
        let start = usize::try_from(from_seq - 1).ok()?;
        let end = usize::try_from(to_seq).ok()?;
        if end > entries.len() {
            return None;
        }
        let prev_hash = if start == 0 {
            Digest::ZERO
        } else {
            entries[start - 1].hash
        };
        Some((prev_hash, entries[start..end].to_vec()))
    }
}

impl LogSource for TamperEvidentLog {
    fn entries(&self) -> &[LogEntry] {
        TamperEvidentLog::entries(self)
    }

    fn segment(&self, from_seq: u64, to_seq: u64) -> Option<(Digest, Vec<LogEntry>)> {
        TamperEvidentLog::segment(self, from_seq, to_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryKind;

    fn sample(n: u64) -> TamperEvidentLog {
        let mut log = TamperEvidentLog::new();
        for i in 0..n {
            log.append(EntryKind::Meta, vec![i as u8]);
        }
        log
    }

    #[test]
    fn trait_segment_matches_inherent_segment() {
        let log = sample(8);
        let src: &dyn LogSource = &log;
        assert_eq!(src.len(), 8);
        assert!(!src.is_empty());
        for (from, to) in [(1, 8), (1, 1), (3, 6), (8, 8)] {
            assert_eq!(src.segment(from, to), log.segment(from, to));
        }
        for (from, to) in [(0, 3), (5, 4), (5, 9)] {
            assert!(src.segment(from, to).is_none());
            assert!(log.segment(from, to).is_none());
        }
    }

    #[test]
    fn default_segment_impl_is_correct() {
        // A minimal implementor that only provides `entries`, exercising the
        // default `segment` body rather than the inherent override.
        #[derive(Debug)]
        struct Plain(Vec<LogEntry>);
        impl LogSource for Plain {
            fn entries(&self) -> &[LogEntry] {
                &self.0
            }
        }
        let log = sample(6);
        let plain = Plain(log.entries().to_vec());
        for (from, to) in [(1, 6), (2, 5), (1, 1), (6, 6), (0, 2), (4, 3), (3, 7)] {
            assert_eq!(plain.segment(from, to), log.segment(from, to));
        }
    }
}
