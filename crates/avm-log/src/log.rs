//! The append-only tamper-evident log.

use avm_crypto::keys::SigningKey;
use avm_crypto::sha256::Digest;
use avm_wire::{Decode, Encode, Reader, Writer};

use crate::auth::Authenticator;
use crate::entry::{EntryKind, LogEntry};
use crate::verify::LogVerifyError;

/// An append-only hash-chained log owned by one machine.
#[derive(Debug, Clone, Default)]
pub struct TamperEvidentLog {
    entries: Vec<LogEntry>,
}

impl TamperEvidentLog {
    /// Creates an empty log (the chain anchor is `h_0 := 0`).
    pub fn new() -> TamperEvidentLog {
        TamperEvidentLog::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry has been appended.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sequence number the next appended entry will get (1-based).
    pub fn next_seq(&self) -> u64 {
        self.entries.last().map_or(1, |e| e.seq + 1)
    }

    /// Hash of the last entry (`h_0 = 0` for an empty log).
    pub fn last_hash(&self) -> Digest {
        self.entries.last().map_or(Digest::ZERO, |e| e.hash)
    }

    /// Hash of the entry *before* the last one (used when building
    /// authenticators, which carry `h_{i-1}`).
    pub fn prev_hash(&self) -> Digest {
        if self.entries.len() >= 2 {
            self.entries[self.entries.len() - 2].hash
        } else {
            Digest::ZERO
        }
    }

    /// Appends an entry of `kind` with `content`; returns a reference to it.
    pub fn append(&mut self, kind: EntryKind, content: Vec<u8>) -> &LogEntry {
        let entry = LogEntry::chained(&self.last_hash(), self.next_seq(), kind, content);
        self.entries.push(entry);
        self.entries.last().expect("just pushed")
    }

    /// Appends an entry and immediately produces an authenticator for it.
    pub fn append_authenticated(
        &mut self,
        kind: EntryKind,
        content: Vec<u8>,
        key: &SigningKey,
    ) -> (LogEntry, Authenticator) {
        let prev = self.last_hash();
        let entry = LogEntry::chained(&prev, self.next_seq(), kind, content);
        let auth = Authenticator::create(key, &entry, prev);
        self.entries.push(entry.clone());
        (entry, auth)
    }

    /// Produces an authenticator for the most recent entry.
    pub fn authenticate_last(&self, key: &SigningKey) -> Option<Authenticator> {
        let entry = self.entries.last()?;
        Some(Authenticator::create(key, entry, self.prev_hash()))
    }

    /// All entries.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Entries whose *sequence numbers* fall in `range`, borrowed rather
    /// than cloned (sequence numbers are 1-based; indices are not).
    ///
    /// Out-of-range bounds are clamped, so `log.entries_range(5..)` on a
    /// three-entry log is simply empty.
    ///
    /// ```
    /// use avm_log::{EntryKind, TamperEvidentLog};
    /// let mut log = TamperEvidentLog::new();
    /// for i in 0..5u8 {
    ///     log.append(EntryKind::Meta, vec![i]);
    /// }
    /// let mid = log.entries_range(2..=4);
    /// assert_eq!(mid.len(), 3);
    /// assert_eq!(mid[0].seq, 2);
    /// assert_eq!(log.entries_range(..), log.entries());
    /// ```
    pub fn entries_range<R: core::ops::RangeBounds<u64>>(&self, range: R) -> &[LogEntry] {
        use core::ops::Bound;
        let len = self.entries.len() as u64;
        let start_seq = match range.start_bound() {
            Bound::Included(&s) => s.max(1),
            Bound::Excluded(&s) => s.saturating_add(1).max(1),
            Bound::Unbounded => 1,
        };
        let end_seq_excl = match range.end_bound() {
            Bound::Included(&e) => e.saturating_add(1),
            Bound::Excluded(&e) => e,
            Bound::Unbounded => u64::MAX,
        };
        let start = (start_seq - 1).min(len);
        let end = end_seq_excl.saturating_sub(1).min(len).max(start);
        &self.entries[start as usize..end as usize]
    }

    /// Rebuilds a log from entries recovered elsewhere (e.g. persisted
    /// segment files), verifying that they form a dense 1-based chain from
    /// the anchor `h_0 = 0`.
    pub fn from_entries(entries: Vec<LogEntry>) -> Result<TamperEvidentLog, LogVerifyError> {
        let mut prev = Digest::ZERO;
        for (i, e) in entries.iter().enumerate() {
            let expected = i as u64 + 1;
            if e.seq != expected {
                return Err(LogVerifyError::BadSequence {
                    expected,
                    found: e.seq,
                });
            }
            if !e.verify_against(&prev) {
                return Err(LogVerifyError::BrokenChain { seq: e.seq });
            }
            prev = e.hash;
        }
        Ok(TamperEvidentLog { entries })
    }

    /// Returns the entry with sequence number `seq`.
    pub fn entry(&self, seq: u64) -> Option<&LogEntry> {
        // Sequence numbers are dense and 1-based.
        let idx = seq.checked_sub(1)? as usize;
        self.entries.get(idx)
    }

    /// Returns the log segment with sequence numbers in `[from_seq, to_seq]`,
    /// together with the hash of the entry preceding the segment (needed to
    /// verify the chain from the segment start).
    pub fn segment(&self, from_seq: u64, to_seq: u64) -> Option<(Digest, Vec<LogEntry>)> {
        if from_seq == 0 || from_seq > to_seq {
            return None;
        }
        let first = self.entry(from_seq)?;
        self.entry(to_seq)?;
        let prev_hash = if from_seq == 1 {
            Digest::ZERO
        } else {
            self.entry(from_seq - 1)?.hash
        };
        let start = (first.seq - 1) as usize;
        let end = to_seq as usize;
        Some((prev_hash, self.entries[start..end].to_vec()))
    }

    /// Total wire size of all entries, in bytes (log-growth accounting).
    pub fn total_wire_size(&self) -> u64 {
        self.entries.iter().map(|e| e.wire_size() as u64).sum()
    }

    /// Serializes the whole log.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_varint(self.entries.len() as u64);
        for e in &self.entries {
            e.encode(&mut w);
        }
        w.into_bytes()
    }

    /// Deserializes a log produced by [`TamperEvidentLog::to_bytes`].
    ///
    /// The chain is *not* verified here; auditors use
    /// [`crate::verify::verify_segment`] for that.
    pub fn from_bytes(bytes: &[u8]) -> Result<TamperEvidentLog, avm_wire::WireError> {
        let mut r = Reader::new(bytes);
        let n = r.get_varint()?;
        let mut entries = Vec::with_capacity((n as usize).min(1 << 20));
        for _ in 0..n {
            entries.push(LogEntry::decode(&mut r)?);
        }
        if !r.is_empty() {
            return Err(avm_wire::WireError::TrailingBytes(r.remaining()));
        }
        Ok(TamperEvidentLog { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_crypto::keys::SignatureScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> SigningKey {
        let mut rng = StdRng::seed_from_u64(7);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    fn sample_log(n: u64) -> TamperEvidentLog {
        let mut log = TamperEvidentLog::new();
        for i in 0..n {
            let kind = match i % 3 {
                0 => EntryKind::Send,
                1 => EntryKind::Recv,
                _ => EntryKind::NdEvent,
            };
            log.append(kind, format!("entry-{i}").into_bytes());
        }
        log
    }

    #[test]
    fn empty_log_properties() {
        let log = TamperEvidentLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.next_seq(), 1);
        assert_eq!(log.last_hash(), Digest::ZERO);
        assert_eq!(log.prev_hash(), Digest::ZERO);
        assert!(log.entry(1).is_none());
    }

    #[test]
    fn append_builds_a_valid_chain() {
        let log = sample_log(10);
        assert_eq!(log.len(), 10);
        let mut prev = Digest::ZERO;
        for (i, e) in log.entries().iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1);
            assert!(e.verify_against(&prev));
            prev = e.hash;
        }
    }

    #[test]
    fn entry_lookup_by_seq() {
        let log = sample_log(5);
        assert_eq!(log.entry(1).unwrap().seq, 1);
        assert_eq!(log.entry(5).unwrap().seq, 5);
        assert!(log.entry(0).is_none());
        assert!(log.entry(6).is_none());
    }

    #[test]
    fn segment_extraction_includes_prev_hash() {
        let log = sample_log(10);
        let (prev, seg) = log.segment(4, 7).unwrap();
        assert_eq!(prev, log.entry(3).unwrap().hash);
        assert_eq!(seg.len(), 4);
        assert_eq!(seg[0].seq, 4);
        assert_eq!(seg[3].seq, 7);

        let (prev, seg) = log.segment(1, 10).unwrap();
        assert_eq!(prev, Digest::ZERO);
        assert_eq!(seg.len(), 10);

        assert!(log.segment(0, 3).is_none());
        assert!(log.segment(5, 4).is_none());
        assert!(log.segment(5, 11).is_none());
    }

    #[test]
    fn authenticated_append_commits_to_entry() {
        let k = key();
        let mut log = TamperEvidentLog::new();
        log.append(EntryKind::Meta, b"prologue".to_vec());
        let (entry, auth) = log.append_authenticated(EntryKind::Send, b"msg".to_vec(), &k);
        assert_eq!(entry.seq, 2);
        auth.verify_signature(&k.verifying_key()).unwrap();
        assert!(auth.commits_to(EntryKind::Send, b"msg"));
        assert_eq!(auth.prev_hash, log.entry(1).unwrap().hash);

        let last_auth = log.authenticate_last(&k).unwrap();
        assert_eq!(last_auth, auth);
    }

    #[test]
    fn serialization_roundtrip() {
        let log = sample_log(25);
        let bytes = log.to_bytes();
        let restored = TamperEvidentLog::from_bytes(&bytes).unwrap();
        assert_eq!(restored.entries(), log.entries());
        assert!(TamperEvidentLog::from_bytes(&bytes[..bytes.len() - 2]).is_err());
        assert!(log.total_wire_size() > 0);
    }

    #[test]
    fn authenticate_last_on_empty_log_is_none() {
        let log = TamperEvidentLog::new();
        assert!(log.authenticate_last(&key()).is_none());
    }

    #[test]
    fn entries_range_selects_by_sequence_number() {
        let log = sample_log(10);
        let mid = log.entries_range(3..=5);
        assert_eq!(mid.len(), 3);
        assert_eq!(mid[0].seq, 3);
        assert_eq!(mid[2].seq, 5);
        assert_eq!(log.entries_range(..), log.entries());
        assert_eq!(log.entries_range(8..).len(), 3);
        assert_eq!(log.entries_range(11..), &[]);
        assert_eq!(log.entries_range(..1), &[]);
        assert_eq!(log.entries_range(4..4), &[]);
        assert_eq!(log.entries_range(0..3).len(), 2); // clamps to seq 1
        assert!(TamperEvidentLog::new().entries_range(..).is_empty());
    }

    #[test]
    fn from_entries_verifies_the_chain() {
        let log = sample_log(6);
        let rebuilt = TamperEvidentLog::from_entries(log.entries().to_vec()).unwrap();
        assert_eq!(rebuilt.entries(), log.entries());
        assert!(TamperEvidentLog::from_entries(Vec::new())
            .unwrap()
            .is_empty());

        // A gap in the sequence numbers is rejected.
        let mut gapped = log.entries().to_vec();
        gapped.remove(2);
        assert!(matches!(
            TamperEvidentLog::from_entries(gapped),
            Err(LogVerifyError::BadSequence { expected: 3, .. })
        ));

        // A rewritten entry breaks the chain.
        let mut tampered = log.entries().to_vec();
        tampered[3].content = b"rewritten".to_vec();
        assert!(matches!(
            TamperEvidentLog::from_entries(tampered),
            Err(LogVerifyError::BrokenChain { seq: 4 })
        ));
    }
}
