//! Syntactic verification of log segments against authenticators.
//!
//! This is the first half of an audit (paper §4.5): before replaying
//! anything, the auditor checks that the log segment it downloaded is
//! *genuine* — the hash chain is intact, the sequence numbers are dense, and
//! every authenticator the auditor has previously collected matches the
//! corresponding entry.  A machine that has tampered with, reordered, or
//! forked its log cannot pass this check.

use avm_crypto::keys::VerifyingKey;
use avm_crypto::sha256::Digest;

use crate::auth::Authenticator;
use crate::entry::LogEntry;

/// Reasons a log segment fails syntactic verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogVerifyError {
    /// The segment is empty.
    EmptySegment,
    /// Sequence numbers are not dense and increasing.
    BadSequence {
        /// Sequence number that was expected.
        expected: u64,
        /// Sequence number that was found.
        found: u64,
    },
    /// An entry's hash does not extend the chain correctly (tampering).
    BrokenChain {
        /// Sequence number of the offending entry.
        seq: u64,
    },
    /// An authenticator's signature is invalid.
    BadAuthenticatorSignature {
        /// Sequence number the authenticator claims to commit to.
        seq: u64,
    },
    /// An authenticator refers to a sequence number outside the segment.
    AuthenticatorOutOfRange {
        /// Sequence number the authenticator refers to.
        seq: u64,
        /// First sequence number in the segment.
        first: u64,
        /// Last sequence number in the segment.
        last: u64,
    },
    /// An authenticator does not match the entry with the same sequence
    /// number — the machine forked or rewrote its log.
    AuthenticatorMismatch {
        /// Sequence number at which the mismatch was detected.
        seq: u64,
    },
}

impl core::fmt::Display for LogVerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LogVerifyError::EmptySegment => write!(f, "empty log segment"),
            LogVerifyError::BadSequence { expected, found } => {
                write!(f, "bad sequence number: expected {expected}, found {found}")
            }
            LogVerifyError::BrokenChain { seq } => {
                write!(f, "hash chain broken at sequence {seq}")
            }
            LogVerifyError::BadAuthenticatorSignature { seq } => {
                write!(f, "invalid authenticator signature for sequence {seq}")
            }
            LogVerifyError::AuthenticatorOutOfRange { seq, first, last } => {
                write!(
                    f,
                    "authenticator for sequence {seq} outside segment [{first}, {last}]"
                )
            }
            LogVerifyError::AuthenticatorMismatch { seq } => {
                write!(
                    f,
                    "authenticator does not match log entry at sequence {seq}"
                )
            }
        }
    }
}

impl std::error::Error for LogVerifyError {}

/// Summary of a successfully verified segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSummary {
    /// First sequence number in the segment.
    pub first_seq: u64,
    /// Last sequence number in the segment.
    pub last_seq: u64,
    /// Hash of the final entry (the new chain head).
    pub final_hash: Digest,
    /// Number of authenticators that were checked against the segment.
    pub authenticators_checked: usize,
}

/// Verifies a log segment.
///
/// * `prev_hash` — hash of the entry immediately before the segment
///   (`h_0 = 0` when the segment starts the log).
/// * `segment` — the entries, in order.
/// * `authenticators` — authenticators previously collected from the audited
///   machine; each must carry a valid signature under `machine_key` and must
///   match the entry with the same sequence number.
pub fn verify_segment(
    prev_hash: &Digest,
    segment: &[LogEntry],
    authenticators: &[Authenticator],
    machine_key: &VerifyingKey,
) -> Result<SegmentSummary, LogVerifyError> {
    let first = segment.first().ok_or(LogVerifyError::EmptySegment)?;
    let last = segment.last().expect("non-empty");

    // 1. Dense sequence numbers and intact hash chain.
    let mut prev = *prev_hash;
    for (expected_seq, entry) in (first.seq..).zip(segment.iter()) {
        if entry.seq != expected_seq {
            return Err(LogVerifyError::BadSequence {
                expected: expected_seq,
                found: entry.seq,
            });
        }
        if !entry.verify_against(&prev) {
            return Err(LogVerifyError::BrokenChain { seq: entry.seq });
        }
        prev = entry.hash;
    }

    // 2. Every collected authenticator matches the corresponding entry.
    for auth in authenticators {
        auth.verify_signature(machine_key)
            .map_err(|_| LogVerifyError::BadAuthenticatorSignature { seq: auth.seq })?;
        if auth.seq < first.seq || auth.seq > last.seq {
            return Err(LogVerifyError::AuthenticatorOutOfRange {
                seq: auth.seq,
                first: first.seq,
                last: last.seq,
            });
        }
        let idx = (auth.seq - first.seq) as usize;
        let entry = &segment[idx];
        let entry_prev = if idx == 0 {
            *prev_hash
        } else {
            segment[idx - 1].hash
        };
        if entry.hash != auth.hash || entry_prev != auth.prev_hash {
            return Err(LogVerifyError::AuthenticatorMismatch { seq: auth.seq });
        }
    }

    Ok(SegmentSummary {
        first_seq: first.seq,
        last_seq: last.seq,
        final_hash: last.hash,
        authenticators_checked: authenticators.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryKind;
    use crate::log::TamperEvidentLog;
    use avm_crypto::keys::{SignatureScheme, SigningKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> SigningKey {
        let mut rng = StdRng::seed_from_u64(11);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    fn build(n: u64, k: &SigningKey) -> (TamperEvidentLog, Vec<Authenticator>) {
        let mut log = TamperEvidentLog::new();
        let mut auths = Vec::new();
        for i in 0..n {
            let (_, auth) =
                log.append_authenticated(EntryKind::Send, format!("m{i}").into_bytes(), k);
            auths.push(auth);
        }
        (log, auths)
    }

    #[test]
    fn honest_log_verifies() {
        let k = key();
        let (log, auths) = build(12, &k);
        let (prev, seg) = log.segment(1, 12).unwrap();
        let summary = verify_segment(&prev, &seg, &auths, &k.verifying_key()).unwrap();
        assert_eq!(summary.first_seq, 1);
        assert_eq!(summary.last_seq, 12);
        assert_eq!(summary.final_hash, log.last_hash());
        assert_eq!(summary.authenticators_checked, 12);
    }

    #[test]
    fn partial_segment_verifies_with_matching_authenticators() {
        let k = key();
        let (log, auths) = build(20, &k);
        let (prev, seg) = log.segment(5, 15).unwrap();
        let subset: Vec<_> = auths
            .iter()
            .filter(|a| a.seq >= 5 && a.seq <= 15)
            .cloned()
            .collect();
        verify_segment(&prev, &seg, &subset, &k.verifying_key()).unwrap();
    }

    #[test]
    fn empty_segment_rejected() {
        let k = key();
        assert_eq!(
            verify_segment(&Digest::ZERO, &[], &[], &k.verifying_key()).unwrap_err(),
            LogVerifyError::EmptySegment
        );
    }

    #[test]
    fn tampered_content_detected() {
        let k = key();
        let (log, auths) = build(8, &k);
        let (prev, mut seg) = log.segment(1, 8).unwrap();
        seg[3].content = b"forged".to_vec();
        assert_eq!(
            verify_segment(&prev, &seg, &auths, &k.verifying_key()).unwrap_err(),
            LogVerifyError::BrokenChain { seq: 4 }
        );
    }

    #[test]
    fn dropped_entry_detected() {
        let k = key();
        let (log, _) = build(8, &k);
        let (prev, mut seg) = log.segment(1, 8).unwrap();
        seg.remove(3);
        let err = verify_segment(&prev, &seg, &[], &k.verifying_key()).unwrap_err();
        assert_eq!(
            err,
            LogVerifyError::BadSequence {
                expected: 4,
                found: 5
            }
        );
    }

    #[test]
    fn forked_log_detected_by_authenticator_mismatch() {
        let k = key();
        // The machine hands out authenticators for one history ...
        let (_, auths) = build(6, &k);
        // ... but later presents a different log with the same seq numbers.
        let mut other = TamperEvidentLog::new();
        for i in 0..6u64 {
            other.append(EntryKind::Send, format!("rewritten-{i}").into_bytes());
        }
        let (prev, seg) = other.segment(1, 6).unwrap();
        let err = verify_segment(&prev, &seg, &auths, &k.verifying_key()).unwrap_err();
        assert!(matches!(err, LogVerifyError::AuthenticatorMismatch { .. }));
    }

    #[test]
    fn authenticator_with_bad_signature_detected() {
        let k = key();
        let (log, mut auths) = build(4, &k);
        auths[2].signature[5] ^= 0xff;
        let (prev, seg) = log.segment(1, 4).unwrap();
        assert_eq!(
            verify_segment(&prev, &seg, &auths, &k.verifying_key()).unwrap_err(),
            LogVerifyError::BadAuthenticatorSignature { seq: 3 }
        );
    }

    #[test]
    fn authenticator_outside_segment_detected() {
        let k = key();
        let (log, auths) = build(10, &k);
        let (prev, seg) = log.segment(1, 5).unwrap();
        let err = verify_segment(&prev, &seg, &auths, &k.verifying_key()).unwrap_err();
        assert!(matches!(
            err,
            LogVerifyError::AuthenticatorOutOfRange { .. }
        ));
    }

    #[test]
    fn wrong_machine_key_detected() {
        let k = key();
        let mut rng = StdRng::seed_from_u64(999);
        let other = SigningKey::generate(&mut rng, SignatureScheme::Rsa(512));
        let (log, auths) = build(4, &k);
        let (prev, seg) = log.segment(1, 4).unwrap();
        assert!(verify_segment(&prev, &seg, &auths, &other.verifying_key()).is_err());
    }
}
