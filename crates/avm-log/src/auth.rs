//! Authenticators and acknowledgments.

use avm_crypto::keys::{KeyError, SigningKey, VerifyingKey};
use avm_crypto::sha256::{sha256, Digest};
use avm_wire::{Decode, Encode, Reader, WireError, WireResult, Writer};

use crate::entry::{chain_hash, EntryKind, LogEntry};

/// An authenticator `a_i = (s_i, h_i, σ(s_i || h_i))`, the signed commitment
/// to a log prefix that the AVMM attaches to every outgoing message
/// (paper §4.3).
///
/// `prev_hash` (`h_{i-1}`) is included so the recipient can recompute
/// `h_i = H(h_{i-1} || s_i || SEND || H(m))` and thereby verify that entry
/// `e_i` really is `SEND(m)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Authenticator {
    /// Sequence number `s_i` of the committed entry.
    pub seq: u64,
    /// Chained hash `h_i` of the committed entry.
    pub hash: Digest,
    /// `h_{i-1}`, allowing the recipient to recompute `h_i` for the message.
    pub prev_hash: Digest,
    /// Signature over `s_i || h_i` with the machine's private key.
    pub signature: Vec<u8>,
}

impl Authenticator {
    /// Bytes covered by the authenticator signature.
    pub fn signed_payload(seq: u64, hash: &Digest) -> Vec<u8> {
        let mut payload = Vec::with_capacity(8 + 32 + 16);
        payload.extend_from_slice(b"avm-authenticator");
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(hash.as_bytes());
        payload
    }

    /// Creates an authenticator for `entry`, whose predecessor hash is `prev_hash`.
    pub fn create(key: &SigningKey, entry: &LogEntry, prev_hash: Digest) -> Authenticator {
        let signature = key.sign(&Self::signed_payload(entry.seq, &entry.hash));
        Authenticator {
            seq: entry.seq,
            hash: entry.hash,
            prev_hash,
            signature,
        }
    }

    /// Verifies the signature under `key`.
    pub fn verify_signature(&self, key: &VerifyingKey) -> Result<(), KeyError> {
        key.verify(&Self::signed_payload(self.seq, &self.hash), &self.signature)
    }

    /// Checks that this authenticator commits to an entry of `kind` whose
    /// content is `content` — i.e. recomputes
    /// `h_i = H(h_{i-1} || s_i || t_i || H(c_i))` and compares.
    pub fn commits_to(&self, kind: EntryKind, content: &[u8]) -> bool {
        chain_hash(&self.prev_hash, self.seq, kind, content) == self.hash
    }
}

impl Encode for Authenticator {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.seq);
        w.put_raw(self.hash.as_bytes());
        w.put_raw(self.prev_hash.as_bytes());
        w.put_bytes(&self.signature);
    }
}

impl Decode for Authenticator {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let seq = r.get_varint()?;
        let hash = Digest::from_slice(r.get_raw(32)?).ok_or(WireError::Corrupt("digest"))?;
        let prev_hash = Digest::from_slice(r.get_raw(32)?).ok_or(WireError::Corrupt("digest"))?;
        let signature = r.get_bytes()?.to_vec();
        Ok(Authenticator {
            seq,
            hash,
            prev_hash,
            signature,
        })
    }
}

/// An acknowledgment for a received message.
///
/// When the AVMM receives a message it logs `RECV(m)` and returns an
/// acknowledgment carrying the authenticator for that entry; a user such as
/// Alice acknowledges with "just a signed hash of the corresponding message"
/// (paper §4.3).  Both forms are represented here: `authenticator` is present
/// for AVMM-side acks and absent for plain user acks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acknowledgment {
    /// Hash of the acknowledged message.
    pub message_hash: Digest,
    /// Authenticator for the receiver's RECV entry (AVMM-side acks).
    pub authenticator: Option<Authenticator>,
    /// Signature over the message hash (user-side acks, or additional
    /// binding for AVMM acks).
    pub signature: Vec<u8>,
}

impl Acknowledgment {
    /// Bytes covered by the acknowledgment signature.
    fn signed_payload(message_hash: &Digest) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32 + 8);
        payload.extend_from_slice(b"avm-ack");
        payload.extend_from_slice(message_hash.as_bytes());
        payload
    }

    /// Creates a user-side acknowledgment (signed message hash only).
    pub fn user_ack(key: &SigningKey, message: &[u8]) -> Acknowledgment {
        let message_hash = sha256(message);
        Acknowledgment {
            message_hash,
            authenticator: None,
            signature: key.sign(&Self::signed_payload(&message_hash)),
        }
    }

    /// Creates an AVMM-side acknowledgment carrying the RECV authenticator.
    pub fn avmm_ack(key: &SigningKey, message: &[u8], recv_auth: Authenticator) -> Acknowledgment {
        let message_hash = sha256(message);
        Acknowledgment {
            message_hash,
            authenticator: Some(recv_auth),
            signature: key.sign(&Self::signed_payload(&message_hash)),
        }
    }

    /// Verifies the acknowledgment against the acknowledged message and the
    /// receiver's key.
    ///
    /// The attached authenticator (if any) is checked for a valid signature;
    /// use [`Acknowledgment::verify_with_recv_content`] to additionally check
    /// that it commits to a specific RECV entry content.
    pub fn verify(&self, key: &VerifyingKey, message: &[u8]) -> Result<(), KeyError> {
        if sha256(message) != self.message_hash {
            return Err(KeyError::BadSignature);
        }
        key.verify(&Self::signed_payload(&self.message_hash), &self.signature)?;
        if let Some(auth) = &self.authenticator {
            auth.verify_signature(key)?;
        }
        Ok(())
    }

    /// Verifies the acknowledgment *and* that its authenticator commits to a
    /// RECV entry with exactly `recv_entry_content` as its content `c_i`
    /// (the receiver's log format determines those bytes; for the AVMM they
    /// are the encoded `RecvRecord`).
    pub fn verify_with_recv_content(
        &self,
        key: &VerifyingKey,
        message: &[u8],
        recv_entry_content: &[u8],
    ) -> Result<(), KeyError> {
        self.verify(key, message)?;
        match &self.authenticator {
            Some(auth) if auth.commits_to(EntryKind::Recv, recv_entry_content) => Ok(()),
            _ => Err(KeyError::BadSignature),
        }
    }
}

impl Encode for Acknowledgment {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self.message_hash.as_bytes());
        self.authenticator.encode(w);
        w.put_bytes(&self.signature);
    }
}

impl Decode for Acknowledgment {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let message_hash =
            Digest::from_slice(r.get_raw(32)?).ok_or(WireError::Corrupt("digest"))?;
        let authenticator = Option::<Authenticator>::decode(r)?;
        let signature = r.get_bytes()?.to_vec();
        Ok(Acknowledgment {
            message_hash,
            authenticator,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_crypto::keys::SignatureScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> SigningKey {
        let mut rng = StdRng::seed_from_u64(77);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    #[test]
    fn authenticator_signature_verifies() {
        let k = key();
        let entry = LogEntry::chained(&Digest::ZERO, 3, EntryKind::Send, b"m".to_vec());
        let auth = Authenticator::create(&k, &entry, Digest::ZERO);
        auth.verify_signature(&k.verifying_key()).unwrap();
        assert!(auth.commits_to(EntryKind::Send, b"m"));
        assert!(!auth.commits_to(EntryKind::Send, b"other"));
        assert!(!auth.commits_to(EntryKind::Recv, b"m"));
    }

    #[test]
    fn forged_authenticator_rejected() {
        let k = key();
        let entry = LogEntry::chained(&Digest::ZERO, 3, EntryKind::Send, b"m".to_vec());
        let mut auth = Authenticator::create(&k, &entry, Digest::ZERO);
        auth.seq = 4;
        assert!(auth.verify_signature(&k.verifying_key()).is_err());
    }

    #[test]
    fn authenticator_wire_roundtrip() {
        let k = key();
        let entry = LogEntry::chained(&Digest::ZERO, 9, EntryKind::Send, b"payload".to_vec());
        let auth = Authenticator::create(&k, &entry, Digest::ZERO);
        let bytes = auth.encode_to_vec();
        assert_eq!(Authenticator::decode_exact(&bytes).unwrap(), auth);
    }

    #[test]
    fn user_ack_verifies() {
        let k = key();
        let ack = Acknowledgment::user_ack(&k, b"the message");
        ack.verify(&k.verifying_key(), b"the message").unwrap();
        assert!(ack.verify(&k.verifying_key(), b"another message").is_err());
    }

    #[test]
    fn avmm_ack_requires_matching_recv_entry() {
        let k = key();
        let recv_entry = LogEntry::chained(&Digest::ZERO, 5, EntryKind::Recv, b"msg".to_vec());
        let auth = Authenticator::create(&k, &recv_entry, Digest::ZERO);
        let ack = Acknowledgment::avmm_ack(&k, b"msg", auth.clone());
        ack.verify(&k.verifying_key(), b"msg").unwrap();
        ack.verify_with_recv_content(&k.verifying_key(), b"msg", b"msg")
            .unwrap();

        // An ack whose authenticator commits to different entry content is
        // rejected by the strong check.
        let bad_ack = Acknowledgment::avmm_ack(&k, b"other", auth);
        assert!(bad_ack
            .verify_with_recv_content(&k.verifying_key(), b"other", b"other")
            .is_err());
        // A user ack (no authenticator) also fails the strong check.
        let user = Acknowledgment::user_ack(&k, b"m");
        assert!(user
            .verify_with_recv_content(&k.verifying_key(), b"m", b"m")
            .is_err());
    }

    #[test]
    fn ack_wire_roundtrip() {
        let k = key();
        let recv_entry = LogEntry::chained(&Digest::ZERO, 5, EntryKind::Recv, b"msg".to_vec());
        let auth = Authenticator::create(&k, &recv_entry, Digest::ZERO);
        for ack in [
            Acknowledgment::user_ack(&k, b"m"),
            Acknowledgment::avmm_ack(&k, b"msg", auth),
        ] {
            let bytes = ack.encode_to_vec();
            assert_eq!(Acknowledgment::decode_exact(&bytes).unwrap(), ack);
        }
    }
}
