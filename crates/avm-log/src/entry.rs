//! Log entries and the hash chain.

use avm_crypto::sha256::{sha256, sha256_concat, Digest};
use avm_wire::{Decode, Encode, Reader, WireError, WireResult, Writer};

/// The type tag `t_i` of a log entry.
///
/// The first three variants are the message-exchange stream; the remaining
/// ones are the execution-trace stream the AVMM adds (paper §4.4: "the
/// tamper-evident log now contains two parallel streams of information").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// An outgoing network message.
    Send,
    /// An incoming network message (logged together with the sender's signature).
    Recv,
    /// An acknowledgment for a message we received.
    Ack,
    /// A nondeterministic input delivered to the AVM (clock read, packet
    /// injection, local input), stamped with its position in the instruction
    /// stream.  These are the paper's `TimeTracker`/MAC-layer entries.
    NdEvent,
    /// A snapshot record: the top-level hash of the AVM state.
    Snapshot,
    /// Administrative records (image digest, configuration, epoch markers).
    Meta,
}

impl EntryKind {
    /// Stable numeric tag used in the hash computation and on the wire.
    pub fn tag(&self) -> u8 {
        match self {
            EntryKind::Send => 1,
            EntryKind::Recv => 2,
            EntryKind::Ack => 3,
            EntryKind::NdEvent => 4,
            EntryKind::Snapshot => 5,
            EntryKind::Meta => 6,
        }
    }

    /// Inverse of [`EntryKind::tag`].
    pub fn from_tag(tag: u8) -> Option<EntryKind> {
        Some(match tag {
            1 => EntryKind::Send,
            2 => EntryKind::Recv,
            3 => EntryKind::Ack,
            4 => EntryKind::NdEvent,
            5 => EntryKind::Snapshot,
            6 => EntryKind::Meta,
            _ => return None,
        })
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            EntryKind::Send => "SEND",
            EntryKind::Recv => "RECV",
            EntryKind::Ack => "ACK",
            EntryKind::NdEvent => "NDEVENT",
            EntryKind::Snapshot => "SNAPSHOT",
            EntryKind::Meta => "META",
        }
    }
}

/// One log entry `e_i = (s_i, t_i, c_i, h_i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Monotonically increasing sequence number `s_i`.
    pub seq: u64,
    /// Entry type `t_i`.
    pub kind: EntryKind,
    /// Entry content `c_i`.
    pub content: Vec<u8>,
    /// Chained hash `h_i`.
    pub hash: Digest,
}

/// Computes `h_i = H(h_{i-1} || s_i || t_i || H(c_i))` (paper §4.3).
pub fn chain_hash(prev: &Digest, seq: u64, kind: EntryKind, content: &[u8]) -> Digest {
    let content_hash = sha256(content);
    sha256_concat(&[
        prev.as_bytes(),
        &seq.to_le_bytes(),
        &[kind.tag()],
        content_hash.as_bytes(),
    ])
}

impl LogEntry {
    /// Constructs the entry following `prev` in the chain.
    pub fn chained(prev: &Digest, seq: u64, kind: EntryKind, content: Vec<u8>) -> LogEntry {
        let hash = chain_hash(prev, seq, kind, &content);
        LogEntry {
            seq,
            kind,
            content,
            hash,
        }
    }

    /// Recomputes this entry's hash from `prev` and checks it matches.
    pub fn verify_against(&self, prev: &Digest) -> bool {
        chain_hash(prev, self.seq, self.kind, &self.content) == self.hash
    }

    /// Size of the entry on the wire, in bytes (used by the log-growth
    /// experiments).
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for LogEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.seq);
        w.put_u8(self.kind.tag());
        w.put_bytes(&self.content);
        w.put_raw(self.hash.as_bytes());
    }
}

impl Decode for LogEntry {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let seq = r.get_varint()?;
        let tag = r.get_u8()?;
        let kind = EntryKind::from_tag(tag).ok_or(WireError::InvalidTag {
            what: "EntryKind",
            tag: tag as u64,
        })?;
        let content = r.get_bytes()?.to_vec();
        let hash = Digest::from_slice(r.get_raw(32)?).ok_or(WireError::Corrupt("digest"))?;
        Ok(LogEntry {
            seq,
            kind,
            content,
            hash,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_through_tags() {
        for kind in [
            EntryKind::Send,
            EntryKind::Recv,
            EntryKind::Ack,
            EntryKind::NdEvent,
            EntryKind::Snapshot,
            EntryKind::Meta,
        ] {
            assert_eq!(EntryKind::from_tag(kind.tag()), Some(kind));
            assert!(!kind.label().is_empty());
        }
        assert_eq!(EntryKind::from_tag(0), None);
        assert_eq!(EntryKind::from_tag(99), None);
    }

    #[test]
    fn chain_hash_matches_definition() {
        let prev = Digest::ZERO;
        let content = b"hello".to_vec();
        let h = chain_hash(&prev, 7, EntryKind::Send, &content);
        let manual = sha256_concat(&[
            prev.as_bytes(),
            &7u64.to_le_bytes(),
            &[1u8],
            sha256(b"hello").as_bytes(),
        ]);
        assert_eq!(h, manual);
    }

    #[test]
    fn chained_entry_verifies_and_detects_tampering() {
        let prev = Digest::ZERO;
        let e = LogEntry::chained(&prev, 1, EntryKind::Recv, b"msg".to_vec());
        assert!(e.verify_against(&prev));

        let mut tampered = e.clone();
        tampered.content = b"other".to_vec();
        assert!(!tampered.verify_against(&prev));

        let mut reseq = e.clone();
        reseq.seq = 2;
        assert!(!reseq.verify_against(&prev));

        let mut rekind = e;
        rekind.kind = EntryKind::Send;
        assert!(!rekind.verify_against(&prev));
    }

    #[test]
    fn entry_wire_roundtrip() {
        let e = LogEntry::chained(&Digest::ZERO, 42, EntryKind::NdEvent, vec![1, 2, 3]);
        let bytes = e.encode_to_vec();
        assert_eq!(LogEntry::decode_exact(&bytes).unwrap(), e);
        assert_eq!(e.wire_size(), bytes.len());
    }

    #[test]
    fn invalid_kind_tag_rejected() {
        let e = LogEntry::chained(&Digest::ZERO, 1, EntryKind::Send, vec![]);
        let mut bytes = e.encode_to_vec();
        bytes[1] = 77; // corrupt the kind tag
        assert!(LogEntry::decode_exact(&bytes).is_err());
    }
}
