//! Criterion benchmarks backing the paper's evaluation.
//!
//! One benchmark group per table/figure; each group exercises the code path
//! that regenerates that result (at reduced scale, so `cargo bench` stays
//! tractable).  The full-scale numbers are produced by the `experiments`
//! binary and recorded in `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};

use avm_bench::experiments;
use avm_bench::hostmodel::HostCostModel;
use avm_bench::scenario::GameScenario;
use avm_compress::{compress, CompressionLevel};
use avm_core::config::ExecConfig;
use avm_crypto::keys::{SignatureScheme, SigningKey};
use avm_log::{EntryKind, TamperEvidentLog};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Figure 5 substrate: the per-packet signature generation / verification
/// that dominates the avmm-rsa768 ping time.
fn bench_fig5_signatures(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let key = SigningKey::generate(&mut rng, SignatureScheme::Rsa(768));
    let verifier = key.verifying_key();
    let payload = [0u8; 60];
    let sig = key.sign(&payload);
    let mut group = c.benchmark_group("fig5_ping_rtt");
    group.sample_size(10);
    group.bench_function("rsa768_sign_packet", |b| b.iter(|| key.sign(&payload)));
    group.bench_function("rsa768_verify_packet", |b| {
        b.iter(|| verifier.verify(&payload, &sig).unwrap())
    });
    group.finish();
}

/// Figures 3/4 substrate: tamper-evident log append and compression.
fn bench_fig3_fig4_logging(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig4_log_growth");
    group.sample_size(10);
    group.bench_function("append_1000_entries", |b| {
        b.iter(|| {
            let mut log = TamperEvidentLog::new();
            for i in 0..1000u64 {
                log.append(EntryKind::NdEvent, i.to_le_bytes().to_vec());
            }
            log.len()
        })
    });
    let mut log = TamperEvidentLog::new();
    for i in 0..5000u64 {
        log.append(EntryKind::NdEvent, (i * 37).to_le_bytes().to_vec());
    }
    let bytes = log.to_bytes();
    group.bench_function("compress_log", |b| {
        b.iter(|| compress(&bytes, CompressionLevel::Fast).len())
    });
    group.finish();
}

/// Table 1 / §6.3 substrate: record a short cheating session and audit it.
fn bench_table1_cheat_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_cheat_detection");
    group.sample_size(10);
    group.bench_function("record_and_audit_cheater", |b| {
        b.iter(|| {
            let r = experiments::exp_table1(true);
            assert_eq!(r.undetected, 0);
        })
    });
    group.finish();
}

/// Figure 7 substrate: a short game session in the fastest and the slowest
/// configuration.
fn bench_fig7_framerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_framerate");
    group.sample_size(10);
    for config in [ExecConfig::BareHw, ExecConfig::AvmmRsa768] {
        group.bench_function(config.label(), |b| {
            b.iter(|| {
                let mut s = GameScenario::standard(config, 200_000);
                s.rsa_bits = 512;
                s.steps_per_tick = 8_000;
                let result = s.run();
                result.frames_rendered(&result.players[1].clone())
            })
        });
    }
    group.finish();
}

/// §6.12 substrate: content-addressed snapshot storage.  `push_dedup_hit`
/// interns a full capture whose pages are already pooled (the steady-state
/// cost of a snapshot on an idle guest); `transfer_compress` measures the
/// compression-aware transfer model end to end.
fn bench_snapshot_dedup(c: &mut Criterion) {
    use avm_bench::experiments::{snapshot_image, snapshot_machine};
    use avm_core::snapshot::{capture_with_cache, SnapshotStore, StateTreeCache};

    let pages = 256usize;
    let mut group = c.benchmark_group("snapshot_dedup");
    group.sample_size(10);

    let mut machine = snapshot_machine(pages, 16);
    let mut cache = StateTreeCache::new();
    let mut store = SnapshotStore::new();
    let mut id = 0u64;
    store.push(capture_with_cache(&mut machine, &mut cache, id, true));
    group.bench_function(format!("push_dedup_hit_{pages}p"), |b| {
        b.iter(|| {
            id += 1;
            let snap = capture_with_cache(&mut machine, &mut cache, id, true);
            store.push(snap);
            store.stored_payload_bytes()
        })
    });

    let image = snapshot_image(pages, 16);
    let registry = avm_vm::GuestRegistry::new();
    group.bench_function(format!("materialize_pooled_{pages}p"), |b| {
        b.iter(|| {
            store
                .materialize(0, &image, &registry)
                .unwrap()
                .step_count()
        })
    });
    group.bench_function(format!("transfer_compress_{pages}p"), |b| {
        b.iter(|| {
            store
                .transfer_cost_upto(0, CompressionLevel::Fast)
                .compressed_bytes
        })
    });
    group.finish();
}

/// Figure 9 substrate: spot-checking the database workload.
fn bench_fig9_spotcheck(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_spotcheck");
    group.sample_size(10);
    group.bench_function("spotcheck_db_workload", |b| {
        b.iter(|| experiments::exp_spotcheck(true).len())
    });
    group.finish();
}

/// Networked audit endpoints: the same spot check over the direct
/// (RTT-modelled) transport and the simulated network, clean and lossy —
/// the `netaudit` experiment's full comparison as one benchmark body.
fn bench_netaudit(c: &mut Criterion) {
    let mut group = c.benchmark_group("netaudit");
    group.sample_size(10);
    group.bench_function("netaudit_transport_comparison", |b| {
        b.iter(|| experiments::exp_netaudit(true).measured_clean_us)
    });
    group.finish();
}

/// Figure 6 substrate: the incremental state-root pipeline versus a full
/// Merkle rebuild, plus the Montgomery RSA hot path versus the naive
/// baseline.  The acceptance bar: >=5x at 256+ pages with one dirty page,
/// and Montgomery sign/verify clearly ahead of `sign_digest_slow`.
fn bench_fig6_snapshot_incremental(c: &mut Criterion) {
    use avm_bench::experiments::snapshot_machine;
    use avm_core::snapshot::{build_state_tree_uncached, StateTreeCache};
    use avm_crypto::rsa::RsaKeyPair;
    use avm_crypto::sha256::sha256;
    use avm_vm::PAGE_SIZE;

    let mut group = c.benchmark_group("fig6_snapshot_incremental");
    group.sample_size(10);
    for &pages in &[256usize, 1024] {
        let mut machine = snapshot_machine(pages, 16);
        group.bench_function(format!("full_rebuild_{pages}p"), |b| {
            b.iter(|| build_state_tree_uncached(&machine).root())
        });
        let mut cache = StateTreeCache::new();
        cache.refresh(&machine);
        machine.memory_mut().clear_dirty();
        machine.devices_mut().disk.clear_dirty();
        let mut next = 0usize;
        group.bench_function(format!("incremental_1dirty_{pages}p"), |b| {
            b.iter(|| {
                let page = next % pages;
                next += 1;
                machine
                    .memory_mut()
                    .write_u8((page * PAGE_SIZE) as u64, next as u8)
                    .unwrap();
                let root = cache.refresh(&machine);
                machine.memory_mut().clear_dirty();
                machine.devices_mut().disk.clear_dirty();
                root
            })
        });
    }
    // RSA-768: CRT + Montgomery fixed-window versus the naive baseline.
    let mut rng = StdRng::seed_from_u64(768);
    let kp = RsaKeyPair::generate(&mut rng, 768);
    let digest = sha256(b"per-packet authenticator");
    assert_eq!(
        kp.private.sign_digest(&digest),
        kp.private.sign_digest_slow(&digest),
        "optimised signature must be bit-identical to the naive baseline"
    );
    group.bench_function("rsa768_sign_montgomery_crt", |b| {
        b.iter(|| kp.private.sign_digest(&digest))
    });
    group.bench_function("rsa768_sign_slow_baseline", |b| {
        b.iter(|| kp.private.sign_digest_slow(&digest))
    });
    let sig = kp.private.sign_digest(&digest);
    group.bench_function("rsa768_verify", |b| {
        b.iter(|| kp.public().verify_digest(&digest, &sig).unwrap())
    });
    group.finish();
}

/// The parallel chunk-hash stage: the scoped-thread worker pool versus a
/// serial hash loop over the same dirty-chunk batch, plus the end-to-end
/// `StateTreeCache::refresh` with a large dirty set (which routes its leaf
/// hashing through the pool).  On a multi-core runner the pool beats the
/// serial loop roughly by the worker count; on one core it ties.
fn bench_parallel_chunk_hashing(c: &mut Criterion) {
    use avm_bench::experiments::snapshot_machine;
    use avm_core::snapshot::StateTreeCache;
    use avm_crypto::parallel::sha256_batch;
    use avm_crypto::sha256::sha256;
    use avm_vm::{CHUNK_SIZE, PAGE_SIZE};

    let mut group = c.benchmark_group("parallel_chunk_hashing");
    group.sample_size(10);
    // 4096 chunks (2 MiB) of non-trivial data, the dirty set of a busy
    // large guest between two snapshots.
    let chunks: Vec<Vec<u8>> = (0..4096usize)
        .map(|i| {
            (0..CHUNK_SIZE)
                .map(|j| (i * 31 + j * 7) as u8)
                .collect::<Vec<u8>>()
        })
        .collect();
    let slices: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    let serial: Vec<_> = slices.iter().map(|s| sha256(s)).collect();
    assert_eq!(
        sha256_batch(&slices),
        serial,
        "worker pool must be bit-identical to serial hashing"
    );
    group.bench_function("serial_sha256_4096x512B", |b| {
        b.iter(|| slices.iter().map(|s| sha256(s)).collect::<Vec<_>>())
    });
    group.bench_function("worker_pool_sha256_4096x512B", |b| {
        b.iter(|| sha256_batch(&slices))
    });
    // End to end: a refresh with 512 dirty chunks on a 1024-page guest.
    let pages = 1024usize;
    let mut machine = snapshot_machine(pages, 16);
    let mut cache = StateTreeCache::new();
    cache.refresh(&machine);
    machine.clear_dirty_tracking();
    let mut round = 0u8;
    group.bench_function("refresh_512_dirty_chunks_1024p", |b| {
        b.iter(|| {
            round = round.wrapping_add(1);
            for p in 0..512usize {
                machine
                    .memory_mut()
                    .write_u8((p * PAGE_SIZE) as u64, round)
                    .unwrap();
            }
            let root = cache.refresh(&machine);
            machine.clear_dirty_tracking();
            root
        })
    });
    group.finish();
}

/// The raw-speed crypto floor, each optimised core against the reference it
/// replaced: multi-buffer SHA-256 versus the scalar loop on 512 B chunk
/// leaves, the 64-bit-limb Montgomery RSA-768 signer versus the retained
/// 32-bit-limb dispatch, and borrowed-slice audit-response decoding versus
/// the owned decode.  Every pair asserts bit-identity before timing.
fn bench_crypto_floor(c: &mut Criterion) {
    use avm_crypto::rsa::RsaKeyPair;
    use avm_crypto::sha256::{sha256, sha256_multi};
    use avm_vm::CHUNK_SIZE;
    use avm_wire::audit::seal_session_message;
    use avm_wire::{AuditResponse, AuditResponseRef, BlobResponse, Decode};

    let mut group = c.benchmark_group("crypto_floor");
    group.sample_size(10);

    // Multi-buffer SHA-256 on the Merkle leaf shape (512 B chunks).
    let chunks: Vec<Vec<u8>> = (0..4096usize)
        .map(|i| {
            (0..CHUNK_SIZE)
                .map(|j| (i * 131 + j * 11) as u8)
                .collect::<Vec<u8>>()
        })
        .collect();
    let slices: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
    let scalar: Vec<_> = slices.iter().map(|s| sha256(s)).collect();
    assert_eq!(
        sha256_multi(&slices),
        scalar,
        "multi-buffer lanes must be bit-identical to scalar SHA-256"
    );
    group.bench_function("sha256_scalar_4096x512B", |b| {
        b.iter(|| slices.iter().map(|s| sha256(s)).collect::<Vec<_>>())
    });
    group.bench_function("sha256_multibuffer_4096x512B", |b| {
        b.iter(|| sha256_multi(&slices))
    });

    // RSA-768 CRT signing: 64-bit limbs versus the 32-bit reference.
    let mut rng = StdRng::seed_from_u64(64);
    let kp = RsaKeyPair::generate(&mut rng, 768);
    let digest = sha256(b"crypto floor signer");
    assert_eq!(
        kp.private.sign_digest(&digest),
        kp.private.sign_digest_ref32(&digest),
        "64-bit Montgomery signature must be bit-identical to the 32-bit reference"
    );
    group.bench_function("rsa768_sign_montgomery64", |b| {
        b.iter(|| kp.private.sign_digest(&digest))
    });
    group.bench_function("rsa768_sign_montgomery32_ref", |b| {
        b.iter(|| kp.private.sign_digest_ref32(&digest))
    });

    // Zero-copy wire frames: peel a sealed 64-blob response with the
    // borrowed decoder versus the owned one.
    let response = AuditResponse::Blobs(BlobResponse {
        blobs: chunks[..64].iter().map(|c| Some(c.clone())).collect(),
    });
    let packet = seal_session_message(1, 7, &response);
    let body = &packet[..];
    let borrowed_body = {
        let (_, _, body) = avm_wire::open_session_frame(body).unwrap();
        body
    };
    assert_eq!(
        AuditResponseRef::decode_exact(borrowed_body)
            .unwrap()
            .to_owned(),
        AuditResponse::decode_exact(borrowed_body).unwrap(),
        "borrowed decode must agree with owned decode"
    );
    group.bench_function("audit_response_decode_owned_64x512B", |b| {
        b.iter(|| AuditResponse::decode_exact(borrowed_body).unwrap())
    });
    group.bench_function("audit_response_decode_borrowed_64x512B", |b| {
        b.iter(|| AuditResponseRef::decode_exact(borrowed_body).unwrap())
    });
    group.bench_function("seal_session_message_64x512B", |b| {
        b.iter(|| seal_session_message(1, 7, &response))
    });
    group.finish();
}

/// Durable-store substrate: `Provider::recover` — scan and chain-verify the
/// segment files, rebuild the snapshot store from persisted manifests,
/// replay the log tail with root verification — from the storage image a
/// short snapshot workload leaves behind.
fn bench_persist_recovery(c: &mut Criterion) {
    use avm_bench::experiments::persist_demo_storage;
    use avm_core::config::AvmmOptions;
    use avm_core::persist::Provider;

    let (storage, image, key, cfg) = persist_demo_storage(4);
    let registry = avm_vm::GuestRegistry::new();
    let options = AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512));
    let mut group = c.benchmark_group("persist");
    group.sample_size(10);
    group.bench_function("recover_4_snapshots", |b| {
        b.iter(|| {
            let (_, report) = Provider::recover(
                storage.reboot(),
                "host",
                &image,
                &registry,
                key.clone(),
                options.clone(),
                cfg,
            )
            .unwrap();
            assert!(report.snapshots_verified > 0);
            report.entries_recovered
        })
    });
    group.finish();
}

/// Figures 5/6/8 cost model: derived from measured crypto and the host model.
fn bench_fig568_host_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_fig6_fig8_host_model");
    group.sample_size(10);
    group.bench_function("calibrate_and_tabulate", |b| {
        b.iter(|| {
            let model = HostCostModel::calibrated();
            experiments::exp_ping_rtt(&model).len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig5_signatures,
    bench_fig3_fig4_logging,
    bench_table1_cheat_detection,
    bench_fig7_framerate,
    bench_fig6_snapshot_incremental,
    bench_parallel_chunk_hashing,
    bench_crypto_floor,
    bench_snapshot_dedup,
    bench_fig9_spotcheck,
    bench_netaudit,
    bench_persist_recovery,
    bench_fig568_host_model
);
criterion_main!(benches);
