//! Host CPU cost model.
//!
//! Figures 5–8 of the paper report host-side performance (ping RTT, CPU
//! utilisation, frame rate) of a physical testbed.  Our guests run inside a
//! simulator, so host cost is *modelled*: guest work is converted to host
//! nanoseconds with a per-step cost and per-configuration overhead factors,
//! while the cryptographic costs — the part that differs most between the
//! `avmm-nosig` and `avmm-rsa768` configurations — are **measured** on the
//! machine running the harness (real RSA-768 signing/verification from
//! `avm-crypto`).

use std::time::Instant;

use avm_core::recorder::AvmmStats;
use avm_core::ExecConfig;
use avm_crypto::keys::{SignatureScheme, SigningKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cost model converting guest-side counters into host CPU time.
#[derive(Debug, Clone)]
pub struct HostCostModel {
    /// Nanoseconds of host CPU per guest step on bare hardware.
    pub ns_per_step_bare: f64,
    /// Multiplicative overhead of running under a VMM (no recording).
    pub virt_factor: f64,
    /// Additional multiplicative overhead of recording nondeterministic
    /// events (the paper's dominant cost, ~11% frame-rate drop).
    pub record_factor: f64,
    /// Host nanoseconds per logged byte (the logging daemon).
    pub ns_per_log_byte: f64,
    /// Host nanoseconds per signature generated (measured).
    pub ns_per_signature: f64,
    /// Host nanoseconds per signature verified (measured).
    pub ns_per_verification: f64,
    /// Host nanoseconds per replayed guest step (auditing cost, slightly
    /// above the recording cost because replay re-validates outputs).
    pub ns_per_replay_step: f64,
}

impl HostCostModel {
    /// A model with documented default constants and *measured* RSA-768
    /// signing/verification costs.
    pub fn calibrated() -> HostCostModel {
        let (sign_ns, verify_ns) = measure_rsa768();
        HostCostModel {
            ns_per_step_bare: 15_000.0,
            virt_factor: 1.02,
            record_factor: 1.115,
            ns_per_log_byte: 120.0,
            ns_per_signature: sign_ns,
            ns_per_verification: verify_ns,
            ns_per_replay_step: 18_000.0,
        }
    }

    /// A fast, deterministic model for unit tests (no key generation).
    pub fn test_defaults() -> HostCostModel {
        HostCostModel {
            ns_per_step_bare: 15_000.0,
            virt_factor: 1.02,
            record_factor: 1.115,
            ns_per_log_byte: 120.0,
            ns_per_signature: 1_500_000.0,
            ns_per_verification: 80_000.0,
            ns_per_replay_step: 18_000.0,
        }
    }

    /// Host CPU seconds consumed by the guest-side work described by the
    /// arguments, under a given measurement configuration.
    pub fn host_seconds(
        &self,
        config: ExecConfig,
        guest_steps: u64,
        log_bytes: u64,
        stats: &AvmmStats,
    ) -> f64 {
        let mut per_step = self.ns_per_step_bare;
        if config.virtualized() {
            per_step *= self.virt_factor;
        }
        if config.records_replay_log() {
            per_step *= self.record_factor;
        }
        let mut ns = guest_steps as f64 * per_step;
        if config.records_replay_log() {
            ns += log_bytes as f64 * self.ns_per_log_byte;
        }
        if config.tamper_evident() {
            // Hash-chaining, acknowledgment handling and daemon handoff.
            ns += log_bytes as f64 * self.ns_per_log_byte * 0.5;
        }
        if config.tamper_evident() && config.signature_scheme() != SignatureScheme::Null {
            ns += stats.signatures_made as f64 * self.ns_per_signature;
            ns += stats.signatures_verified as f64 * self.ns_per_verification;
        }
        ns / 1e9
    }

    /// Host CPU seconds needed to replay `steps` guest steps during an audit.
    pub fn replay_seconds(&self, steps: u64) -> f64 {
        steps as f64 * self.ns_per_replay_step / 1e9
    }

    /// One-way packet processing latency added by the AVMM, in microseconds,
    /// for a given configuration (used by the Figure 5 RTT model).
    pub fn packet_processing_us(&self, config: ExecConfig) -> f64 {
        // Base forwarding cost through the host network stack.
        let mut us = 30.0;
        if config.virtualized() {
            us += 130.0; // VMM device emulation
        }
        if config.records_replay_log() {
            us += 50.0; // copy into the replay log
        }
        if config.tamper_evident() {
            us += 700.0; // daemon handoff + hash-chain update
        }
        if config.signature_scheme() != SignatureScheme::Null {
            // One signature generated and one verified per direction
            // (message + acknowledgment), per the paper's §6.8 analysis.
            us += (self.ns_per_signature + self.ns_per_verification) / 1000.0;
        }
        us
    }
}

/// Measures real RSA-768 sign and verify times (nanoseconds per operation).
fn measure_rsa768() -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let key = SigningKey::generate(&mut rng, SignatureScheme::Rsa(768));
    let verifier = key.verifying_key();
    let payload = [0xA5u8; 256];

    let iters = 8;
    let start = Instant::now();
    let mut sig = Vec::new();
    for _ in 0..iters {
        sig = key.sign(&payload);
    }
    let sign_ns = start.elapsed().as_nanos() as f64 / iters as f64;

    let start = Instant::now();
    for _ in 0..iters {
        verifier.verify(&payload, &sig).expect("signature verifies");
    }
    let verify_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    (sign_ns.max(1.0), verify_ns.max(1.0))
}

/// Models the 8-hyperthread CPU of the paper's testbed (Figure 6): the
/// logging daemon is pinned to HT 0, its hypertwin HT 4 stays almost idle,
/// and the single-threaded game migrates across the remaining hyperthreads.
pub fn hyperthread_utilization(
    config: ExecConfig,
    game_busy_fraction: f64,
    daemon_fraction: f64,
) -> [f64; 8] {
    let mut ht = [0.0f64; 8];
    let daemon = if config.tamper_evident() {
        daemon_fraction
    } else {
        0.0
    };
    ht[0] = daemon.min(1.0);
    // Kernel-level IRQ handling keeps the hypertwin slightly busy.
    ht[4] = 0.01;
    // The single-threaded renderer is spread by the scheduler across the six
    // remaining hyperthreads.
    let spread = game_busy_fraction.min(1.0) / 6.0;
    for slot in [1usize, 2, 3, 5, 6, 7] {
        ht[slot] = spread;
    }
    ht
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(signatures: u64) -> AvmmStats {
        AvmmStats {
            signatures_made: signatures,
            signatures_verified: signatures,
            ..Default::default()
        }
    }

    #[test]
    fn cost_increases_across_configurations() {
        let model = HostCostModel::test_defaults();
        let steps = 10_000_000;
        let log_bytes = 500_000;
        let s = stats(200);
        let mut prev = 0.0;
        for config in ExecConfig::ALL {
            let cost = model.host_seconds(config, steps, log_bytes, &s);
            assert!(
                cost > prev,
                "{config} should cost more than the previous config"
            );
            prev = cost;
        }
    }

    #[test]
    fn signature_cost_only_applies_to_rsa_config() {
        let model = HostCostModel::test_defaults();
        let s = stats(1_000);
        // A workload small enough that per-packet signatures dominate.
        let nosig = model.host_seconds(ExecConfig::AvmmNoSig, 10_000, 10_000, &s);
        let rsa = model.host_seconds(ExecConfig::AvmmRsa768, 10_000, 10_000, &s);
        assert!(rsa > nosig * 1.5);
    }

    #[test]
    fn packet_processing_latency_ordering_matches_figure5() {
        let model = HostCostModel::test_defaults();
        let values: Vec<f64> = ExecConfig::ALL
            .iter()
            .map(|c| model.packet_processing_us(*c))
            .collect();
        for w in values.windows(2) {
            assert!(w[1] > w[0]);
        }
        // RSA processing dominates the full configuration.
        assert!(values[4] > 2.0 * values[3]);
    }

    #[test]
    fn hyperthread_model_matches_figure6_shape() {
        let ht = hyperthread_utilization(ExecConfig::AvmmRsa768, 1.0, 0.08);
        // Daemon below 8% on HT0, game ≈ 1/6 ≈ 16.7% on the six worker HTs,
        // average across the package ≈ 12.5%.
        assert!(ht[0] <= 0.08 + 1e-9);
        assert!(ht[4] < 0.05);
        let avg: f64 = ht.iter().sum::<f64>() / 8.0;
        assert!(avg > 0.10 && avg < 0.16, "average {avg}");
        // Without tamper evidence the daemon HT is idle.
        let ht_bare = hyperthread_utilization(ExecConfig::VmmRecord, 1.0, 0.08);
        assert_eq!(ht_bare[0], 0.0);
    }

    #[test]
    fn replay_is_slightly_slower_than_recording() {
        let model = HostCostModel::test_defaults();
        assert!(model.replay_seconds(1_000_000) > 1_000_000.0 * model.ns_per_step_bare / 1e9);
        assert!(model.ns_per_replay_step < 2.0 * model.ns_per_step_bare);
    }
}
