//! Reusable game-session scenario: N players plus a server, all under AVMMs,
//! exchanging traffic over the simulated LAN while local input events drive
//! the players.

use avm_core::config::{AvmmOptions, ExecConfig};
use avm_core::recorder::{Avmm, AvmmStats};
use avm_core::runtime::Runtime;
use avm_crypto::keys::{Identity, SignatureScheme};
use avm_game::{client_image, game_registry, server_image, ClientConfig, GameClient, ServerConfig};
use avm_net::LinkConfig;
use avm_vm::devices::InputEvent;
use avm_vm::GuestKernel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Description of one game session to simulate.
#[derive(Debug, Clone)]
pub struct GameScenario {
    /// Measurement configuration (bare-hw … avmm-rsa768).
    pub config: ExecConfig,
    /// Player names (each gets its own AVMM host).
    pub players: Vec<String>,
    /// Simulated duration in microseconds.
    pub duration_us: u64,
    /// Runtime tick length in microseconds.
    pub tick_us: u64,
    /// Guest steps each host may execute per tick.
    pub steps_per_tick: u64,
    /// Cheat id installed on the *first* player, if any.
    pub cheat_on_first_player: Option<u32>,
    /// Frame cap (fps) applied to every client, if any (§6.5).
    pub frame_cap_fps: Option<u32>,
    /// Enable the clock-read optimisation (§6.5).
    pub clock_optimization: bool,
    /// RSA modulus size used when the configuration signs (512 keeps the
    /// test suite fast; experiments use 768 as in the paper).
    pub rsa_bits: usize,
}

impl GameScenario {
    /// A small three-player scenario in the paper's default configuration.
    pub fn standard(config: ExecConfig, duration_us: u64) -> GameScenario {
        GameScenario {
            config,
            players: vec!["alice".into(), "bob".into(), "charlie".into()],
            duration_us,
            tick_us: 10_000,
            steps_per_tick: 30_000,
            cheat_on_first_player: None,
            frame_cap_fps: None,
            clock_optimization: false,
            rsa_bits: 768,
        }
    }

    /// The signature scheme actually used by this scenario.
    fn scheme(&self) -> SignatureScheme {
        match self.config.signature_scheme() {
            SignatureScheme::Null => SignatureScheme::Null,
            SignatureScheme::Rsa(_) => SignatureScheme::Rsa(self.rsa_bits),
        }
    }

    /// Runs the scenario and returns the measurement data.
    pub fn run(&self) -> ScenarioResult {
        let registry = game_registry();
        let server_name = "server";
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let scheme = self.scheme();

        // Identities: one per player plus the server.
        let mut identities: Vec<Identity> = Vec::new();
        for p in &self.players {
            identities.push(Identity::generate(&mut rng, p, scheme));
        }
        let server_id = Identity::generate(&mut rng, server_name, scheme);

        let mut options = AvmmOptions::for_config(self.config).with_scheme(scheme);
        if self.clock_optimization {
            options = options.with_clock_optimization();
        }

        // Build the AVMM hosts.
        let mut rt = Runtime::new(LinkConfig::default());
        rt.set_steps_per_slice(self.steps_per_tick);
        let mut client_images = Vec::new();
        for (i, player) in self.players.iter().enumerate() {
            let mut cfg = ClientConfig::new(player, server_name);
            if let Some(fps) = self.frame_cap_fps {
                cfg = cfg.with_frame_cap(fps);
            }
            if i == 0 {
                if let Some(cheat) = self.cheat_on_first_player {
                    cfg = cfg.with_cheat(cheat);
                }
            }
            let image = client_image(&cfg);
            let mut avmm = Avmm::new(
                player,
                &image,
                &registry,
                identities[i].signing_key.clone(),
                options.clone(),
            )
            .expect("client avmm");
            avmm.add_peer(server_name, server_id.verifying_key());
            rt.add_host(avmm);
            // The *reference* image is always the honest configuration.
            let mut honest_cfg = ClientConfig::new(player, server_name);
            if let Some(fps) = self.frame_cap_fps {
                honest_cfg = honest_cfg.with_frame_cap(fps);
            }
            client_images.push(client_image(&honest_cfg));
        }
        let server_cfg = ServerConfig::new(server_name, &self.players);
        let server_img = server_image(&server_cfg);
        let mut server_avmm = Avmm::new(
            server_name,
            &server_img,
            &registry,
            server_id.signing_key.clone(),
            options.clone(),
        )
        .expect("server avmm");
        for (i, p) in self.players.iter().enumerate() {
            server_avmm.add_peer(p, identities[i].verifying_key());
        }
        rt.add_host(server_avmm);

        // Drive the session: periodic movement/fire input on every player.
        let mut elapsed = 0u64;
        let mut input_timer = 0u64;
        while elapsed < self.duration_us {
            if input_timer == 0 {
                for (i, p) in self.players.iter().enumerate() {
                    if let Some(host) = rt.host_mut(p) {
                        host.inject_input(InputEvent {
                            device: 0,
                            code: avm_game::client::INPUT_MOVE_X,
                            value: if i % 2 == 0 { 1 } else { -1 },
                        });
                        host.inject_input(InputEvent {
                            device: 0,
                            code: avm_game::client::INPUT_FIRE,
                            value: 1,
                        });
                    }
                }
                input_timer = 200_000; // new input burst every 200 ms
            }
            let dt = self.tick_us.min(self.duration_us - elapsed);
            rt.tick(dt).expect("tick");
            elapsed += dt;
            input_timer = input_timer.saturating_sub(dt);
        }

        ScenarioResult {
            server_name: server_name.to_string(),
            players: self.players.clone(),
            identities,
            server_identity: server_id,
            reference_client_images: client_images,
            reference_server_image: server_img,
            duration_us: self.duration_us,
            runtime: rt,
        }
    }
}

/// Everything an experiment needs after a scenario has run.
pub struct ScenarioResult {
    /// Name of the server host.
    pub server_name: String,
    /// Player names.
    pub players: Vec<String>,
    /// Player identities (keys).
    pub identities: Vec<Identity>,
    /// Server identity.
    pub server_identity: Identity,
    /// Reference (honest) client image for each player, in order.
    pub reference_client_images: Vec<avm_vm::VmImage>,
    /// Reference server image.
    pub reference_server_image: avm_vm::VmImage,
    /// Simulated duration.
    pub duration_us: u64,
    /// The runtime, still holding every AVMM and the network.
    pub runtime: Runtime,
}

impl ScenarioResult {
    /// The AVMM of a named host.
    pub fn avmm(&self, name: &str) -> &Avmm {
        self.runtime.host(name).expect("host exists")
    }

    /// Recorder statistics of a named host.
    pub fn stats(&self, name: &str) -> AvmmStats {
        self.avmm(name).stats()
    }

    /// Total log bytes recorded by a host.
    pub fn log_bytes(&self, name: &str) -> u64 {
        self.avmm(name).log_bytes()
    }

    /// Guest steps executed by a host.
    pub fn guest_steps(&self, name: &str) -> u64 {
        self.avmm(name).machine().step_count()
    }

    /// Frames rendered by a player's game client, recovered from the guest
    /// kernel state.
    pub fn frames_rendered(&self, player: &str) -> u64 {
        let cpu_state = self.avmm(player).machine().save_cpu_state();
        // NativeCpu state = [halted byte] ++ kernel state.
        let mut probe = GameClient::new(ClientConfig::new("probe", "probe"));
        if cpu_state.len() > 1 && probe.restore_state(&cpu_state[1..]).is_ok() {
            probe.frames_rendered()
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(config: ExecConfig) -> GameScenario {
        GameScenario {
            rsa_bits: 512,
            steps_per_tick: 8_000,
            ..GameScenario::standard(config, 300_000)
        }
    }

    #[test]
    fn scenario_produces_traffic_logs_and_frames() {
        let result = tiny(ExecConfig::AvmmRsa768).run();
        for p in &result.players {
            assert!(result.guest_steps(p) > 0, "{p} executed no steps");
            assert!(result.frames_rendered(p) > 0, "{p} rendered no frames");
            assert!(result.stats(p).packets_out > 0, "{p} sent no packets");
            assert!(result.log_bytes(p) > 0);
        }
        let server_stats = result.stats("server");
        assert!(server_stats.packets_in > 0);
        assert!(server_stats.packets_out > 0);
    }

    #[test]
    fn honest_player_passes_audit_after_scenario() {
        let result = tiny(ExecConfig::AvmmRsa768).run();
        let player = &result.players[1];
        let avmm = result.avmm(player);
        let (prev, segment) = avmm.log().segment(1, avmm.log().len() as u64).unwrap();
        let report = avm_core::audit::audit_log(
            player,
            &prev,
            &segment,
            &[],
            &result.identities[1].verifying_key(),
            &result.reference_client_images[1],
            &game_registry(),
        );
        assert!(report.passed(), "{:?}", report.fault());
    }

    #[test]
    fn cheating_player_fails_audit_after_scenario() {
        let mut scenario = tiny(ExecConfig::AvmmRsa768);
        scenario.cheat_on_first_player = Some(
            avm_game::cheats::cheat_by_name("unlimited-ammo")
                .unwrap()
                .id,
        );
        let result = scenario.run();
        let cheater = &result.players[0];
        let avmm = result.avmm(cheater);
        let (prev, segment) = avmm.log().segment(1, avmm.log().len() as u64).unwrap();
        let report = avm_core::audit::audit_log(
            cheater,
            &prev,
            &segment,
            &[],
            &result.identities[0].verifying_key(),
            &result.reference_client_images[0],
            &game_registry(),
        );
        assert!(!report.passed(), "cheater unexpectedly passed the audit");
    }
}
