//! Benchmark trajectory files: pinned numbers as data, compared in CI.
//!
//! The quick experiments emit flat JSON metric files (`BENCH_persist.json`,
//! `BENCH_netaudit.json`); the committed copies at the repository root pin
//! the numbers, and the `bench_compare` binary flags fresh runs that regress
//! a pinned cost by more than a threshold (15% by default).
//!
//! Key conventions, enforced by [`compare`]:
//!
//! * `ok_*` — correctness flags (and mode markers like `ok_quick`), encoded
//!   0/1; any difference from the pinned value is a regression.
//! * `wall_*` — real wall-clock times.  Informational only: they vary with
//!   the host, so the comparator skips them.
//! * `tolerance_<key>` — per-key threshold config, not a metric: the pinned
//!   value replaces the blanket `threshold_percent` for `<key>`, and the
//!   overshoot it gates is a *hard* failure (`bench_compare` refuses to
//!   downgrade it under `--warn-costs`).  This is how a cost key whose
//!   value has proven stable graduates from the blanket warning threshold
//!   to a pinned gate.  Tolerance entries are config, so one missing from a
//!   fresh run is never itself a regression.
//! * everything else — deterministic simulated costs (modelled microseconds,
//!   bytes, counts) where *bigger is worse*; a fresh value more than
//!   `threshold_percent` above the pinned one is a regression.
//!
//! The format is deliberately a flat string→integer map so that both the
//! writer and the reader fit in a page of dependency-free code.

use std::io;
use std::path::{Path, PathBuf};

/// Where the experiment binary writes fresh metric files: the directory in
/// the `BENCH_OUT` environment variable, or the current directory.  CI
/// points `BENCH_OUT` at a scratch directory so fresh runs never clobber the
/// pinned copies they are compared against.
pub fn bench_out_path(file: &str) -> PathBuf {
    let dir = std::env::var("BENCH_OUT").unwrap_or_else(|_| ".".into());
    Path::new(&dir).join(file)
}

/// Serialises `metrics` as a flat JSON object (stable key order — exactly
/// the slice order) tagged with the experiment name.
pub fn render_metrics(experiment: &str, metrics: &[(String, u64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"avm-bench-trajectory/v1\",\n");
    out.push_str(&format!("  \"experiment\": \"{experiment}\",\n"));
    out.push_str("  \"metrics\": {\n");
    for (i, (key, value)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{key}\": {value}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Writes a metric file (creating the target directory if needed) and
/// returns the path written.
pub fn write_metrics(
    path: &Path,
    experiment: &str,
    metrics: &[(String, u64)],
) -> io::Result<PathBuf> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_metrics(experiment, metrics))?;
    Ok(path.to_path_buf())
}

/// Parses a metric file written by [`write_metrics`]: every `"key": <int>`
/// line becomes a metric (string-valued fields like `schema` parse as
/// nothing and are skipped).
pub fn parse_metrics(text: &str) -> Vec<(String, u64)> {
    let mut metrics = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(value) = value.trim().parse::<u64>() {
            metrics.push((key.to_string(), value));
        }
    }
    metrics
}

/// Reads and parses a metric file.
pub fn read_metrics(path: &Path) -> io::Result<Vec<(String, u64)>> {
    Ok(parse_metrics(&std::fs::read_to_string(path)?))
}

/// One flagged difference between a pinned and a fresh metric file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// The metric key.
    pub key: String,
    /// The committed (pinned) value.
    pub pinned: u64,
    /// The freshly measured value, or `None` if the fresh run lacks the key.
    pub fresh: Option<u64>,
    /// The key had an explicit `tolerance_<key>` pin, so this overshoot
    /// breached a per-key gate the trajectory graduated to — fatal even
    /// where blanket cost overshoots are downgraded to warnings.
    pub toleranced: bool,
}

impl core::fmt::Display for Regression {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.fresh {
            Some(fresh) => write!(f, "{}: pinned {} -> fresh {}", self.key, self.pinned, fresh),
            None => write!(
                f,
                "{}: pinned {} -> missing in fresh run",
                self.key, self.pinned
            ),
        }
    }
}

/// Compares a fresh run against the pinned trajectory, returning every
/// regression under the key conventions in the module docs.  Keys that only
/// exist in the fresh run are fine (new metrics land before they are
/// pinned); keys that disappeared, `ok_*` mismatches, and costs more than
/// their threshold above the pin are not.  A `tolerance_<key>` pin
/// overrides `threshold_percent` for `<key>` alone and marks the resulting
/// regression as gate-breaching ([`Regression::toleranced`]).
pub fn compare(
    pinned: &[(String, u64)],
    fresh: &[(String, u64)],
    threshold_percent: u64,
) -> Vec<Regression> {
    let lookup = |key: &str| fresh.iter().find(|(k, _)| k == key).map(|&(_, v)| v);
    let tolerance = |key: &str| {
        let config_key = format!("tolerance_{key}");
        pinned
            .iter()
            .find(|(k, _)| *k == config_key)
            .map(|&(_, v)| v)
    };
    let mut regressions = Vec::new();
    for (key, pinned_value) in pinned {
        if key.starts_with("wall_") || key.starts_with("tolerance_") {
            continue;
        }
        let per_key = tolerance(key);
        let threshold = per_key.unwrap_or(threshold_percent);
        let fresh_value = lookup(key);
        let regressed = match fresh_value {
            None => true,
            Some(fresh_value) if key.starts_with("ok_") => fresh_value != *pinned_value,
            // Integer-exact form of `fresh > pinned * (1 + threshold/100)`.
            Some(fresh_value) => fresh_value * 100 > pinned_value * (100 + threshold),
        };
        if regressed {
            regressions.push(Regression {
                key: key.clone(),
                pinned: *pinned_value,
                fresh: fresh_value,
                toleranced: per_key.is_some(),
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn render_and_parse_round_trip() {
        let metrics = m(&[("per_seal_syncs", 7), ("ok_quick", 1), ("wall_us", 12345)]);
        let text = render_metrics("persist", &metrics);
        assert!(text.contains("\"experiment\": \"persist\""));
        assert_eq!(parse_metrics(&text), metrics);
    }

    #[test]
    fn comparator_applies_the_key_conventions() {
        let pinned = m(&[
            ("cost", 100),
            ("ok_match", 1),
            ("wall_recovery_us", 50),
            ("gone", 3),
        ]);
        // Within threshold, flags equal, wall ignored even though it blew up.
        let fresh = m(&[
            ("cost", 115),
            ("ok_match", 1),
            ("wall_recovery_us", 5000),
            ("gone", 3),
            ("brand_new", 999),
        ]);
        assert!(compare(&pinned, &fresh, 15).is_empty());

        // One past threshold, a flipped flag, and a vanished key all flag.
        let bad = m(&[("cost", 116), ("ok_match", 0), ("wall_recovery_us", 50)]);
        let regressions = compare(&pinned, &bad, 15);
        let keys: Vec<&str> = regressions.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, ["cost", "ok_match", "gone"]);
        assert_eq!(regressions[2].fresh, None);
    }

    #[test]
    fn zero_pin_regresses_on_any_growth() {
        let pinned = m(&[("torn_bytes", 0)]);
        assert!(compare(&pinned, &m(&[("torn_bytes", 0)]), 15).is_empty());
        assert_eq!(compare(&pinned, &m(&[("torn_bytes", 1)]), 15).len(), 1);
    }

    #[test]
    fn per_key_tolerance_overrides_the_blanket_threshold() {
        let pinned = m(&[
            ("stable_cost", 100),
            ("tolerance_stable_cost", 2),
            ("loose_cost", 100),
        ]);
        // 3% over: within the blanket 15% but past the 2% per-key gate.
        let fresh = m(&[("stable_cost", 103), ("loose_cost", 103)]);
        let regressions = compare(&pinned, &fresh, 15);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "stable_cost");
        assert!(regressions[0].toleranced);

        // Inside the per-key gate: clean.
        let fresh = m(&[("stable_cost", 102), ("loose_cost", 115)]);
        assert!(compare(&pinned, &fresh, 15).is_empty());

        // A tolerance wider than the blanket also applies: 40% over is fine
        // under tolerance 50, while the same overshoot on a blanket key is
        // flagged (and not marked toleranced).
        let pinned = m(&[
            ("noisy_cost", 100),
            ("tolerance_noisy_cost", 50),
            ("c", 100),
        ]);
        let fresh = m(&[("noisy_cost", 140), ("c", 140)]);
        let regressions = compare(&pinned, &fresh, 15);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "c");
        assert!(!regressions[0].toleranced);
    }

    #[test]
    fn tolerance_entries_are_config_not_metrics() {
        // The fresh run never emits tolerance keys; their absence must not
        // be a regression, and they must not be compared as values.
        let pinned = m(&[("cost", 100), ("tolerance_cost", 5)]);
        let fresh = m(&[("cost", 100)]);
        assert!(compare(&pinned, &fresh, 15).is_empty());
        // A tolerance for a key that is not pinned is inert.
        let pinned = m(&[("tolerance_ghost", 5)]);
        assert!(compare(&pinned, &m(&[]), 15).is_empty());
    }
}
