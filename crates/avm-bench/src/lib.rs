//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5.4, §6).
//!
//! Each `exp_*` function in [`experiments`] corresponds to one table, figure
//! or numbered subsection of the evaluation; `cargo run -p avm-bench --bin
//! experiments -- <id>` prints the regenerated rows/series, and
//! `EXPERIMENTS.md` records paper-reported versus measured values.
//!
//! Absolute numbers differ from the paper's 2010 testbed (our substrate is a
//! simulator plus a host cost model, not VMware on a Core i7), but the
//! *shape* of every result — who wins, by roughly what factor, where the
//! crossovers are — is what these experiments reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod hostmodel;
pub mod scenario;
pub mod trajectory;

pub use hostmodel::HostCostModel;
pub use scenario::{GameScenario, ScenarioResult};
