//! Compares a fresh benchmark metric file against the committed pin and
//! exits nonzero on regressions — the "benchmark trajectory as data" gate.
//!
//! ```text
//! cargo run -p avm-bench --bin bench_compare -- \
//!     BENCH_persist.json target/bench/BENCH_persist.json \
//!     [--threshold 15] [--warn-costs]
//! ```
//!
//! The key conventions (which keys are exact flags, which are costs under
//! the threshold, which are host-dependent and skipped) live in
//! [`avm_bench::trajectory`].
//!
//! `ok_*` mismatches and missing keys are correctness regressions and
//! always fail the run.  Cost overshoots fail too by default;
//! `--warn-costs` downgrades *only those* to warnings, for environments
//! whose cost profile legitimately drifts while semantics must not.  A key
//! with an explicit `tolerance_<key>` pin has graduated past the blanket
//! threshold: breaching its own gate stays fatal even under `--warn-costs`.

use std::path::Path;
use std::process::exit;

use avm_bench::trajectory;

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare <pinned.json> <fresh.json> [--threshold <percent>] [--warn-costs]"
    );
    exit(2);
}

fn load(path: &str) -> Vec<(String, u64)> {
    match trajectory::read_metrics(Path::new(path)) {
        Ok(metrics) if !metrics.is_empty() => metrics,
        Ok(_) => {
            eprintln!("bench_compare: no metrics found in {path}");
            exit(2);
        }
        Err(err) => {
            eprintln!("bench_compare: cannot read {path}: {err}");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold: u64 = 15;
    let mut warn_costs = false;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            threshold = match it.next().map(|v| v.parse()) {
                Some(Ok(t)) => t,
                _ => usage(),
            };
        } else if arg == "--warn-costs" {
            warn_costs = true;
        } else if arg.starts_with("--") {
            usage();
        } else {
            files.push(arg);
        }
    }
    let [pinned_path, fresh_path] = files[..] else {
        usage();
    };

    let pinned = load(pinned_path);
    let fresh = load(fresh_path);
    println!("comparing {fresh_path} against pinned {pinned_path} (threshold {threshold}%)");
    for (key, pin) in &pinned {
        match fresh.iter().find(|(k, _)| k == key) {
            Some((_, now)) => println!("  {key}: {pin} -> {now}"),
            None => println!("  {key}: {pin} -> (missing)"),
        }
    }

    let regressions = trajectory::compare(&pinned, &fresh, threshold);
    if regressions.is_empty() {
        println!("no regressions: every pinned cost within {threshold}%, all flags intact");
        return;
    }
    // `ok_*` mismatches and disappeared keys are correctness failures; a
    // value overshoot on any other key is a cost regression — unless the
    // key carries its own `tolerance_<key>` pin, in which case breaching
    // that gate is as hard a failure as a flipped flag.
    let mut fatal = 0;
    for regression in &regressions {
        let hard = regression.key.starts_with("ok_")
            || regression.fresh.is_none()
            || regression.toleranced;
        if hard || !warn_costs {
            eprintln!("REGRESSION {regression}");
            fatal += 1;
        } else {
            eprintln!("warning: cost regression {regression}");
        }
    }
    if fatal > 0 {
        exit(1);
    }
    println!("cost regressions downgraded to warnings (--warn-costs); flags intact");
}
