//! Command-line entry point regenerating the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p avm-bench --bin experiments -- all
//! cargo run --release -p avm-bench --bin experiments -- table1 fig7 fig9
//! cargo run --release -p avm-bench --bin experiments -- --quick all
//! ```

use avm_bench::experiments;
use avm_bench::hostmodel::HostCostModel;
use avm_bench::trajectory;

/// Writes a fresh trajectory metric file (`BENCH_OUT` dir, or the current
/// one) so `bench_compare` can diff it against the committed pin.
fn write_bench(experiment: &str, file: &str, metrics: &[(String, u64)]) {
    let path = trajectory::bench_out_path(file);
    match trajectory::write_metrics(&path, experiment, metrics) {
        Ok(written) => println!("wrote {}", written.display()),
        Err(err) => eprintln!("failed to write {}: {err}", path.display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let selected = if selected.is_empty() {
        vec!["all"]
    } else {
        selected
    };

    let model = HostCostModel::calibrated();
    for name in selected {
        match name {
            "all" => experiments::run_all(quick),
            "table1" => {
                experiments::exp_table1(quick);
            }
            "functionality" | "sec6.3" => {
                experiments::exp_functionality(quick);
            }
            "fig3" | "fig4" | "loggrowth" => {
                experiments::exp_log_growth(quick);
            }
            "sec6.5" | "clockopt" => {
                experiments::exp_clock_optimization(quick);
            }
            "sec6.6" | "auditcost" => {
                experiments::exp_audit_cost(quick);
            }
            "sec6.7" | "traffic" => {
                experiments::exp_traffic(quick);
            }
            "fig5" | "rtt" => {
                experiments::exp_ping_rtt(&model);
            }
            "fig6" | "cpu" => {
                experiments::exp_cpu_utilization(quick, &model);
            }
            "fig7" | "framerate" => {
                experiments::exp_frame_rate(quick, &model);
            }
            "fig8" | "online" => {
                experiments::exp_online_audit_frame_rate(quick, &model);
            }
            "fig9" | "sec6.12" | "spotcheck" => {
                experiments::exp_spotcheck(quick);
            }
            "fig6inc" | "snapshotinc" | "incremental" => {
                let r = experiments::exp_snapshot_incremental(quick);
                write_bench(
                    "fig6inc",
                    "BENCH_fig6inc.json",
                    &experiments::fig6inc_metrics(&r, quick),
                );
            }
            "dedup" | "cas" | "snapshotdedup" => {
                let r = experiments::exp_snapshot_dedup(quick);
                write_bench(
                    "dedup",
                    "BENCH_dedup.json",
                    &experiments::dedup_metrics(&r, quick),
                );
            }
            "ondemand" | "sec3.5" | "partialstate" => {
                let r = experiments::exp_ondemand(quick);
                write_bench(
                    "ondemand",
                    "BENCH_ondemand.json",
                    &experiments::ondemand_metrics(&r, quick),
                );
            }
            "chunked" | "subpage" | "chunks" => {
                let r = experiments::exp_chunked(quick);
                write_bench(
                    "chunked",
                    "BENCH_chunked.json",
                    &experiments::chunked_metrics(&r, quick),
                );
            }
            "netaudit" | "netcheck" | "endpoints" => {
                let r = experiments::exp_netaudit(quick);
                write_bench(
                    "netaudit",
                    "BENCH_netaudit.json",
                    &experiments::netaudit_metrics(&r, quick),
                );
            }
            "persist" | "durability" | "crashrecovery" => {
                let r = experiments::exp_persist(quick);
                write_bench(
                    "persist",
                    "BENCH_persist.json",
                    &experiments::persist_metrics(&r, quick),
                );
            }
            "fleet" | "sessions" | "scale" => {
                let r = experiments::exp_fleet(quick);
                write_bench(
                    "fleet",
                    "BENCH_fleet.json",
                    &experiments::fleet_metrics(&r, quick),
                );
            }
            "paraudit" | "parallel" | "pipeline" => {
                let r = experiments::exp_paraudit(quick);
                write_bench(
                    "paraudit",
                    "BENCH_paraudit.json",
                    &experiments::paraudit_metrics(&r, quick),
                );
            }
            "attest" | "attestation" | "launch" => {
                let r = experiments::exp_attest(quick);
                write_bench(
                    "attest",
                    "BENCH_attest.json",
                    &experiments::attest_metrics(&r, quick),
                );
            }
            other => {
                eprintln!("unknown experiment '{other}'");
                eprintln!("known: all table1 functionality fig3 fig4 sec6.5 sec6.6 sec6.7 fig5 fig6 fig6inc dedup ondemand chunked netaudit persist fleet paraudit attest fig7 fig8 fig9");
                std::process::exit(2);
            }
        }
        println!();
    }
}
