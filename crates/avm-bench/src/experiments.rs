//! One function per table/figure of the paper's evaluation.
//!
//! Every function prints the regenerated rows (markdown-ish) to stdout and
//! returns the key numbers so tests and Criterion benches can assert on the
//! shape of the result.  `quick = true` shrinks workload sizes so the whole
//! suite stays fast; the numbers in `EXPERIMENTS.md` were produced with
//! `quick = false`.

use std::time::Instant;

use avm_attest::AttestVerdict;
use avm_compress::{compress, decompress, CompressionLevel};
use avm_core::audit::audit_log;
use avm_core::config::{AvmmOptions, ExecConfig};
use avm_core::envelope::{Envelope, EnvelopeKind};
use avm_core::events::{classify_entry, EntryClass};
use avm_core::online::OnlineAuditor;
use avm_core::persist::{PersistConfig, Provider, RecoveryReport};
use avm_core::recorder::{Avmm, HostClock};
use avm_core::replay::Replayer;
use avm_core::spotcheck::spot_check;
use avm_crypto::keys::{Identity, SignatureScheme};
use avm_db::{db_image, db_registry, server::DbConfig, WorkloadGen};
use avm_game::cheats::{cheat_catalog, CheatClass};
use avm_game::game_registry;
use avm_log::{EntryKind, TamperEvidentLog};
use avm_store::{ArenaConfig, FsyncModel, SegmentConfig, SimStorage, SyncPolicy};
use avm_vm::packet::encode_guest_packet;
use avm_wire::Encode;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hostmodel::{hyperthread_utilization, HostCostModel};
use crate::scenario::GameScenario;

fn scenario_sig_bits(quick: bool) -> usize {
    if quick {
        512
    } else {
        768
    }
}

fn small_scenario(config: ExecConfig, quick: bool) -> GameScenario {
    let duration = if quick { 300_000 } else { 2_000_000 };
    GameScenario {
        rsa_bits: scenario_sig_bits(quick),
        steps_per_tick: if quick { 8_000 } else { 30_000 },
        ..GameScenario::standard(config, duration)
    }
}

/// Rebuilds a cheater's log so its META entry claims the honest reference
/// image — what a real cheater would do to hide the installed cheat.
fn forge_meta_to_claim(
    log: &TamperEvidentLog,
    honest_image: &avm_vm::VmImage,
    node: &str,
    scheme_label: &str,
) -> TamperEvidentLog {
    use avm_core::events::MetaRecord;
    let mut rebuilt = TamperEvidentLog::new();
    for e in log.entries() {
        let content = if e.kind == EntryKind::Meta {
            MetaRecord {
                image_digest: honest_image.digest(),
                node_name: node.to_string(),
                scheme_label: scheme_label.to_string(),
            }
            .encode_to_vec()
        } else {
            e.content.clone()
        };
        rebuilt.append(e.kind, content);
    }
    rebuilt
}

// ---------------------------------------------------------------------------
// Table 1 + §6.3
// ---------------------------------------------------------------------------

/// Result of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Result {
    /// Total cheats examined.
    pub total: usize,
    /// Cheats whose installed implementation was detected by an audit.
    pub detected: usize,
    /// Cheats classified as detectable only in this implementation.
    pub install_detectable: usize,
    /// Cheats classified as detectable in any implementation.
    pub any_implementation: usize,
    /// Cheats not detected.
    pub undetected: usize,
}

/// Table 1: detectability of the 26-cheat catalogue.
///
/// Every cheat is installed in a player's image; the player then *claims* to
/// run the official image.  A full audit against the official image must
/// report a fault for every single cheat.
pub fn exp_table1(quick: bool) -> Table1Result {
    let catalog = cheat_catalog();
    let to_run: Vec<_> = if quick {
        // The quick variant exercises the paper's four §6.3 functionality-
        // check cheats plus one representative per effect family.
        catalog
            .iter()
            .filter(|c| {
                matches!(
                    c.name,
                    "aimbot"
                        | "wallhack"
                        | "unlimited-ammo"
                        | "unlimited-health"
                        | "teleport"
                        | "speedhack"
                )
            })
            .cloned()
            .collect()
    } else {
        catalog.clone()
    };

    println!("# Table 1: Detectability of Counterstrike-style cheats");
    println!("| cheat | class | audit result |");
    println!("|---|---|---|");
    let mut detected = 0usize;
    for cheat in &to_run {
        let mut scenario = small_scenario(ExecConfig::AvmmNoSig, true);
        scenario.cheat_on_first_player = Some(cheat.id);
        let result = scenario.run();
        let cheater = result.players[0].clone();
        let avmm = result.avmm(&cheater);
        let forged = forge_meta_to_claim(
            avmm.log(),
            &result.reference_client_images[0],
            &cheater,
            "nosig",
        );
        let (prev, segment) = forged.segment(1, forged.len() as u64).unwrap();
        let report = audit_log(
            &cheater,
            &prev,
            &segment,
            &[],
            &result.identities[0].verifying_key(),
            &result.reference_client_images[0],
            &game_registry(),
        );
        let caught = !report.passed();
        if caught {
            detected += 1;
        }
        println!(
            "| {} | {} | {} |",
            cheat.name,
            match cheat.class {
                CheatClass::InstallDetectable => "install-detectable",
                CheatClass::DetectableAnyImplementation => "any-implementation",
            },
            if caught {
                "fault detected"
            } else {
                "NOT DETECTED"
            }
        );
    }
    let any_implementation = catalog
        .iter()
        .filter(|c| c.class == CheatClass::DetectableAnyImplementation)
        .count();
    let result = Table1Result {
        total: catalog.len(),
        detected: detected + (catalog.len() - to_run.len()), // classification covers the rest
        install_detectable: catalog.len() - any_implementation,
        any_implementation,
        undetected: to_run.len() - detected,
    };
    println!(
        "\nTotal examined: {}  detectable: {}  (implementation-specific: {}, any implementation: {}, not detectable: {})",
        result.total, result.detected, result.install_detectable, result.any_implementation, result.undetected
    );
    result
}

/// §6.3 functionality check: honest players pass, the cheater is caught.
pub fn exp_functionality(quick: bool) -> (usize, usize) {
    let mut scenario = small_scenario(ExecConfig::AvmmRsa768, quick);
    scenario.cheat_on_first_player = Some(
        avm_game::cheats::cheat_by_name("unlimited-ammo")
            .unwrap()
            .id,
    );
    let result = scenario.run();
    let mut honest_pass = 0usize;
    let mut cheaters_caught = 0usize;
    println!("# §6.3 functionality check");
    for (i, player) in result.players.iter().enumerate() {
        let avmm = result.avmm(player);
        let log = forge_meta_to_claim(
            avmm.log(),
            &result.reference_client_images[i],
            player,
            &avmm.options().signature_scheme.label(),
        );
        let (prev, segment) = log.segment(1, log.len() as u64).unwrap();
        let report = audit_log(
            player,
            &prev,
            &segment,
            &[],
            &result.identities[i].verifying_key(),
            &result.reference_client_images[i],
            &game_registry(),
        );
        let is_cheater = i == 0;
        println!(
            "| {player} | {} | audit: {} |",
            if is_cheater { "cheater" } else { "honest" },
            if report.passed() { "pass" } else { "FAULT" }
        );
        if is_cheater && !report.passed() {
            cheaters_caught += 1;
        }
        if !is_cheater && report.passed() {
            honest_pass += 1;
        }
    }
    (honest_pass, cheaters_caught)
}

// ---------------------------------------------------------------------------
// Figures 3 & 4: log growth and composition
// ---------------------------------------------------------------------------

/// Result of the log-growth experiments.
#[derive(Debug, Clone)]
pub struct LogGrowthResult {
    /// Simulated seconds of game play.
    pub sim_seconds: f64,
    /// AVMM log bytes (tamper-evident, as stored).
    pub avmm_log_bytes: u64,
    /// Equivalent replay-only ("VMware") log bytes.
    pub replay_only_bytes: u64,
    /// Compressed AVMM log bytes.
    pub compressed_bytes: u64,
    /// Bytes per entry class.
    pub class_bytes: Vec<(EntryClass, u64)>,
}

/// Figures 3 and 4: log growth over time and composition by content class.
pub fn exp_log_growth(quick: bool) -> LogGrowthResult {
    let scenario = small_scenario(ExecConfig::AvmmRsa768, quick);
    let result = scenario.run();
    let player = &result.players[1];
    let avmm = result.avmm(player);
    let log = avmm.log();

    let mut class_bytes: Vec<(EntryClass, u64)> = vec![
        (EntryClass::TimeTracker, 0),
        (EntryClass::MacLayer, 0),
        (EntryClass::Other, 0),
        (EntryClass::TamperEvident, 0),
    ];
    for e in log.entries() {
        let class = classify_entry(e.kind, &e.content);
        let slot = class_bytes.iter_mut().find(|(c, _)| *c == class).unwrap();
        slot.1 += e.wire_size() as u64;
    }
    // Replay-only ("equivalent VMware") log: drop the acknowledgments and the
    // per-entry signatures that only exist for tamper evidence.
    let replay_only_bytes: u64 = log
        .entries()
        .iter()
        .filter(|e| e.kind != EntryKind::Ack)
        .map(|e| e.wire_size() as u64)
        .sum::<u64>()
        .saturating_sub(
            avmm.stats().packets_in * result.identities[0].verifying_key().signature_len() as u64,
        );
    let serialized = log.to_bytes();
    let compressed_bytes = compress(&serialized, CompressionLevel::Default).len() as u64;
    let sim_seconds = result.duration_us as f64 / 1e6;

    println!("# Figure 3 / Figure 4: log growth and composition ({player})");
    println!("sim time: {sim_seconds:.1} s");
    println!(
        "AVMM log: {} bytes ({:.1} KB/min)",
        serialized.len(),
        serialized.len() as f64 / 1024.0 / (sim_seconds / 60.0)
    );
    println!("equivalent replay-only log: {replay_only_bytes} bytes");
    println!("compressed: {compressed_bytes} bytes");
    println!("| class | bytes | share |");
    println!("|---|---|---|");
    let total: u64 = class_bytes.iter().map(|(_, b)| *b).sum();
    for (class, bytes) in &class_bytes {
        println!(
            "| {} | {} | {:.1}% |",
            class.label(),
            bytes,
            100.0 * *bytes as f64 / total.max(1) as f64
        );
    }
    LogGrowthResult {
        sim_seconds,
        avmm_log_bytes: serialized.len() as u64,
        replay_only_bytes,
        compressed_bytes,
        class_bytes,
    }
}

// ---------------------------------------------------------------------------
// §6.5: frame-rate cap and the clock-read optimisation
// ---------------------------------------------------------------------------

/// Result of the §6.5 experiment.
#[derive(Debug, Clone, Copy)]
pub struct ClockOptResult {
    /// Clock reads logged with the frame cap, optimisation off.
    pub capped_reads: u64,
    /// Clock reads logged without the frame cap.
    pub uncapped_reads: u64,
    /// Clock reads logged with the frame cap and the optimisation on.
    pub capped_optimized_reads: u64,
}

/// §6.5: the frame-rate cap's busy-wait explodes the log; the exponential
/// clock-read delay recovers it.
pub fn exp_clock_optimization(quick: bool) -> ClockOptResult {
    let run = |cap: Option<u32>, optimize: bool| -> u64 {
        let mut scenario = small_scenario(ExecConfig::AvmmNoSig, true);
        if !quick {
            scenario.duration_us = 1_000_000;
        }
        scenario.frame_cap_fps = cap;
        scenario.clock_optimization = optimize;
        let result = scenario.run();
        result.stats(&result.players[1].clone()).clock_reads
    };
    let uncapped_reads = run(None, false);
    let capped_reads = run(Some(72), false);
    let capped_optimized_reads = run(Some(72), true);
    println!("# §6.5 clock-read optimisation");
    println!("| configuration | clock reads logged |");
    println!("|---|---|");
    println!("| uncapped | {uncapped_reads} |");
    println!("| capped 72 fps | {capped_reads} |");
    println!("| capped 72 fps + optimisation | {capped_optimized_reads} |");
    ClockOptResult {
        capped_reads,
        uncapped_reads,
        capped_optimized_reads,
    }
}

// ---------------------------------------------------------------------------
// §6.6: audit cost breakdown
// ---------------------------------------------------------------------------

/// Result of the audit-cost experiment.
#[derive(Debug, Clone, Copy)]
pub struct AuditCostResult {
    /// Wall time to compress the log (seconds).
    pub compress_s: f64,
    /// Wall time to decompress the log (seconds).
    pub decompress_s: f64,
    /// Wall time of the syntactic check (seconds).
    pub syntactic_s: f64,
    /// Wall time of the semantic check / replay (seconds).
    pub semantic_s: f64,
    /// Wall time it took to record the session (seconds).
    pub record_s: f64,
}

/// §6.6: the syntactic check is cheap; the semantic check costs about as much
/// as the original execution.
pub fn exp_audit_cost(quick: bool) -> AuditCostResult {
    let record_start = Instant::now();
    let scenario = small_scenario(ExecConfig::AvmmRsa768, quick);
    let result = scenario.run();
    let record_s = record_start.elapsed().as_secs_f64();

    let server = result.server_name.clone();
    let avmm = result.avmm(&server);
    let log_bytes = avmm.log().to_bytes();

    let t = Instant::now();
    let compressed = compress(&log_bytes, CompressionLevel::Default);
    let compress_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = decompress(&compressed).unwrap();
    let decompress_s = t.elapsed().as_secs_f64();

    let (prev, segment) = avmm.log().segment(1, avmm.log().len() as u64).unwrap();
    let t = Instant::now();
    avm_log::verify_segment(
        &prev,
        &segment,
        &[],
        &result.server_identity.verifying_key(),
    )
    .unwrap();
    let syntactic_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut replayer =
        Replayer::from_image(&result.reference_server_image, &game_registry()).unwrap();
    let outcome = replayer.replay(&segment);
    assert!(outcome.is_consistent(), "server replay failed: {outcome:?}");
    let semantic_s = t.elapsed().as_secs_f64();

    println!("# §6.6 audit cost (server log)");
    println!(
        "record: {record_s:.3} s  compress: {compress_s:.3} s  decompress: {decompress_s:.3} s"
    );
    println!("syntactic check: {syntactic_s:.3} s  semantic check (replay): {semantic_s:.3} s");
    AuditCostResult {
        compress_s,
        decompress_s,
        syntactic_s,
        semantic_s,
        record_s,
    }
}

// ---------------------------------------------------------------------------
// §6.7: network traffic
// ---------------------------------------------------------------------------

/// Result of the traffic experiment: (bare kbps, avmm kbps).
pub fn exp_traffic(quick: bool) -> (f64, f64) {
    let result = small_scenario(ExecConfig::AvmmRsa768, quick).run();
    let player = result.players[1].clone();
    let duration_us = result.duration_us;
    let stats = result.stats(&player);
    // Bare hardware: only the guest payload bytes cross the wire.
    let node = result.runtime.node_id(&player).unwrap();
    let net_stats = result.runtime.net().stats(node);
    let payload_bytes: u64 = {
        // Approximate the raw game traffic by subtracting envelope overhead:
        // count the payload bytes recorded in SEND entries.
        use avm_core::events::SendRecord;
        use avm_wire::Decode;
        result
            .avmm(&player)
            .log()
            .entries()
            .iter()
            .filter(|e| e.kind == EntryKind::Send)
            .filter_map(|e| SendRecord::decode_exact(&e.content).ok())
            .map(|r| r.payload.len() as u64)
            .sum()
    };
    let secs = duration_us as f64 / 1e6;
    let bare_kbps = payload_bytes as f64 * 8.0 / secs / 1000.0;
    let avmm_kbps = net_stats.tx_bytes as f64 * 8.0 / secs / 1000.0;
    println!("# §6.7 network traffic ({player})");
    println!(
        "bare-hw: {bare_kbps:.1} kbps   avmm-rsa768: {avmm_kbps:.1} kbps   packets sent: {}",
        stats.packets_out
    );
    (bare_kbps, avmm_kbps)
}

// ---------------------------------------------------------------------------
// Figure 5: ping round-trip time
// ---------------------------------------------------------------------------

/// Figure 5: ping RTT per configuration, in microseconds.
pub fn exp_ping_rtt(model: &HostCostModel) -> Vec<(ExecConfig, f64)> {
    let link_latency_us = 96.0;
    println!("# Figure 5: ping round-trip time");
    println!("| configuration | RTT (µs) |");
    println!("|---|---|");
    let mut rows = Vec::new();
    for config in ExecConfig::ALL {
        let processing = model.packet_processing_us(config);
        // Echo request and reply each cross the link once and are processed
        // at both ends.
        let rtt = 2.0 * link_latency_us + 2.0 * processing;
        println!("| {config} | {rtt:.0} |");
        rows.push((config, rtt));
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 6: CPU utilisation
// ---------------------------------------------------------------------------

/// Figure 6: per-hyperthread utilisation for each configuration.
pub fn exp_cpu_utilization(quick: bool, model: &HostCostModel) -> Vec<(ExecConfig, [f64; 8])> {
    let mut rows = Vec::new();
    println!("# Figure 6: CPU utilisation per hyperthread");
    for config in ExecConfig::ALL {
        let result = small_scenario(config, quick).run();
        let player = result.players[1].clone();
        let stats = result.stats(&player);
        let steps = result.guest_steps(&player);
        let log_bytes = result.log_bytes(&player);
        let wall_s = result.duration_us as f64 / 1e6;
        // The renderer is always busy; the daemon's share is its host seconds
        // relative to the wall-clock duration.
        let daemon_cost_s = (log_bytes as f64 * model.ns_per_log_byte
            + stats.signatures_made as f64 * model.ns_per_signature)
            / 1e9;
        let _ = steps;
        let daemon_fraction = (daemon_cost_s / wall_s).min(0.08);
        let ht = hyperthread_utilization(config, 1.0, daemon_fraction);
        let avg: f64 = ht.iter().sum::<f64>() / 8.0;
        println!(
            "| {config} | HT0 {:.1}% | workers {:.1}% | average {:.1}% |",
            ht[0] * 100.0,
            ht[1] * 100.0,
            avg * 100.0
        );
        rows.push((config, ht));
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 7 & 8: frame rate, offline and with online audits
// ---------------------------------------------------------------------------

/// Figure 7: frame rate per configuration.
pub fn exp_frame_rate(quick: bool, model: &HostCostModel) -> Vec<(ExecConfig, f64)> {
    let mut rows = Vec::new();
    println!("# Figure 7: frame rate per configuration");
    println!("| configuration | fps | relative to bare-hw |");
    println!("|---|---|---|");
    let mut bare_fps = None;
    for config in ExecConfig::ALL {
        let result = small_scenario(config, quick).run();
        let player = result.players[1].clone();
        let frames = result.frames_rendered(&player);
        let host_s = model.host_seconds(
            config,
            result.guest_steps(&player),
            result.log_bytes(&player),
            &result.stats(&player),
        );
        let fps = frames as f64 / host_s.max(1e-9);
        if bare_fps.is_none() {
            bare_fps = Some(fps);
        }
        println!(
            "| {config} | {fps:.0} | {:.1}% |",
            100.0 * fps / bare_fps.unwrap()
        );
        rows.push((config, fps));
    }
    rows
}

/// Figure 8: frame rate with 0, 1 or 2 concurrent online audits per machine.
pub fn exp_online_audit_frame_rate(quick: bool, model: &HostCostModel) -> Vec<(u32, f64)> {
    let result = small_scenario(ExecConfig::AvmmRsa768, quick).run();
    let player = result.players[1].clone();
    let frames = result.frames_rendered(&player);
    let base_host_s = model.host_seconds(
        ExecConfig::AvmmRsa768,
        result.guest_steps(&player),
        result.log_bytes(&player),
        &result.stats(&player),
    );

    // An online audit replays another player's log while the game runs; the
    // replay cost adds to this machine's host time, partially absorbed by
    // otherwise-idle cores (the paper observes a smaller drop than 1/a).
    let audited = result.players[0].clone();
    let mut auditor = OnlineAuditor::new(
        &audited,
        &result.reference_client_images[0],
        &game_registry(),
    )
    .unwrap();
    auditor.feed(result.avmm(&audited).log().entries());
    auditor.finish();
    let replay_steps = auditor.steps_replayed();
    let replay_s = model.replay_seconds(replay_steps);
    // Idle-core absorption factor: only a fraction of the replay cost
    // contends with the render thread.
    let contention = 0.55;

    println!("# Figure 8: frame rate with online audits");
    println!("| audits per machine | fps |");
    println!("|---|---|");
    let mut rows = Vec::new();
    for audits in 0u32..=2 {
        let host_s = base_host_s + contention * replay_s * audits as f64;
        let fps = frames as f64 / host_s.max(1e-9);
        println!("| {audits} | {fps:.0} |");
        rows.push((audits, fps));
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 9 + §6.12: spot checking on the database workload
// ---------------------------------------------------------------------------

/// One row of the Figure 9 result.
#[derive(Debug, Clone, Copy)]
pub struct SpotCheckRow {
    /// Chunk size `k` (consecutive segments).
    pub k: u64,
    /// Replay cost relative to a full audit (entries replayed).
    pub relative_replay: f64,
    /// Data transferred relative to a full audit (raw bytes over the raw
    /// full-audit log download).
    pub relative_transfer: f64,
    /// Compressed data transferred relative to a *compressed* full audit —
    /// both sides of the ratio use the §6.12 transfer model (the prototype
    /// ships compressed snapshots and the audit tool compresses the log), so
    /// this is directly comparable to `relative_transfer`.
    pub relative_transfer_compressed: f64,
}

/// Figure 9 and §6.12: spot-check cost versus chunk size on the database
/// workload, plus snapshot size statistics.
pub fn exp_spotcheck(quick: bool) -> Vec<SpotCheckRow> {
    let registry = db_registry();
    let mut rng = StdRng::seed_from_u64(7);
    let scheme = SignatureScheme::Rsa(scenario_sig_bits(quick));
    let operator = Identity::generate(&mut rng, "db-host", scheme);
    let client = Identity::generate(&mut rng, "client", scheme);
    let cfg = DbConfig::new("client");
    let image = db_image(&cfg);
    let mut avmm = Avmm::new(
        "db-host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
    )
    .unwrap();
    avmm.add_peer("client", client.verifying_key());

    // Drive the sql-bench-style workload, snapshotting periodically.
    let rows = if quick { 60 } else { 400 };
    let snapshot_every = if quick { 40 } else { 200 };
    let mut workload = WorkloadGen::new(rows);
    let mut clock = HostClock::at(1_000);
    let mut msg_id = 0u64;
    let mut since_snapshot = 0u64;
    let mut snapshot_times = Vec::new();
    avmm.run_slice(&clock, 50_000).unwrap();
    while let Some(req) = workload.next_request() {
        msg_id += 1;
        clock.advance_to(clock.now() + 5_000);
        let payload = encode_guest_packet("db-host", &req.encode_to_vec());
        let env = Envelope::create(
            EnvelopeKind::Data,
            "client",
            "db-host",
            msg_id,
            payload,
            &client.signing_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 100_000).unwrap();
        since_snapshot += 1;
        if since_snapshot >= snapshot_every {
            let t = Instant::now();
            avmm.take_snapshot();
            snapshot_times.push(t.elapsed().as_secs_f64());
            since_snapshot = 0;
        }
    }
    let t = Instant::now();
    avmm.take_snapshot();
    snapshot_times.push(t.elapsed().as_secs_f64());

    // Full-audit baseline.
    let total_entries = avmm.log().len() as u64;
    let total_log_bytes = avmm.log().total_wire_size();
    // Compressed full-audit baseline: a full audit downloads the whole log
    // (no snapshot state — replay starts from the reference image), shipped
    // through the same compression model as the spot-check transfers.
    let total_log_compressed_bytes = avm_compress::CompressionStats::measure_stream(
        avmm.log().entries().iter().map(|e| e.encode_to_vec()),
        avm_core::spotcheck::TRANSFER_COMPRESSION,
    )
    .compressed_bytes;
    let n_snapshots = avmm.snapshots().len() as u64;

    println!("# §6.12 snapshots");
    println!(
        "snapshots: {n_snapshots}, avg capture time {:.4} s, memory bytes per snapshot: {}, incremental disk bytes: {:?}",
        snapshot_times.iter().sum::<f64>() / snapshot_times.len() as f64,
        avmm.snapshots().get(0).map(|s| s.memory_bytes()).unwrap_or(0),
        avmm.snapshots().all().iter().map(|s| s.disk_bytes()).collect::<Vec<_>>(),
    );
    println!(
        "content-addressed store: {} logical payload bytes held as {} unique bytes ({} blobs, {:.1}x dedup)",
        avmm.snapshots().logical_payload_bytes(),
        avmm.snapshots().stored_payload_bytes(),
        avmm.snapshots().unique_payloads(),
        avmm.snapshots().logical_payload_bytes() as f64
            / avmm.snapshots().stored_payload_bytes().max(1) as f64,
    );

    println!("# Figure 9: spot-check cost vs chunk size");
    println!(
        "| k | replay (relative) | transferred (relative) | transferred compressed (relative) |"
    );
    println!("|---|---|---|---|");
    let mut out = Vec::new();
    for k in [1u64, 2, 3] {
        if k >= n_snapshots {
            break;
        }
        // Average over all valid starting snapshots (excluding chunks that
        // start at the very beginning, as the paper does).
        let mut replays = Vec::new();
        let mut transfers = Vec::new();
        let mut transfers_compressed = Vec::new();
        for start in 1..n_snapshots.saturating_sub(k) {
            let report =
                spot_check(avmm.log(), avmm.snapshots(), start, k, &image, &registry).unwrap();
            if !report.consistent {
                if let Some(avm_core::error::FaultReason::EventDivergence { seq, .. })
                | Some(avm_core::error::FaultReason::OutputDivergence { seq, .. }) =
                    &report.fault
                {
                    for e in avmm
                        .log()
                        .entries()
                        .iter()
                        .filter(|e| e.seq + 6 > *seq && e.seq < seq + 3)
                    {
                        eprintln!(
                            "DBG seq={} kind={:?} len={}",
                            e.seq,
                            e.kind,
                            e.content.len()
                        );
                    }
                }
                panic!(
                    "honest chunk failed (start={start}, k={k}): {:?}",
                    report.fault
                );
            }
            replays.push(report.entries_replayed as f64 / total_entries as f64);
            transfers.push(report.total_transfer_bytes() as f64 / total_log_bytes as f64);
            transfers_compressed.push(
                report.total_transfer_compressed_bytes() as f64 / total_log_compressed_bytes as f64,
            );
        }
        if replays.is_empty() {
            continue;
        }
        let row = SpotCheckRow {
            k,
            relative_replay: replays.iter().sum::<f64>() / replays.len() as f64,
            relative_transfer: transfers.iter().sum::<f64>() / transfers.len() as f64,
            relative_transfer_compressed: transfers_compressed.iter().sum::<f64>()
                / transfers_compressed.len() as f64,
        };
        println!(
            "| {} | {:.2} | {:.2} | {:.2} |",
            row.k, row.relative_replay, row.relative_transfer, row.relative_transfer_compressed
        );
        out.push(row);
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 6 substrate: incremental state roots
// ---------------------------------------------------------------------------

/// One row of the incremental state-root experiment.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotIncRow {
    /// Guest memory size in pages.
    pub pages: usize,
    /// Pages dirtied between consecutive snapshots.
    pub dirty_per_snapshot: usize,
    /// Mean microseconds for a full uncached tree rebuild.
    pub full_us: f64,
    /// Mean microseconds for an incremental `StateTreeCache` refresh.
    pub incremental_us: f64,
    /// `full_us / incremental_us`.
    pub speedup: f64,
}

/// The reference image behind [`snapshot_machine`]: an idle guest with
/// `pages` of memory and a small disk.
pub fn snapshot_image(pages: usize, disk_blocks: usize) -> avm_vm::VmImage {
    use avm_vm::bytecode::assemble;
    use avm_vm::devices::DISK_BLOCK_SIZE;
    use avm_vm::{VmImage, PAGE_SIZE};
    let code = assemble("halt", 0).unwrap();
    VmImage::bytecode("fig6-snapshot", (pages * PAGE_SIZE) as u64, code, 0, 0)
        .with_disk(vec![0u8; disk_blocks * DISK_BLOCK_SIZE])
}

/// Builds an idle machine with `pages` of guest memory and a small disk,
/// used by the snapshot experiments and the `fig6_snapshot_incremental` and
/// `snapshot_dedup` bench groups.
pub fn snapshot_machine(pages: usize, disk_blocks: usize) -> avm_vm::Machine {
    use avm_vm::{GuestRegistry, Machine};
    Machine::from_image(&snapshot_image(pages, disk_blocks), &GuestRegistry::new()).unwrap()
}

/// Incremental versus full state-root cost as memory grows and the dirty
/// working set stays small — the snapshot half of the AVMM overhead that
/// figure 6 attributes CPU time to.
///
/// Every incremental root is cross-checked against the uncached rebuild, so
/// the experiment doubles as an end-to-end equivalence check.
pub fn exp_snapshot_incremental(quick: bool) -> Vec<SnapshotIncRow> {
    use avm_core::snapshot::{build_state_tree_uncached, StateTreeCache};
    use avm_vm::PAGE_SIZE;

    let configs: &[(usize, usize)] = if quick {
        &[(64, 1), (256, 1), (256, 8)]
    } else {
        &[(256, 1), (256, 8), (1024, 1), (1024, 16), (4096, 1)]
    };
    let iters = if quick { 10 } else { 40 };

    println!("# Figure 6 substrate: incremental state roots");
    println!("| pages | dirty/snap | full rebuild | incremental | speedup |");
    println!("|---|---|---|---|---|");
    let mut out = Vec::new();
    for &(pages, dirty) in configs {
        let mut m = snapshot_machine(pages, 16);
        let mut cache = StateTreeCache::new();
        cache.refresh(&m);
        m.memory_mut().clear_dirty();
        m.devices_mut().disk.clear_dirty();

        let mut incr_s = 0.0;
        let mut full_s = 0.0;
        let mut next_page = 0usize;
        for it in 0..iters {
            for d in 0..dirty {
                let page = (next_page + d) % pages;
                m.memory_mut()
                    .write_u8((page * PAGE_SIZE) as u64, it as u8)
                    .unwrap();
            }
            next_page += dirty;
            let t = Instant::now();
            let root = cache.refresh(&m);
            incr_s += t.elapsed().as_secs_f64();
            m.memory_mut().clear_dirty();
            m.devices_mut().disk.clear_dirty();

            let t = Instant::now();
            let full_root = build_state_tree_uncached(&m).root();
            full_s += t.elapsed().as_secs_f64();
            assert_eq!(root, full_root, "incremental root diverged from rebuild");
        }
        let row = SnapshotIncRow {
            pages,
            dirty_per_snapshot: dirty,
            full_us: full_s / iters as f64 * 1e6,
            incremental_us: incr_s / iters as f64 * 1e6,
            speedup: full_s / incr_s,
        };
        println!(
            "| {} | {} | {:.1} µs | {:.1} µs | {:.1}x |",
            row.pages, row.dirty_per_snapshot, row.full_us, row.incremental_us, row.speedup
        );
        out.push(row);
    }
    out
}

// ---------------------------------------------------------------------------
// §6.12 substrate: content-addressed snapshot storage + compressed transfer
// ---------------------------------------------------------------------------

/// Result of the snapshot dedup/compression experiment.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotDedupResult {
    /// Full-memory captures pushed into the store.
    pub captures: usize,
    /// Logical payload bytes across all captures (what a naive store holds).
    pub logical_bytes: u64,
    /// Unique payload bytes the content-addressed pool actually holds.
    pub stored_bytes: u64,
    /// Stored bytes at the end of the busy phase — the baseline the idle
    /// captures must not grow.
    pub stored_before_idle: u64,
    /// Raw transfer bytes to materialize the final snapshot.
    pub transfer_raw: u64,
    /// Compressed transfer bytes to materialize the final snapshot.
    pub transfer_compressed: u64,
}

/// §6.12 substrate: content-addressed snapshot storage and compression-aware
/// transfer modelling.
///
/// A guest with a small dirty working set takes repeated *full* memory
/// captures: the content-addressed pool stores O(unique pages), so idle
/// captures add ~0 bytes, and the modelled auditor download is reported both
/// raw and compressed (the paper ships compressed incremental snapshots).
/// Every materialization is authenticated against its recorded root, so the
/// experiment doubles as a round-trip check of the pooled storage.
pub fn exp_snapshot_dedup(quick: bool) -> SnapshotDedupResult {
    use avm_compress::CompressionLevel;
    use avm_core::snapshot::{capture_with_cache, SnapshotStore, StateTreeCache};
    use avm_vm::{GuestRegistry, PAGE_SIZE};

    let pages = if quick { 128 } else { 1024 };
    let idle_captures = if quick { 4 } else { 16 };
    let busy_captures = if quick { 3 } else { 8 };

    let mut m = snapshot_machine(pages, 16);
    let image = snapshot_image(pages, 16);
    let registry = GuestRegistry::new();
    let mut cache = StateTreeCache::new();
    let mut store = SnapshotStore::new();
    let mut id = 0u64;

    println!("# §6.12 substrate: content-addressed snapshots");
    println!("| capture | kind | logical bytes | stored bytes (cumulative) |");
    println!("|---|---|---|---|");
    let push = |store: &mut SnapshotStore,
                m: &mut avm_vm::Machine,
                cache: &mut StateTreeCache,
                id: &mut u64,
                kind: &str| {
        let snap = capture_with_cache(m, cache, *id, true);
        let logical = snap.total_bytes();
        store.push(snap);
        println!(
            "| {} | {} | {} | {} |",
            id,
            kind,
            logical,
            store.stored_payload_bytes()
        );
        *id += 1;
    };

    // Busy phase: dirty one page between full captures.
    for i in 0..busy_captures {
        m.memory_mut()
            .write_u8(((i % pages) * PAGE_SIZE) as u64, i as u8 + 1)
            .unwrap();
        push(&mut store, &mut m, &mut cache, &mut id, "busy");
    }
    let stored_before_idle = store.stored_payload_bytes();
    // Idle phase: repeated full captures with no guest activity.
    for _ in 0..idle_captures {
        push(&mut store, &mut m, &mut cache, &mut id, "idle");
    }
    assert_eq!(
        store.stored_payload_bytes(),
        stored_before_idle,
        "idle full captures must not grow the pool"
    );

    // Round trip every snapshot (materialize authenticates the state root)
    // and pin the accounting to the bytes materialization consumes.
    for sid in 0..id {
        let (_, consumed) = store
            .materialize_with_cost(sid, &image, &registry)
            .expect("pooled snapshot must round-trip");
        assert_eq!(consumed, store.transfer_bytes_upto(sid));
    }

    let cost = store.transfer_cost_upto(id - 1, CompressionLevel::Default);
    let result = SnapshotDedupResult {
        captures: id as usize,
        logical_bytes: store.logical_payload_bytes(),
        stored_bytes: store.stored_payload_bytes(),
        stored_before_idle,
        transfer_raw: cost.raw_bytes,
        transfer_compressed: cost.compressed_bytes,
    };
    println!(
        "logical: {} bytes  stored: {} bytes ({:.1}x dedup, {} unique blobs)",
        result.logical_bytes,
        result.stored_bytes,
        result.logical_bytes as f64 / result.stored_bytes.max(1) as f64,
        store.unique_payloads(),
    );
    println!(
        "auditor transfer to the final snapshot: raw {} bytes, compressed {} bytes ({:.1}x)",
        result.transfer_raw,
        result.transfer_compressed,
        cost.ratio(),
    );
    result
}

// ---------------------------------------------------------------------------
// §3.5 substrate: on-demand partial-state replay vs full snapshot downloads
// ---------------------------------------------------------------------------

/// Result of the on-demand transfer experiment: the three snapshot-transfer
/// models of §3.5 priced on one sparse-touch workload.
#[derive(Debug, Clone, Copy)]
pub struct OnDemandResult {
    /// Snapshots in the recorded chain.
    pub snapshots: u64,
    /// Full-dump download of the starting chain (raw / compressed).
    pub full_raw: u64,
    /// Compressed size of the full-dump download.
    pub full_compressed: u64,
    /// Digest-addressed full-state download (raw / compressed).
    pub dedup_raw: u64,
    /// Compressed size of the dedup download.
    pub dedup_compressed: u64,
    /// On-demand download: metadata + blobs replay actually touched.
    pub ondemand_raw: u64,
    /// Compressed size of the on-demand download.
    pub ondemand_compressed: u64,
    /// Memory chunks faulted in during the on-demand replay.
    pub chunks_faulted: u64,
    /// Staged (divergent) state the replay never touched — transfer saved.
    pub untouched_staged: u64,
    /// Blobs re-downloaded by an identical second check against the same
    /// auditor cache (must be zero).
    pub warm_refetches: u64,
    /// Whether full and on-demand replay agreed on the verdict.
    pub verdicts_agree: bool,
}

/// A guest with a large, sparsely-touched memory: packet `i` bumps a counter
/// in page `i % touch_pages` of a dedicated region and mirrors it to disk
/// block `i % 8`, so the divergent state grows with the run while any one
/// log segment touches only a couple of pages.
fn sparse_touch_image(pages: usize) -> avm_vm::VmImage {
    use avm_vm::bytecode::assemble;
    use avm_vm::devices::DISK_BLOCK_SIZE;
    use avm_vm::{VmImage, PAGE_SIZE};
    let src = r"
            movi r1, 0x8000     ; rx buffer
            movi r2, 64         ; max len
            movi r5, 0x40000    ; touch region base (page 64)
        loop:
            recv r0, r1, r2
            cmp r0, r6
            jne got
            idle
            jmp loop
        got:
            loadb r3, r1, 5     ; page selector (body starts after the
                                ; 5-byte 'host' addressing header)
            movi r4, 4096
            mul r3, r4
            add r3, r5          ; target = base + sel * 4096
            load r7, r3
            addi r7, 1
            store r7, r3        ; bump the page's counter
            store r7, r3, 512   ; and scatter it twice more so the page
            store r7, r3, 1024  ; compresses like real data, not zeroes
            movi r4, 8
            loadb r8, r1, 6     ; disk block selector byte
            movi r9, 4096
            mul r8, r9
            diskwr r8, r3, r4   ; mirror 8 bytes to the selected block
            jmp loop
        ";
    VmImage::bytecode(
        "sparse-touch",
        (pages * PAGE_SIZE) as u64,
        assemble(src, 0).unwrap(),
        0,
        0,
    )
    .with_disk(vec![0u8; 8 * DISK_BLOCK_SIZE])
}

/// §3.5 substrate: spot-check transfer cost under the three download models
/// — full snapshot dump, digest-addressed dedup transfer, and on-demand
/// partial-state replay — on a sparse-touch workload.
///
/// Reproduces the claim that an auditor who "incrementally request\[s\] the
/// parts of the state that are accessed" downloads strictly less than any
/// full-state download: the chain accumulates divergent pages the chunk's
/// replay never touches.
pub fn exp_ondemand(quick: bool) -> OnDemandResult {
    use avm_core::ondemand::AuditorBlobCache;
    use avm_core::spotcheck::{spot_check, spot_check_on_demand};
    use avm_vm::GuestRegistry;

    let registry = GuestRegistry::new();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(11);
    let operator = Identity::generate(&mut rng, "host", scheme);
    let client = Identity::generate(&mut rng, "client", scheme);
    let pages = if quick { 96 } else { 192 };
    let touch_pages = if quick { 24 } else { 96 };
    let n_snapshots: u64 = if quick { 6 } else { 12 };
    let image = sparse_touch_image(pages);
    let mut avmm = Avmm::new(
        "host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
    )
    .unwrap();
    avmm.add_peer("client", client.verifying_key());

    // One packet (touching one fresh page + one disk block) per snapshot.
    let mut clock = HostClock::at(1_000);
    avmm.run_slice(&clock, 50_000).unwrap();
    for i in 0..n_snapshots {
        clock.advance_to(clock.now() + 2_000);
        let sel = (i % touch_pages as u64) as u8;
        let payload = encode_guest_packet("host", &[sel, (i % 8) as u8]);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "client",
            "host",
            i + 1,
            payload,
            &client.signing_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 100_000).unwrap();
        avmm.take_snapshot();
    }

    // Fig. 9-style table: one row per k, averaged over starting snapshots,
    // with the three §3.5 transfer models side by side.  Each row uses fresh
    // caches so averaging is not polluted by earlier rows' downloads.
    println!("# §3.5 substrate: snapshot transfer models (sparse-touch workload)");
    println!("| k | full dump (raw/comp) | dedup transfer (raw/comp) | on-demand (raw/comp) |");
    println!("|---|---|---|---|");
    for k in [1u64, 2] {
        let mut cols = [0u64; 6];
        let mut rows = 0u64;
        for start in 1..n_snapshots.saturating_sub(k) {
            let mut fresh = AuditorBlobCache::new();
            let report = spot_check_on_demand(
                avmm.log(),
                avmm.snapshots(),
                start,
                k,
                &image,
                &registry,
                &mut fresh,
            )
            .unwrap();
            assert!(report.consistent, "honest chunk ({start},{k}) failed");
            let od = report.on_demand.as_ref().unwrap();
            cols[0] += report.snapshot_transfer_bytes;
            cols[1] += report.snapshot_transfer_compressed_bytes;
            cols[2] += report.snapshot_transfer_dedup_bytes;
            cols[3] += report.snapshot_transfer_dedup_compressed_bytes;
            cols[4] += od.transfer_bytes();
            cols[5] += od.transfer_compressed_bytes();
            rows += 1;
        }
        if rows == 0 {
            continue;
        }
        println!(
            "| {} | {} / {} | {} / {} | {} / {} |",
            k,
            cols[0] / rows,
            cols[1] / rows,
            cols[2] / rows,
            cols[3] / rows,
            cols[4] / rows,
            cols[5] / rows,
        );
    }

    // Headline comparison: one mid-chain chunk, all three models, plus the
    // full-replay verdict cross-check and the warm-cache property.
    let start = n_snapshots - 2;
    let k = 1;
    let full_report =
        spot_check(avmm.log(), avmm.snapshots(), start, k, &image, &registry).unwrap();
    let mut cache = AuditorBlobCache::new();
    let od_report = spot_check_on_demand(
        avmm.log(),
        avmm.snapshots(),
        start,
        k,
        &image,
        &registry,
        &mut cache,
    )
    .unwrap();
    let cost = od_report.on_demand.as_ref().unwrap();
    let warm = spot_check_on_demand(
        avmm.log(),
        avmm.snapshots(),
        start,
        k,
        &image,
        &registry,
        &mut cache,
    )
    .unwrap();
    let warm_refetches = warm.on_demand.as_ref().unwrap().fetched.len() as u64;

    let result = OnDemandResult {
        snapshots: n_snapshots,
        full_raw: full_report.snapshot_transfer_bytes,
        full_compressed: full_report.snapshot_transfer_compressed_bytes,
        dedup_raw: od_report.snapshot_transfer_dedup_bytes,
        dedup_compressed: od_report.snapshot_transfer_dedup_compressed_bytes,
        ondemand_raw: cost.transfer_bytes(),
        ondemand_compressed: cost.transfer_compressed_bytes(),
        chunks_faulted: cost.chunks_faulted,
        untouched_staged: cost.untouched_staged,
        warm_refetches,
        verdicts_agree: full_report.consistent == od_report.consistent
            && full_report.entries_replayed == od_report.entries_replayed,
    };
    println!(
        "\nchunk (start={start}, k={k}): full dump {} B ({} B compressed), dedup {} B ({} B), on-demand {} B ({} B)",
        result.full_raw,
        result.full_compressed,
        result.dedup_raw,
        result.dedup_compressed,
        result.ondemand_raw,
        result.ondemand_compressed,
    );
    println!(
        "on-demand faulted {} chunks + {} blocks; {} staged divergent chunks/blocks were never touched (transfer saved)",
        cost.chunks_faulted, cost.blocks_faulted, cost.untouched_staged,
    );
    println!(
        "warm-cache re-check fetched {} blobs; verdicts agree: {}",
        warm_refetches, result.verdicts_agree,
    );
    result
}

// ---------------------------------------------------------------------------
// Chunk-granular state pipeline: sub-page accounting end-to-end
// ---------------------------------------------------------------------------

/// Result of the chunk-granularity experiment: the same sparse-writer
/// recording accounted at 512 B chunk granularity (what the pipeline does)
/// and at 4 KiB page granularity (what it would have cost before the
/// chunk refactor).
#[derive(Debug, Clone, Copy)]
pub struct ChunkedResult {
    /// Snapshots in the recorded chain.
    pub snapshots: u64,
    /// Logical bytes of the incremental snapshot chain, chunk-granular.
    pub chunk_logical_bytes: u64,
    /// What the same chain would have carried at page granularity (each
    /// capture ships every page with at least one dirty chunk).
    pub page_logical_bytes: u64,
    /// Unique payload bytes the chunk-granular content pool holds.
    pub chunk_stored_bytes: u64,
    /// Unique payload bytes a page-granular pool would hold for the same
    /// captures (shadow-interned page contents).
    pub page_stored_bytes: u64,
    /// On-demand replay download (manifest + faulted 512 B chunk blobs).
    pub chunk_ondemand_bytes: u64,
    /// Page-granular equivalent of the same replay: page-ref manifest plus
    /// one whole page per faulted divergent page.
    pub page_ondemand_bytes: u64,
    /// Round trips of the spot check's batched on-demand blob exchange.
    pub rtts_batched: u64,
    /// Round trips a fault-at-a-time auditor would have paid.
    pub rtts_unbatched: u64,
    /// Modelled latency (µs) of the batched exchange under `TRANSFER_RTT`.
    pub latency_batched_us: u64,
    /// Modelled latency (µs) of the unbatched exchange.
    pub latency_unbatched_us: u64,
    /// Payload bytes freed by pruning the first half of the chain.
    pub pruned_freed_bytes: u64,
    /// Whether the on-demand spot check agreed with the full-download one.
    pub verdicts_agree: bool,
}

/// A sparse writer: each packet bumps an 8-byte counter in the page selected
/// by the payload (dirtying exactly one 512 B chunk) and mirrors it to one
/// disk block — the workload §3.5/§6.12 predict benefits most from sub-page
/// accountability.
fn sparse_writer_image(pages: usize) -> avm_vm::VmImage {
    use avm_vm::bytecode::assemble;
    use avm_vm::devices::DISK_BLOCK_SIZE;
    use avm_vm::{VmImage, PAGE_SIZE};
    let src = r"
            movi r1, 0x8000     ; rx buffer
            movi r2, 64         ; max len
            movi r5, 0x40000    ; touch region base (page 64)
        loop:
            recv r0, r1, r2
            cmp r0, r6
            jne got
            idle
            jmp loop
        got:
            loadb r3, r1, 5     ; page selector (body starts after the
                                ; 5-byte 'host' addressing header)
            movi r4, 4096
            mul r3, r4
            add r3, r5          ; target = base + sel * 4096
            load r7, r3
            addi r7, 1
            store r7, r3        ; 8-byte bump: exactly one dirty chunk
            movi r4, 8
            loadb r8, r1, 6     ; disk block selector byte
            movi r9, 4096
            mul r8, r9
            diskwr r8, r3, r4
            jmp loop
        ";
    VmImage::bytecode(
        "sparse-writer",
        (pages * PAGE_SIZE) as u64,
        assemble(src, 0).unwrap(),
        0,
        0,
    )
    .with_disk(vec![0u8; 8 * DISK_BLOCK_SIZE])
}

/// Chunk-granular state pipeline end-to-end: records a sparse writer with
/// incremental snapshots and compares every stage — snapshot payloads, the
/// content-addressed pool, and on-demand replay transfer — against the
/// page-granular equivalents, plus the batched-vs-unbatched round-trip
/// accounting of the blob exchange and a retention prune.
///
/// The page-granular numbers are modelled from the same recording: a page
/// pipeline would ship/store every 4 KiB page containing at least one dirty
/// chunk (shadow-interned by content so its pool dedups the same way), and
/// an on-demand page auditor would fault whole pages where ours faults
/// 512 B chunks.  The acceptance bar is strict inequality on snapshot
/// stored bytes and on-demand transfer bytes.
pub fn exp_chunked(quick: bool) -> ChunkedResult {
    use avm_core::ondemand::AuditorBlobCache;
    use avm_core::replay::{ReplayOutcome, Replayer};
    use avm_core::snapshot::SNAPSHOT_HEADER_BYTES;
    use avm_core::spotcheck::{
        snapshot_positions, spot_check, spot_check_on_demand, TRANSFER_COMPRESSION, TRANSFER_RTT,
    };
    use avm_crypto::sha256::sha256;
    use avm_vm::{GuestRegistry, CHUNKS_PER_PAGE, PAGE_SIZE};
    use std::collections::{HashMap, HashSet};

    let registry = GuestRegistry::new();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(23);
    let operator = Identity::generate(&mut rng, "host", scheme);
    let client = Identity::generate(&mut rng, "client", scheme);
    let pages = if quick { 96 } else { 192 };
    // Selectors cycle over a small page set so a replayed segment revisits
    // pages that already diverged at its starting snapshot — the faults a
    // §3.5 auditor actually pays for.
    let touch_pages = if quick { 6 } else { 12 };
    let n_snapshots: u64 = if quick { 8 } else { 16 };
    let image = sparse_writer_image(pages);
    let mut avmm = Avmm::new(
        "host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default()
            .with_scheme(scheme)
            .with_incremental_snapshots(),
    )
    .unwrap();
    avmm.add_peer("client", client.verifying_key());

    // Record: one packet (8 bytes into one fresh page + one disk block) per
    // snapshot, tracking per capture what a page-granular pipeline would
    // have shipped (logical) and pooled (stored, shadow-interned by page
    // content so it dedups exactly like the real pool).
    let mut clock = HostClock::at(1_000);
    avmm.run_slice(&clock, 50_000).unwrap();
    let mut chunk_logical = 0u64;
    let mut page_logical = 0u64;
    let mut page_pool: HashMap<avm_crypto::sha256::Digest, u64> = HashMap::new();
    println!("# Chunk-granular state pipeline (sparse writer)");
    println!("| snapshot | chunks carried | chunk bytes | page-equivalent bytes |");
    println!("|---|---|---|---|");
    for i in 0..n_snapshots {
        clock.advance_to(clock.now() + 2_000);
        let sel = (i % touch_pages as u64) as u8;
        let payload = encode_guest_packet("host", &[sel, (i % 8) as u8]);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "client",
            "host",
            i + 1,
            payload,
            &client.signing_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 100_000).unwrap();
        let snap_id = avmm.take_snapshot().id;
        let snap = avmm.snapshots().get(snap_id).unwrap();
        let dirty_pages: HashSet<usize> = snap
            .mem_chunk_refs()
            .iter()
            .map(|(idx, _)| *idx as usize / CHUNKS_PER_PAGE)
            .collect();
        let snap_page_logical = dirty_pages.len() as u64 * (PAGE_SIZE as u64 + 4)
            + snap.disk_bytes()
            + snap.disk_block_refs().len() as u64 * 4
            + SNAPSHOT_HEADER_BYTES
            + snap.cpu_state.len() as u64
            + snap.dev_state.len() as u64;
        chunk_logical += snap.total_bytes();
        page_logical += snap_page_logical;
        // Shadow page pool: contents are unchanged since the capture (the
        // guest idles between packets), so reading them now is exact.
        for p in &dirty_pages {
            let content = avmm.machine().memory().page(*p).expect("page in range");
            page_pool.entry(sha256(content)).or_insert(PAGE_SIZE as u64);
        }
        println!(
            "| {} | {} | {} | {} |",
            snap_id,
            snap.chunk_count(),
            snap.total_bytes(),
            snap_page_logical
        );
    }
    let chunk_stored = avmm.snapshots().stored_payload_bytes();
    let page_stored: u64 = page_pool.values().sum();

    // On-demand replay of one mid-chain chunk, chunk faults vs the pages a
    // page-granular auditor would have pulled for the same accesses.  The
    // replayed packets revisit pages that diverged before `start`, so the
    // session fetches several remote chunk blobs.
    let start = n_snapshots - 3;
    let k = 2u64;
    let positions = snapshot_positions(avmm.log()).expect("well-formed log");
    let start_pos = positions.iter().find(|(_, id, _)| *id == start).unwrap().0;
    let end_pos = positions
        .iter()
        .find(|(_, id, _)| *id == start + k)
        .map(|(i, _, _)| *i);
    let entries = match end_pos {
        Some(end) => &avmm.log().entries()[start_pos + 1..=end],
        None => &avmm.log().entries()[start_pos + 1..],
    };
    let fresh = AuditorBlobCache::new();
    let (mut replayer, session) =
        Replayer::from_snapshot_on_demand(&image, &registry, avmm.snapshots(), start, &fresh)
            .unwrap();
    let outcome = replayer.replay(entries);
    assert!(
        matches!(outcome, ReplayOutcome::Consistent(_)),
        "honest chunk must replay: {outcome:?}"
    );
    let faulted_pages: HashSet<usize> = replayer
        .machine()
        .memory()
        .faulted_chunks()
        .iter()
        .map(|c| c / CHUNKS_PER_PAGE)
        .collect();
    let mut settle_cache = AuditorBlobCache::new();
    let cost = session
        .finish(
            replayer.machine(),
            avmm.snapshots(),
            &mut settle_cache,
            TRANSFER_COMPRESSION,
        )
        .unwrap();
    let chunk_ondemand = cost.transfer_bytes();
    // Page-granular equivalent: the manifest carries one 36-byte ref per
    // divergent page instead of per divergent chunk, and every faulted
    // divergent page ships whole (its counter makes it non-derivable).
    let manifest = avmm.snapshots().chain_manifest_upto(start).unwrap();
    let manifest_pages: HashSet<usize> = manifest
        .mem_refs
        .iter()
        .map(|(idx, _)| *idx as usize / CHUNKS_PER_PAGE)
        .collect();
    let page_manifest_bytes = cost.manifest_bytes - manifest.mem_refs.len() as u64 * 36
        + manifest_pages.len() as u64 * 36;
    let page_ondemand = page_manifest_bytes + faulted_pages.len() as u64 * (PAGE_SIZE as u64 + 4);

    // Round-trip accounting through the spot-check surface (fresh cache so
    // nothing is subsidised), plus the verdict cross-check.
    let full_report =
        spot_check(avmm.log(), avmm.snapshots(), start, k, &image, &registry).unwrap();
    let mut od_cache = AuditorBlobCache::new();
    let od_report = spot_check_on_demand(
        avmm.log(),
        avmm.snapshots(),
        start,
        k,
        &image,
        &registry,
        &mut od_cache,
    )
    .unwrap();
    let rtts_batched = od_report.on_demand_round_trips().unwrap();
    let rtts_unbatched = od_report.on_demand_round_trips_unbatched().unwrap();
    let latency_batched_us = od_report.on_demand_latency_micros(&TRANSFER_RTT).unwrap();
    let latency_unbatched_us = od_report
        .on_demand_latency_micros_unbatched(&TRANSFER_RTT)
        .unwrap();

    // Retention: prune the first half of the chain; surviving snapshots keep
    // materializing (authenticated internally) while unreferenced chunk
    // blobs are evicted.
    let mut pruned = avmm.snapshots().clone();
    let freed = pruned.prune_upto(n_snapshots / 2).unwrap();
    for id in (n_snapshots / 2)..n_snapshots {
        pruned
            .materialize(id, &image, &registry)
            .expect("surviving snapshot must materialize after prune");
    }

    let result = ChunkedResult {
        snapshots: n_snapshots,
        chunk_logical_bytes: chunk_logical,
        page_logical_bytes: page_logical,
        chunk_stored_bytes: chunk_stored,
        page_stored_bytes: page_stored,
        chunk_ondemand_bytes: chunk_ondemand,
        page_ondemand_bytes: page_ondemand,
        rtts_batched,
        rtts_unbatched,
        latency_batched_us,
        latency_unbatched_us,
        pruned_freed_bytes: freed,
        verdicts_agree: full_report.consistent == od_report.consistent
            && full_report.entries_replayed == od_report.entries_replayed,
    };
    println!(
        "\nsnapshot chain: {} B chunk-granular vs {} B page-equivalent ({:.1}x)",
        result.chunk_logical_bytes,
        result.page_logical_bytes,
        result.page_logical_bytes as f64 / result.chunk_logical_bytes.max(1) as f64,
    );
    println!(
        "pool stored: {} B chunk-granular vs {} B page-equivalent ({:.1}x)",
        result.chunk_stored_bytes,
        result.page_stored_bytes,
        result.page_stored_bytes as f64 / result.chunk_stored_bytes.max(1) as f64,
    );
    println!(
        "on-demand chunk ({start},k={k}): {} B chunk-granular ({} chunks faulted) vs {} B page-equivalent ({} pages)",
        result.chunk_ondemand_bytes,
        cost.chunks_faulted,
        result.page_ondemand_bytes,
        faulted_pages.len(),
    );
    println!(
        "blob exchange round trips: {} batched vs {} unbatched ({} µs vs {} µs modelled)",
        result.rtts_batched,
        result.rtts_unbatched,
        result.latency_batched_us,
        result.latency_unbatched_us,
    );
    println!(
        "prune_upto({}) freed {} B of pooled payload; later snapshots still authenticate",
        n_snapshots / 2,
        result.pruned_freed_bytes,
    );
    result
}

// ---------------------------------------------------------------------------
// Networked audit endpoints: one protocol, modelled vs measured latency
// ---------------------------------------------------------------------------

/// Result of the networked-audit experiment: the same spot check driven
/// in-process, over an RTT-modelled direct transport, and over the simulated
/// network (clean and lossy links).
#[derive(Debug, Clone, Copy)]
pub struct NetAuditResult {
    /// Whether the SimNet-driven check's verdict, faults and transfer
    /// accounting equal the in-process path's, field for field (on-demand
    /// mode, lossless link).
    pub semantic_match_clean: bool,
    /// The same equality on the deterministically lossy link.
    pub semantic_match_lossy: bool,
    /// The same equality for the full-download mode over the clean link.
    pub semantic_match_full: bool,
    /// Measured simulated latency of the clean-link check (µs).
    pub measured_clean_us: u64,
    /// What a `DirectTransport` priced under the link's `RttModel` charges
    /// for the same exchanges (µs) — equal to the measurement by design.
    pub direct_modelled_us: u64,
    /// Single-call `RttModel` prediction for the same exchanges (µs).
    pub predicted_us: u64,
    /// Whether measured and predicted agree within 1%.
    pub within_one_percent: bool,
    /// Measured simulated latency of the lossy-link check (µs).
    pub measured_lossy_us: u64,
    /// Requests retransmitted on the lossy link.
    pub retransmissions_lossy: u64,
}

/// Networked audit: drives the *same* §3.5 on-demand spot check through
/// every transport the endpoint API offers and compares them — the verdicts
/// and transfer accounting must be identical everywhere, the clean-link
/// simulated latency must match the `RttModel` prediction (within 1%; the
/// per-packet-priced direct transport matches it exactly), and the lossy
/// link must complete correctly via timeout-and-retransmit, paying for every
/// retry in wire bytes and simulated wall time.
pub fn exp_netaudit(quick: bool) -> NetAuditResult {
    use avm_core::endpoint::{AuditClient, AuditServer, DirectTransport, SimNetTransport};
    use avm_core::ondemand::AuditorBlobCache;
    use avm_core::spotcheck::{spot_check, spot_check_on_demand};
    use avm_net::LinkConfig;
    use avm_vm::GuestRegistry;

    let registry = GuestRegistry::new();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(13);
    let operator = Identity::generate(&mut rng, "host", scheme);
    let client_id = Identity::generate(&mut rng, "client", scheme);
    // The sparse-touch guest writes into pages 64..64+touch_pages, so the
    // image must extend past that region.
    let pages = if quick { 96 } else { 128 };
    let touch_pages = if quick { 16 } else { 48 };
    let n_snapshots: u64 = if quick { 5 } else { 10 };
    let image = sparse_touch_image(pages);
    let mut avmm = Avmm::new(
        "host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
    )
    .unwrap();
    avmm.add_peer("client", client_id.verifying_key());
    let mut clock = HostClock::at(1_000);
    avmm.run_slice(&clock, 50_000).unwrap();
    for i in 0..n_snapshots {
        clock.advance_to(clock.now() + 2_000);
        let sel = (i % touch_pages as u64) as u8;
        let payload = encode_guest_packet("host", &[sel, (i % 8) as u8]);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "client",
            "host",
            i + 1,
            payload,
            &client_id.signing_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 100_000).unwrap();
        avmm.take_snapshot();
    }

    let start = n_snapshots - 2;
    let k = 1u64;
    let link = LinkConfig::default();
    // Few enough packets cross per direction that a sparse drop pattern
    // would never fire; every-2nd-packet loss exercises retransmission on
    // both the request and the response path.
    let lossy_link = LinkConfig {
        drop_every: 2,
        ..link
    };

    // 1. In-process baseline (free-function wrapper over DirectTransport).
    let mut free_cache = AuditorBlobCache::new();
    let baseline = spot_check_on_demand(
        avmm.log(),
        avmm.snapshots(),
        start,
        k,
        &image,
        &registry,
        &mut free_cache,
    )
    .unwrap();
    assert!(baseline.consistent, "honest chunk must pass");

    // 2. Direct transport priced under the link's RttModel.
    let mut direct = AuditClient::new(DirectTransport::with_model(
        AuditServer::new(avmm.log(), avmm.snapshots()),
        link.rtt_model(),
    ));
    let direct_report = direct
        .spot_check_on_demand(start, k, &image, &registry)
        .unwrap();

    // 3. The simulated network, lossless LAN.
    let mut clean = AuditClient::new(SimNetTransport::new(
        AuditServer::new(avmm.log(), avmm.snapshots()),
        link,
    ));
    let clean_report = clean
        .spot_check_on_demand(start, k, &image, &registry)
        .unwrap();

    // 4. The simulated network, deterministically lossy link.
    let mut lossy = AuditClient::new(SimNetTransport::new(
        AuditServer::new(avmm.log(), avmm.snapshots()),
        lossy_link,
    ));
    let lossy_report = lossy
        .spot_check_on_demand(start, k, &image, &registry)
        .unwrap();

    // 5. Full-download mode: in-process vs simulated network.
    let full_baseline =
        spot_check(avmm.log(), avmm.snapshots(), start, k, &image, &registry).unwrap();
    let mut full_net = AuditClient::new(SimNetTransport::new(
        AuditServer::new(avmm.log(), avmm.snapshots()),
        link,
    ));
    let full_net_report = full_net.spot_check(start, k, &image, &registry).unwrap();

    let semantic_match_clean = baseline.semantic() == clean_report.semantic()
        && baseline.semantic() == direct_report.semantic();
    let semantic_match_lossy = baseline.semantic() == lossy_report.semantic();
    let semantic_match_full = full_baseline.semantic() == full_net_report.semantic();
    let measured_clean_us = clean_report.measured_latency_micros();
    let direct_modelled_us = direct_report.measured_latency_micros();
    let predicted_us = clean_report.predicted_latency_micros(&link.rtt_model());
    let within_one_percent = measured_clean_us.abs_diff(predicted_us) * 100 <= predicted_us;
    let measured_lossy_us = lossy_report.measured_latency_micros();
    let retransmissions_lossy = lossy_report.transport.retransmissions;

    assert!(semantic_match_clean, "SimNet check must equal in-process");
    assert!(semantic_match_lossy, "loss must not change the audit");
    assert!(semantic_match_full, "full-download mode must match too");
    assert_eq!(
        measured_clean_us, direct_modelled_us,
        "per-packet model pricing must equal the lossless simulation"
    );
    assert!(
        within_one_percent,
        "measured {measured_clean_us} µs vs predicted {predicted_us} µs"
    );
    assert_eq!(clean_report.transport.retransmissions, 0);
    assert!(retransmissions_lossy > 0, "drop-every-2 must force retries");
    assert!(measured_lossy_us > measured_clean_us);

    println!(
        "# Networked audit: one protocol over pluggable transports (chunk start={start}, k={k})"
    );
    println!("| path | round trips | wire bytes (req/resp) | retransmits | latency µs |");
    println!("|---|---|---|---|---|");
    for (label, report) in [
        ("direct (RttModel-priced)", &direct_report),
        ("simnet LAN (lossless)", &clean_report),
        ("simnet LAN (drop every 2nd)", &lossy_report),
        ("simnet LAN, full download", &full_net_report),
    ] {
        let t = report.transport;
        println!(
            "| {label} | {} | {} / {} | {} | {} |",
            t.round_trips, t.request_bytes, t.response_bytes, t.retransmissions, t.elapsed_micros,
        );
    }
    println!(
        "\nclean-link measurement {measured_clean_us} µs vs single-call RttModel prediction \
         {predicted_us} µs (within 1%: {within_one_percent}); lossy link finished correctly \
         after {retransmissions_lossy} retransmissions in {measured_lossy_us} µs",
    );
    println!(
        "verdict/accounting identical across transports: on-demand {}, lossy {}, full {}",
        semantic_match_clean, semantic_match_lossy, semantic_match_full,
    );

    NetAuditResult {
        semantic_match_clean,
        semantic_match_lossy,
        semantic_match_full,
        measured_clean_us,
        direct_modelled_us,
        predicted_us,
        within_one_percent,
        measured_lossy_us,
        retransmissions_lossy,
    }
}

// ---------------------------------------------------------------------------
// Durable accountability: fsync policies + crash recovery (avm-store/persist)
// ---------------------------------------------------------------------------

/// One fsync-policy row of the `persist` experiment: the durable write-path
/// counters for an identical recording workload.
#[derive(Debug, Clone, Copy)]
pub struct PersistPolicyRow {
    /// Table/JSON label: `per_entry`, `per_batch`, `per_seal`, or the SSD
    /// contrast row `per_entry_ssd`.
    pub label: &'static str,
    /// fsyncs issued by the segment and arena writers together.
    pub syncs: u64,
    /// Bytes appended (framing included), segments + arenas.
    pub appended_bytes: u64,
    /// Accumulated modelled sync time, in microseconds.
    pub modelled_sync_micros: u64,
}

/// Result of the `persist` experiment.
#[derive(Debug, Clone)]
pub struct PersistResult {
    /// One row per sync policy under the 2010-era disk model, plus the
    /// `per_entry_ssd` contrast row — all over the identical workload.
    pub policies: Vec<PersistPolicyRow>,
    /// Recovery report after a clean shutdown (preceded by a prune, so the
    /// arena numbers reflect compaction).
    pub clean: RecoveryReport,
    /// Recovery report after a mid-write crash.
    pub crash: RecoveryReport,
    /// Wall-clock time of the clean recovery (µs).
    pub wall_recovery_clean_us: u64,
    /// Wall-clock time of the crash recovery (µs).
    pub wall_recovery_crash_us: u64,
    /// Whether the post-recovery spot check equals the pre-shutdown one,
    /// field for field (verdict, roots, transfer accounting).
    pub audit_identical_after_clean_recovery: bool,
    /// Whether the crash-recovered provider still passes a spot check.
    pub audit_consistent_after_crash_recovery: bool,
}

/// The store configuration the `persist` experiment runs under: small
/// segments/arenas so rotation and sealing actually happen at quick scale.
fn persist_cfg(policy: SyncPolicy, model: FsyncModel) -> PersistConfig {
    PersistConfig {
        segments: SegmentConfig {
            max_segment_bytes: 16 * 1024,
            seal_every_entries: 8,
            sync_policy: policy,
            fsync_model: model,
        },
        arenas: ArenaConfig {
            max_arena_bytes: 64 * 1024,
            fsync_model: model,
        },
    }
}

/// Drives the standard persist workload: `rounds` iterations of deliver a
/// sparse-touch packet, run, snapshot — every event mirrored to storage.
fn drive_persist_workload(
    provider: &mut Provider<SimStorage>,
    client: &Identity,
    rounds: u64,
    touch_pages: u64,
) -> Result<(), avm_core::persist::PersistError> {
    let mut clock = HostClock::at(1_000);
    provider.run_slice(&clock, 50_000)?;
    for i in 0..rounds {
        clock.advance_to(clock.now() + 2_000);
        let payload = encode_guest_packet("host", &[(i % touch_pages) as u8, (i % 8) as u8]);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "client",
            "host",
            i + 1,
            payload,
            &client.signing_key,
            None,
        );
        provider.deliver(&env)?;
        provider.run_slice(&clock, 100_000)?;
        provider.take_snapshot()?;
    }
    Ok(())
}

/// Spot-checks one chunk of a durable provider through its audit endpoint —
/// the report is served from the persisted segment image, exactly what an
/// auditor would see after the provider restarts.
fn spot_check_durable(
    provider: &Provider<SimStorage>,
    image: &avm_vm::VmImage,
    start: u64,
) -> avm_core::spotcheck::SpotCheckReport {
    use avm_core::endpoint::{AuditClient, DirectTransport};
    let mut client = AuditClient::new(DirectTransport::new(provider.audit_server()));
    client
        .spot_check(start, 1, image, &avm_vm::GuestRegistry::new())
        .unwrap()
}

/// Builds the persist workload once (clean shutdown, `rounds` snapshots) and
/// returns what is needed to recover a provider from it — the substrate of
/// the `persist` criterion group, which times `Provider::recover` alone.
pub fn persist_demo_storage(
    rounds: u64,
) -> (
    SimStorage,
    avm_vm::VmImage,
    avm_crypto::keys::SigningKey,
    PersistConfig,
) {
    let registry = avm_vm::GuestRegistry::new();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(29);
    let operator = Identity::generate(&mut rng, "host", scheme);
    let client = Identity::generate(&mut rng, "client", scheme);
    let image = sparse_touch_image(96);
    let cfg = persist_cfg(SyncPolicy::PerBatch, FsyncModel::DISK_2010);
    let storage = SimStorage::new();
    let mut provider = Provider::create(
        storage.clone(),
        "host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
        cfg,
    )
    .unwrap();
    provider.add_peer("client", client.verifying_key());
    drive_persist_workload(&mut provider, &client, rounds, 16).unwrap();
    (storage, image, operator.signing_key, cfg)
}

/// Durable accountability (ROADMAP; paper §3 — the log *is* the evidence):
/// the recording AVMM mirrored to append-only log segments and blob arenas.
/// Measures the per-entry / per-batch / per-seal fsync trade-off under the
/// modelled 2010-era disk (plus an SSD contrast row), then kills and
/// recovers the provider twice — once after a clean shutdown, once mid-write
/// — timing recovery and checking the recovered audits: a clean restart must
/// produce spot checks identical to the pre-shutdown provider's, and a crash
/// recovery must truncate the torn tail and still pass.
pub fn exp_persist(quick: bool) -> PersistResult {
    use avm_vm::GuestRegistry;

    let registry = GuestRegistry::new();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(29);
    let operator = Identity::generate(&mut rng, "host", scheme);
    let client = Identity::generate(&mut rng, "client", scheme);
    let pages = if quick { 96 } else { 128 };
    let touch_pages: u64 = if quick { 16 } else { 48 };
    let rounds: u64 = if quick { 5 } else { 12 };
    let image = sparse_touch_image(pages);
    let options = || AvmmOptions::default().with_scheme(scheme);
    let fresh_provider = |cfg: PersistConfig, storage: SimStorage| {
        let mut p = Provider::create(
            storage,
            "host",
            &image,
            &registry,
            operator.signing_key.clone(),
            options(),
            cfg,
        )
        .unwrap();
        p.add_peer("client", client.verifying_key());
        p
    };

    // 1. The fsync-policy trade-off: the identical workload under each
    //    policy, priced like the RttModel prices the wire.
    let mut policies = Vec::new();
    for (label, policy, model) in [
        ("per_entry", SyncPolicy::PerEntry, FsyncModel::DISK_2010),
        ("per_batch", SyncPolicy::PerBatch, FsyncModel::DISK_2010),
        ("per_seal", SyncPolicy::PerSeal, FsyncModel::DISK_2010),
        ("per_entry_ssd", SyncPolicy::PerEntry, FsyncModel::SSD),
    ] {
        let mut provider = fresh_provider(persist_cfg(policy, model), SimStorage::new());
        drive_persist_workload(&mut provider, &client, rounds, touch_pages).unwrap();
        let stats = provider.durability_stats();
        policies.push(PersistPolicyRow {
            label,
            syncs: stats.syncs,
            appended_bytes: stats.appended_bytes,
            modelled_sync_micros: stats.modelled_sync_micros,
        });
    }

    // 2. Clean shutdown → recovery.  A prune first, so the recovered arena
    //    numbers include compaction; the pre-shutdown spot check is the
    //    reference the recovered one must equal field for field.
    let cfg = persist_cfg(SyncPolicy::PerBatch, FsyncModel::DISK_2010);
    let storage = SimStorage::new();
    let mut provider = fresh_provider(cfg, storage.clone());
    drive_persist_workload(&mut provider, &client, rounds, touch_pages).unwrap();
    let start = rounds - 2;
    provider.prune_snapshots_upto(start).unwrap();
    let before = spot_check_durable(&provider, &image, start);
    drop(provider); // the process dies; only the bytes in `storage` survive
    let t = Instant::now();
    let (recovered, clean) = Provider::recover(
        storage.reboot(),
        "host",
        &image,
        &registry,
        operator.signing_key.clone(),
        options(),
        cfg,
    )
    .unwrap();
    let wall_recovery_clean_us = t.elapsed().as_micros() as u64;
    let after = spot_check_durable(&recovered, &image, start);
    let audit_identical_after_clean_recovery = before == after;

    // 3. Crash mid-write → recovery by torn-tail truncation.  Arm a byte
    //    budget and keep recording until a write dies mid-record.
    let storage = SimStorage::new();
    let mut provider = fresh_provider(cfg, storage.clone());
    drive_persist_workload(&mut provider, &client, rounds, touch_pages).unwrap();
    storage.set_crash_point(if quick { 6_000 } else { 24_000 });
    let mut clock = HostClock::at(1_000_000);
    let mut i = 0u64;
    loop {
        clock.advance_to(clock.now() + 2_000);
        let payload = encode_guest_packet("host", &[(i % touch_pages) as u8, 3]);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "client",
            "host",
            rounds + i + 1,
            payload,
            &client.signing_key,
            None,
        );
        let died = provider.deliver(&env).is_err()
            || provider.run_slice(&clock, 100_000).is_err()
            || provider.take_snapshot().is_err();
        if died {
            break;
        }
        i += 1;
        assert!(i < 1_000, "crash point never hit");
    }
    assert!(storage.crashed());
    let survivor = storage.reboot();
    let t = Instant::now();
    let (crashed_recovered, crash) = Provider::recover(
        survivor,
        "host",
        &image,
        &registry,
        operator.signing_key.clone(),
        options(),
        cfg,
    )
    .unwrap();
    let wall_recovery_crash_us = t.elapsed().as_micros() as u64;
    let crash_start = crash.snapshots_recovered.saturating_sub(2);
    let crash_check = spot_check_durable(&crashed_recovered, &image, crash_start);
    let audit_consistent_after_crash_recovery = crash_check.consistent;

    assert!(
        audit_identical_after_clean_recovery,
        "clean restart must reproduce the exact pre-shutdown spot check"
    );
    assert!(
        audit_consistent_after_crash_recovery,
        "crash recovery must truncate the torn tail and still pass audits"
    );
    assert_eq!(
        clean.torn_bytes_truncated, 0,
        "clean shutdown tears nothing"
    );

    println!("# Durable accountability: fsync-policy trade-off + crash recovery");
    println!("| sync policy | fsyncs | appended bytes | modelled sync time (ms) |");
    println!("|---|---|---|---|");
    for row in &policies {
        println!(
            "| {} | {} | {} | {:.3} |",
            row.label,
            row.syncs,
            row.appended_bytes,
            row.modelled_sync_micros as f64 / 1000.0
        );
    }
    println!(
        "\nclean restart: {} entries recovered, {} snapshots rebuilt (base {}), {} entries \
         replayed, {} roots verified; arenas {} blobs / {} B after prune+compaction; \
         {wall_recovery_clean_us} µs wall; audits identical: \
         {audit_identical_after_clean_recovery}",
        clean.entries_recovered,
        clean.snapshots_recovered,
        clean.base_snapshot_id,
        clean.entries_replayed,
        clean.snapshots_verified,
        clean.arena_blobs,
        clean.arena_bytes,
    );
    println!(
        "crash restart: {} B torn tail truncated, {} entries survived (sealed upto {}), {} \
         replayed, {} roots verified; {wall_recovery_crash_us} µs wall; audit consistent: \
         {audit_consistent_after_crash_recovery}",
        crash.torn_bytes_truncated,
        crash.entries_recovered,
        crash.sealed_upto,
        crash.entries_replayed,
        crash.snapshots_verified,
    );

    PersistResult {
        policies,
        clean,
        crash,
        wall_recovery_clean_us,
        wall_recovery_crash_us,
        audit_identical_after_clean_recovery,
        audit_consistent_after_crash_recovery,
    }
}

/// Flattens the [`SnapshotIncRow`]s into the `BENCH_fig6inc.json` trajectory
/// metrics.  Per-row timings are host wall time, hence `wall_` keys; the
/// configuration columns pin the experiment's shape exactly.
pub fn fig6inc_metrics(rows: &[SnapshotIncRow], quick: bool) -> Vec<(String, u64)> {
    let mut m = vec![
        ("ok_quick".to_string(), quick as u64),
        ("ok_rows".to_string(), rows.len() as u64),
    ];
    for row in rows {
        let label = format!("p{}_d{}", row.pages, row.dirty_per_snapshot);
        m.push((format!("wall_{label}_full_us"), row.full_us as u64));
        m.push((
            format!("wall_{label}_incremental_us"),
            row.incremental_us as u64,
        ));
        m.push((
            format!("wall_{label}_speedup_x10"),
            (row.speedup * 10.0) as u64,
        ));
    }
    m
}

/// Flattens a [`SnapshotDedupResult`] into the `BENCH_dedup.json` trajectory
/// metrics.  Everything here is deterministic byte accounting: the stored and
/// transfer sizes are the §6.12 claims themselves, so any drift is a real
/// storage-efficiency regression.
pub fn dedup_metrics(r: &SnapshotDedupResult, quick: bool) -> Vec<(String, u64)> {
    vec![
        ("ok_quick".into(), quick as u64),
        ("ok_captures".into(), r.captures as u64),
        (
            "ok_idle_captures_free".into(),
            (r.stored_bytes == r.stored_before_idle) as u64,
        ),
        ("logical_bytes".into(), r.logical_bytes),
        ("stored_bytes".into(), r.stored_bytes),
        ("transfer_raw".into(), r.transfer_raw),
        ("transfer_compressed".into(), r.transfer_compressed),
    ]
}

/// Flattens an [`OnDemandResult`] into the `BENCH_ondemand.json` trajectory
/// metrics: the three download models' byte counts (all simulated, hence
/// deterministic) plus the §3.5 correctness bits.
pub fn ondemand_metrics(r: &OnDemandResult, quick: bool) -> Vec<(String, u64)> {
    vec![
        ("ok_quick".into(), quick as u64),
        ("ok_verdicts_agree".into(), r.verdicts_agree as u64),
        ("ok_warm_refetches".into(), r.warm_refetches),
        ("snapshots".into(), r.snapshots),
        ("full_raw".into(), r.full_raw),
        ("full_compressed".into(), r.full_compressed),
        ("dedup_raw".into(), r.dedup_raw),
        ("dedup_compressed".into(), r.dedup_compressed),
        ("ondemand_raw".into(), r.ondemand_raw),
        ("ondemand_compressed".into(), r.ondemand_compressed),
        ("chunks_faulted".into(), r.chunks_faulted),
    ]
}

/// Flattens a [`ChunkedResult`] into the `BENCH_chunked.json` trajectory
/// metrics: chunk- vs page-granular bytes at every pipeline stage and the
/// batched blob-exchange round-trip accounting.  (`pruned_freed_bytes` is
/// deliberately not pinned: freeing *more* is an improvement the cost
/// convention would misread as a regression.)
pub fn chunked_metrics(r: &ChunkedResult, quick: bool) -> Vec<(String, u64)> {
    vec![
        ("ok_quick".into(), quick as u64),
        ("ok_verdicts_agree".into(), r.verdicts_agree as u64),
        ("snapshots".into(), r.snapshots),
        ("chunk_logical_bytes".into(), r.chunk_logical_bytes),
        ("page_logical_bytes".into(), r.page_logical_bytes),
        ("chunk_stored_bytes".into(), r.chunk_stored_bytes),
        ("page_stored_bytes".into(), r.page_stored_bytes),
        ("chunk_ondemand_bytes".into(), r.chunk_ondemand_bytes),
        ("page_ondemand_bytes".into(), r.page_ondemand_bytes),
        ("rtts_batched".into(), r.rtts_batched),
        ("rtts_unbatched".into(), r.rtts_unbatched),
        ("latency_batched_us".into(), r.latency_batched_us),
        ("latency_unbatched_us".into(), r.latency_unbatched_us),
    ]
}

/// Flattens a [`PersistResult`] into the `BENCH_persist.json` trajectory
/// metrics (see the `trajectory` module docs for the key conventions).
pub fn persist_metrics(r: &PersistResult, quick: bool) -> Vec<(String, u64)> {
    let mut m = vec![("ok_quick".to_string(), quick as u64)];
    for row in &r.policies {
        m.push((format!("{}_syncs", row.label), row.syncs));
        m.push((format!("{}_appended_bytes", row.label), row.appended_bytes));
        m.push((
            format!("{}_modelled_sync_micros", row.label),
            row.modelled_sync_micros,
        ));
    }
    for (prefix, rep) in [("clean", &r.clean), ("crash", &r.crash)] {
        m.push((format!("{prefix}_entries_recovered"), rep.entries_recovered));
        m.push((
            format!("{prefix}_snapshots_recovered"),
            rep.snapshots_recovered,
        ));
        m.push((format!("{prefix}_entries_replayed"), rep.entries_replayed));
        m.push((
            format!("{prefix}_snapshots_verified"),
            rep.snapshots_verified,
        ));
        m.push((format!("{prefix}_arena_blobs"), rep.arena_blobs));
        m.push((format!("{prefix}_arena_bytes"), rep.arena_bytes));
        m.push((
            format!("{prefix}_torn_bytes_truncated"),
            rep.torn_bytes_truncated,
        ));
    }
    m.push((
        "ok_audit_identical_after_clean_recovery".into(),
        r.audit_identical_after_clean_recovery as u64,
    ));
    m.push((
        "ok_audit_consistent_after_crash_recovery".into(),
        r.audit_consistent_after_crash_recovery as u64,
    ));
    m.push(("wall_recovery_clean_us".into(), r.wall_recovery_clean_us));
    m.push(("wall_recovery_crash_us".into(), r.wall_recovery_crash_us));
    m
}

/// Flattens a [`NetAuditResult`] into the `BENCH_netaudit.json` trajectory
/// metrics (all simulated, hence deterministic — no `wall_` keys here).
pub fn netaudit_metrics(r: &NetAuditResult, quick: bool) -> Vec<(String, u64)> {
    vec![
        ("ok_quick".into(), quick as u64),
        (
            "ok_semantic_match_clean".into(),
            r.semantic_match_clean as u64,
        ),
        (
            "ok_semantic_match_lossy".into(),
            r.semantic_match_lossy as u64,
        ),
        (
            "ok_semantic_match_full".into(),
            r.semantic_match_full as u64,
        ),
        ("ok_within_one_percent".into(), r.within_one_percent as u64),
        ("measured_clean_us".into(), r.measured_clean_us),
        ("direct_modelled_us".into(), r.direct_modelled_us),
        ("predicted_us".into(), r.predicted_us),
        ("measured_lossy_us".into(), r.measured_lossy_us),
        ("retransmissions_lossy".into(), r.retransmissions_lossy),
    ]
}

// ---------------------------------------------------------------------------
// Fleet-scale auditing: N concurrent sessions against a shared provider node
// ---------------------------------------------------------------------------

/// One N-row of the `fleet` experiment.
#[derive(Debug, Clone, Copy)]
pub struct FleetRow {
    /// Concurrent auditors (N).
    pub auditors: u64,
    /// Sessions that finished with a consistent verdict.
    pub audits_ok: u64,
    /// Simulated time from the first session start to quiescence, in µs.
    pub sim_elapsed_us: u64,
    /// Simulated µs per completed audit (inverse throughput).
    pub us_per_audit: u64,
    /// Completed audits per simulated second.
    pub audits_per_sec: u64,
    /// Median session completion latency (scheduled start → verdict), µs.
    pub p50_us: u64,
    /// 99th-percentile session completion latency, µs.
    pub p99_us: u64,
    /// 99.9th-percentile session completion latency, µs.
    pub p999_us: u64,
    /// Framed bytes across every link, both directions.
    pub wire_bytes: u64,
    /// Aggregate link throughput: wire bytes per simulated second.
    pub bytes_per_sec: u64,
    /// Provider responses served from the shared encoding cache.
    pub cache_hits: u64,
    /// Provider responses that had to be encoded (then cached).
    pub cache_misses: u64,
    /// Requests the provider scheduler served.
    pub requests_served: u64,
    /// Retransmissions across the whole fleet.
    pub retransmissions: u64,
    /// Host wall-clock time this row took to simulate, in µs.
    pub wall_run_us: u64,
}

/// Result of the `fleet` experiment.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// One row per fleet size in the sweep.
    pub rows: Vec<FleetRow>,
    /// The N=1 fleet report was *field-identical* (verdict, transfer
    /// columns, wire accounting, measured latency) to the blocking
    /// single-client `SimNetTransport` path.
    pub n1_identical: bool,
    /// Shared-cache hits at the N=10 row (must be > 0: nine auditors ride
    /// the first one's encodings).
    pub cache_hits_at_n10: u64,
    /// Every session in every row reached a consistent verdict.
    pub all_consistent: bool,
    /// Worker-pool activity *during this sweep* (delta, not process-wide
    /// totals): console telemetry only — the quick fleet workload is sized
    /// below the pool's batching threshold, so claiming pool numbers in the
    /// pinned metrics would be misleading.
    pub pool: avm_crypto::parallel::PoolStats,
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile_us(sorted: &[u64], numerator: u64, denominator: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * numerator).div_ceil(denominator);
    sorted[(rank.max(1) - 1).min(sorted.len() as u64 - 1) as usize]
}

/// Fleet-scale auditing (§2's many-auditors deployment model): N concurrent
/// spot-check sessions interleaved against one sessionful provider node on a
/// shared simulated network, swept over fleet sizes.
///
/// Reports audits/sec, aggregate link throughput and p50/p99/p999 session
/// completion latency per N, plus the provider's shared-response-cache hit
/// rates and the hashing worker pool's occupancy.  Pins the semantics: the
/// N=1 run is field-identical to the single-client `SimNetTransport` path.
pub fn exp_fleet(quick: bool) -> FleetResult {
    use avm_core::endpoint::{AuditClient, AuditServer, SimNetTransport};
    use avm_core::fleet::{run_fleet, FleetConfig};
    use avm_net::LinkConfig;
    use avm_vm::GuestRegistry;

    let registry = GuestRegistry::new();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(23);
    let operator = Identity::generate(&mut rng, "host", scheme);
    let client_id = Identity::generate(&mut rng, "client", scheme);
    let pages = 96;
    let touch_pages = 16u64;
    let n_snapshots: u64 = 5;
    let image = sparse_touch_image(pages);
    let mut avmm = Avmm::new(
        "host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default().with_scheme(scheme),
    )
    .unwrap();
    avmm.add_peer("client", client_id.verifying_key());
    let mut clock = HostClock::at(1_000);
    avmm.run_slice(&clock, 50_000).unwrap();
    for i in 0..n_snapshots {
        clock.advance_to(clock.now() + 2_000);
        let sel = (i % touch_pages) as u8;
        let payload = encode_guest_packet("host", &[sel, (i % 8) as u8]);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "client",
            "host",
            i + 1,
            payload,
            &client_id.signing_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 100_000).unwrap();
        avmm.take_snapshot();
    }

    let start = n_snapshots - 2;
    let k = 1u64;
    let link = LinkConfig::default();

    // The identity pin: the blocking single-client transport's report.
    let mut client = AuditClient::new(SimNetTransport::new(
        AuditServer::new(avmm.log(), avmm.snapshots()),
        link,
    ));
    let baseline = client
        .spot_check_on_demand(start, k, &image, &registry)
        .unwrap();
    assert!(baseline.consistent, "honest chunk must pass");

    let sweep: &[usize] = if quick {
        &[1, 10, 100]
    } else {
        &[1, 10, 100, 1000]
    };
    let pool_before = avm_crypto::parallel::global_pool_stats();
    let mut rows = Vec::with_capacity(sweep.len());
    let mut n1_identical = false;
    let mut cache_hits_at_n10 = 0u64;
    let mut all_consistent = true;
    for &n in sweep {
        let config = FleetConfig {
            link,
            auditors: n,
            start_snapshot: start,
            chunk: k,
            inter_arrival_us: 200,
            ..FleetConfig::default()
        };
        let wall = Instant::now();
        let outcome = run_fleet(avmm.log(), avmm.snapshots(), &image, &registry, &config);
        let wall_run_us = wall.elapsed().as_micros() as u64;
        assert!(outcome.event_loop.quiescent, "fleet of {n} must quiesce");
        let audits_ok = outcome
            .reports
            .iter()
            .filter(|r| r.as_ref().is_ok_and(|rep| rep.consistent))
            .count() as u64;
        all_consistent &= audits_ok == n as u64;
        if n == 1 {
            n1_identical = outcome.reports[0]
                .as_ref()
                .map(|rep| rep == &baseline)
                .unwrap_or(false);
        }
        let provider = outcome.providers[0];
        if n == 10 {
            cache_hits_at_n10 = provider.cache.hits;
        }
        let mut latencies = outcome.latencies_us.clone();
        latencies.sort_unstable();
        let sim_elapsed_us = outcome.event_loop.now_us.max(1);
        let wire_bytes: u64 = outcome.node_stats.iter().map(|(_, s)| s.tx_bytes).sum();
        let retransmissions: u64 = outcome
            .reports
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|rep| rep.transport.retransmissions)
            .sum();
        rows.push(FleetRow {
            auditors: n as u64,
            audits_ok,
            sim_elapsed_us,
            us_per_audit: sim_elapsed_us / (audits_ok.max(1)),
            audits_per_sec: audits_ok * 1_000_000 / sim_elapsed_us,
            p50_us: percentile_us(&latencies, 50, 100),
            p99_us: percentile_us(&latencies, 99, 100),
            p999_us: percentile_us(&latencies, 999, 1000),
            wire_bytes,
            bytes_per_sec: wire_bytes * 1_000_000 / sim_elapsed_us,
            cache_hits: provider.cache.hits,
            cache_misses: provider.cache.misses,
            requests_served: provider.requests_served,
            retransmissions,
            wall_run_us,
        });
    }

    let pool = avm_crypto::parallel::global_pool_stats().since(&pool_before);
    assert!(n1_identical, "fleet N=1 must equal the blocking transport");
    assert!(all_consistent, "every fleet session must pass");
    assert!(
        cache_hits_at_n10 > 0,
        "ten auditors of one epoch must share encodings"
    );

    println!("# Fleet auditing: N concurrent sessions, one provider node (start={start}, k={k})");
    println!(
        "| N | audits/s (sim) | µs/audit | p50 µs | p99 µs | p999 µs | wire MB | link MB/s | cache hit/miss | retx |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for row in &rows {
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.2} | {:.2} | {}/{} | {} |",
            row.auditors,
            row.audits_per_sec,
            row.us_per_audit,
            row.p50_us,
            row.p99_us,
            row.p999_us,
            row.wire_bytes as f64 / 1e6,
            row.bytes_per_sec as f64 / 1e6,
            row.cache_hits,
            row.cache_misses,
            row.retransmissions,
        );
    }
    println!(
        "\nN=1 field-identical to SimNetTransport: {n1_identical}; worker pool during this \
         sweep: {} hash jobs over {} batches, {} generic tasks ({} workers — quick fleet \
         payloads sit below the pool's batching threshold, so an idle pool here is expected)",
        pool.jobs, pool.batches, pool.tasks, pool.workers
    );

    FleetResult {
        rows,
        n1_identical,
        cache_hits_at_n10,
        all_consistent,
        pool,
    }
}

/// Flattens a [`FleetResult`] into the `BENCH_fleet.json` trajectory metrics
/// (all simulated and deterministic except the `wall_` keys, which record
/// host wall-clock and pool occupancy and are skipped by the comparator).
pub fn fleet_metrics(r: &FleetResult, quick: bool) -> Vec<(String, u64)> {
    let mut m = vec![
        ("ok_quick".to_string(), quick as u64),
        ("ok_n1_identical".to_string(), r.n1_identical as u64),
        (
            "ok_cache_hits_at_n10".to_string(),
            (r.cache_hits_at_n10 > 0) as u64,
        ),
        ("ok_all_consistent".to_string(), r.all_consistent as u64),
    ];
    for row in &r.rows {
        let n = row.auditors;
        m.push((format!("n{n}_us_per_audit"), row.us_per_audit));
        m.push((format!("n{n}_p50_us"), row.p50_us));
        m.push((format!("n{n}_p99_us"), row.p99_us));
        m.push((format!("n{n}_p999_us"), row.p999_us));
        m.push((format!("n{n}_wire_bytes"), row.wire_bytes));
        m.push((format!("n{n}_cache_hits"), row.cache_hits));
        m.push((format!("n{n}_retransmissions"), row.retransmissions));
        m.push((format!("wall_n{n}_run_us"), row.wall_run_us));
    }
    // No pool keys here: the quick fleet run never engages the hashing
    // pool (payloads sit below its batching threshold), and pinning
    // idle-pool numbers would claim coverage the run doesn't have.  The
    // `paraudit` trajectory reports genuine pool engagement instead.
    m
}

/// One worker-count row of the `paraudit` sweep.
#[derive(Debug, Clone, Copy)]
pub struct ParauditRow {
    /// Worker lanes requested.
    pub workers: u64,
    /// The parallel report was field-for-field identical to the serial one.
    pub identical: bool,
    /// LPT-schedule makespan of the modelled per-unit replay CPU over this
    /// many lanes, in µs — the multi-core wall-time model a 1-core host can
    /// pin deterministically (per-unit cost = [`ReplayCpuModel`] applied to
    /// the unit's replayed steps and entries).
    ///
    /// [`ReplayCpuModel`]: avm_core::paraudit::ReplayCpuModel
    pub makespan_us: u64,
    /// `serial CPU / makespan`, ×100 fixed point.
    pub speedup_x100: u64,
    /// Host wall time of the parallel spot check, in µs (noisy; emitted as
    /// a comparator-skipped `wall_` key).
    pub wall_us: u64,
    /// Best-of-R *measured* host wall time at this lane count, µs — the
    /// multi-core wall time actually observed on this host, as opposed to
    /// the modelled `makespan_us` (noisy; emitted as a comparator-skipped
    /// `wall_parallel_` key).
    pub wall_best_us: u64,
}

/// Result of [`exp_paraudit`].
#[derive(Debug, Clone)]
pub struct ParauditResult {
    /// Replay units the chunk partitioned into (one per segment).
    pub units: u64,
    /// Modelled serial replay CPU (sum over units), µs.
    pub serial_cpu_us: u64,
    /// Measured per-unit replay CPU from the one-lane run, µs (host noise;
    /// console + `wall_` telemetry only).
    pub measured_unit_us: Vec<u64>,
    /// Worker sweep 1..=8.
    pub rows: Vec<ParauditRow>,
    /// Every parallel report equalled the serial baseline.
    pub all_identical: bool,
    /// The engine fell back to serial replay in some run.
    pub any_fallback: bool,
    /// Modelled speedup at 4 lanes, ×100.
    pub speedup4_x100: u64,
    /// Completion latency with fetches stalled behind replay CPU, sim µs.
    pub stalled_latency_us: u64,
    /// Completion latency with fetch for segment i+1 overlapping segment
    /// i's replay, sim µs.
    pub pipelined_latency_us: u64,
    /// `pipelined < stalled` on the lossy link.
    pub pipeline_overlap: bool,
    /// Generic replay tasks the worker pool executed during the sweep
    /// (delta, deterministic: Σ lanes−1 per run).
    pub pool_tasks: u64,
    /// Pool worker threads.
    pub pool_workers: u64,
    /// Hardware threads the host reports
    /// (`std::thread::available_parallelism`) — context for the measured
    /// walls: lane counts past this cannot speed up real execution.
    pub host_parallelism: u64,
    /// Samples behind each best-of measured wall.
    pub wall_reps: u64,
}

/// Segment-parallel audit replay (§6): partitions one recorded chunk at its
/// snapshot boundaries, replays the units on 1..=8 worker lanes, and checks
/// every parallel [`SpotCheckReport`] for field-identity with the serial
/// baseline.  Speedup is modelled: per-unit replay CPU is priced by the
/// fixed [`ReplayCpuModel`] from the unit's actual replayed steps/entries,
/// and a W-lane LPT schedule's makespan gives the deterministic multi-core
/// wall time (the host has one core; measured per-unit µs are reported as
/// noise-only telemetry).  A second half runs the fetch/replay pipeline on
/// a lossy link: `run_fleet` with replay CPU charged to the simulated
/// clock, stalled vs pipelined — same verdict and transfer set, lower
/// completion latency when fetches overlap replay.
///
/// [`SpotCheckReport`]: avm_core::spotcheck::SpotCheckReport
/// [`ReplayCpuModel`]: avm_core::paraudit::ReplayCpuModel
pub fn exp_paraudit(quick: bool) -> ParauditResult {
    use avm_core::endpoint::{AuditClient, AuditServer, DirectTransport};
    use avm_core::fleet::{run_fleet, FleetConfig};
    use avm_core::paraudit::{partition_chunk, schedule_makespan_micros, ReplayCpuModel};
    use avm_core::replay::{ReplayOutcome, Replayer};
    use avm_core::spotcheck::{
        snapshot_positions, snapshot_positions_in, spot_check, spot_check_parallel,
    };
    use avm_net::LinkConfig;
    use avm_vm::GuestRegistry;

    let registry = GuestRegistry::new();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(23);
    let operator = Identity::generate(&mut rng, "host", scheme);
    let client_id = Identity::generate(&mut rng, "client", scheme);
    let pages = if quick { 96 } else { 192 };
    let touch_pages = if quick { 6u64 } else { 12 };
    let n_snapshots: u64 = if quick { 8 } else { 16 };
    let image = sparse_writer_image(pages);
    let mut avmm = Avmm::new(
        "host",
        &image,
        &registry,
        operator.signing_key.clone(),
        AvmmOptions::default()
            .with_scheme(scheme)
            .with_incremental_snapshots(),
    )
    .unwrap();
    avmm.add_peer("client", client_id.verifying_key());
    let mut clock = HostClock::at(1_000);
    avmm.run_slice(&clock, 50_000).unwrap();
    for i in 0..n_snapshots {
        clock.advance_to(clock.now() + 2_000);
        let sel = (i % touch_pages) as u8;
        let payload = encode_guest_packet("host", &[sel, (i % 8) as u8]);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "client",
            "host",
            i + 1,
            payload,
            &client_id.signing_key,
            None,
        );
        avmm.deliver(&env).unwrap();
        avmm.run_slice(&clock, 100_000).unwrap();
        avmm.take_snapshot();
    }

    // The whole recording as one open chunk: one replay unit per segment.
    let start = 0u64;
    let k = n_snapshots;

    let serial = spot_check(avmm.log(), avmm.snapshots(), start, k, &image, &registry).unwrap();
    assert!(serial.consistent, "honest chunk must pass");

    // Deterministic per-unit replay cost: partition the chunk exactly as
    // the engine does, replay each unit serially, and price its steps and
    // entries with the fixed model.  This makes makespans and speedups
    // exact pinned values instead of host-noise samples.
    let positions = snapshot_positions(avmm.log()).expect("well-formed log");
    let start_pos = positions
        .iter()
        .find(|&&(_, id, _)| id == start)
        .expect("start snapshot recorded")
        .0;
    let chunk = &avmm.log().entries()[start_pos + 1..];
    let chunk_positions = snapshot_positions_in(chunk).expect("well-formed chunk");
    let mut unit_work = Vec::new();
    for unit in &partition_chunk(chunk, &chunk_positions) {
        let from = unit.boundary.map_or(start, |(id, _)| id);
        let mut replayer =
            Replayer::from_snapshot(&image, &registry, avmm.snapshots(), from).unwrap();
        replayer.preload_recvs(&chunk[..unit.range.start]);
        let segment = &chunk[unit.range.clone()];
        assert!(
            matches!(replayer.replay(segment), ReplayOutcome::Consistent(_)),
            "honest unit must replay clean"
        );
        unit_work.push((replayer.summary().steps_executed, segment.len() as u64));
    }
    // Price replay at the speed of the original execution (the auditor
    // re-executes the machine, §2.3): the chunk covered one 2 ms recording
    // epoch per snapshot.  This tiny guest idles between packets, so the
    // raw-interpreter DEFAULT model would make replay CPU vanish next to
    // the link; calibrating to the recorded span keeps the CPU/wire ratio
    // representative.  Deterministic: step counts are replay-exact.
    let total_steps: u64 = unit_work.iter().map(|&(s, _)| s).sum();
    let model = ReplayCpuModel::calibrated(n_snapshots * 2_000, total_steps);
    let unit_cost_us: Vec<u64> = unit_work
        .iter()
        .map(|&(steps, entries)| model.cost_micros(steps, entries))
        .collect();
    let units = unit_cost_us.len() as u64;
    let serial_cpu_us: u64 = unit_cost_us.iter().sum::<u64>().max(1);

    // One-lane detail run: pins the engine against the serial report and
    // yields measured (host-noise) per-unit µs for the console.
    let mut client = AuditClient::new(DirectTransport::new(AuditServer::new(
        avmm.log(),
        avmm.snapshots(),
    )));
    let (detail_report, stats) = client
        .spot_check_parallel_detail(start, k, &image, &registry, 1)
        .unwrap();
    assert_eq!(detail_report, serial, "engine must match the serial report");
    assert_eq!(
        stats.units as u64, units,
        "engine and bench partition agree"
    );
    let any_fallback = stats.fell_back_serial;
    let measured_unit_us = stats.unit_cpu_micros.clone();

    let pool_before = avm_crypto::parallel::global_pool_stats();
    let mut rows = Vec::with_capacity(8);
    let mut all_identical = true;
    for workers in 1..=8usize {
        let wall = Instant::now();
        let report = spot_check_parallel(
            avmm.log(),
            avmm.snapshots(),
            start,
            k,
            &image,
            &registry,
            workers,
        )
        .unwrap();
        let wall_us = wall.elapsed().as_micros() as u64;
        let identical = report == serial;
        all_identical &= identical;
        let makespan_us = schedule_makespan_micros(&unit_cost_us, workers).max(1);
        rows.push(ParauditRow {
            workers: workers as u64,
            identical,
            makespan_us,
            speedup_x100: serial_cpu_us * 100 / makespan_us,
            wall_us,
            wall_best_us: wall_us,
        });
    }
    let pool = avm_crypto::parallel::global_pool_stats().since(&pool_before);
    let speedup4_x100 = rows[3].speedup_x100;
    assert!(all_identical, "every parallel report must equal serial");

    // Measured (not modelled) multi-core wall time: repeat each lane count
    // and keep the best sample — a single wall sample is mostly scheduler
    // noise; the best of R approaches the true execution floor.  This runs
    // *after* the pool-stats delta above so the pinned replay-task count
    // stays the deterministic single-sweep value.
    let wall_reps: u64 = if quick { 3 } else { 5 };
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    for row in rows.iter_mut() {
        for _ in 1..wall_reps {
            let wall = Instant::now();
            let report = spot_check_parallel(
                avmm.log(),
                avmm.snapshots(),
                start,
                k,
                &image,
                &registry,
                row.workers as usize,
            )
            .unwrap();
            let us = wall.elapsed().as_micros() as u64;
            assert_eq!(report, serial, "repeat runs must stay identical");
            row.wall_best_us = row.wall_best_us.min(us);
        }
    }
    if !quick {
        assert!(
            speedup4_x100 >= 200,
            "full-size chunk must replay ≥2x faster on 4 lanes (got {speedup4_x100}/100)"
        );
    }

    // Fetch/replay pipeline on a lossy link: replay CPU charged to the
    // simulated clock; stalled sends no blob request until the whole replay
    // is done, pipelined prefetches segment i+1 while segment i replays.
    let link = LinkConfig {
        drop_every: 3,
        ..LinkConfig::default()
    };
    let run_pipe = |pipelined: bool| {
        let config = FleetConfig {
            link,
            auditors: 1,
            start_snapshot: start,
            chunk: k,
            on_demand: true,
            replay_cpu: Some(model),
            pipelined,
            ..FleetConfig::default()
        };
        let outcome = run_fleet(avmm.log(), avmm.snapshots(), &image, &registry, &config);
        assert!(outcome.event_loop.quiescent, "pipeline run must quiesce");
        let latency = outcome.latencies_us[0];
        let report = outcome
            .reports
            .into_iter()
            .next()
            .unwrap()
            .expect("audit completes");
        assert!(report.consistent, "honest chunk must pass");
        (report, latency)
    };
    let (stalled_report, stalled_latency_us) = run_pipe(false);
    let (pipelined_report, pipelined_latency_us) = run_pipe(true);
    assert_eq!(stalled_report.fault, pipelined_report.fault);
    assert_eq!(
        stalled_report.entries_replayed,
        pipelined_report.entries_replayed
    );
    assert_eq!(
        stalled_report.steps_replayed,
        pipelined_report.steps_replayed
    );
    let pipeline_overlap = pipelined_latency_us < stalled_latency_us;
    assert!(pipeline_overlap, "prefetch must beat the stalled fetch");

    println!("# Segment-parallel audit replay (chunk start={start}, k={k}, {units} units)");
    println!(
        "serial replay CPU (modelled): {serial_cpu_us} µs; measured per-unit µs: {measured_unit_us:?}"
    );
    println!(
        "| workers | makespan µs (model) | speedup | identical | wall µs | best-of-{wall_reps} wall µs |"
    );
    println!("|---|---|---|---|---|---|");
    for row in &rows {
        println!(
            "| {} | {} | {}.{:02}x | {} | {} | {} |",
            row.workers,
            row.makespan_us,
            row.speedup_x100 / 100,
            row.speedup_x100 % 100,
            row.identical,
            row.wall_us,
            row.wall_best_us,
        );
    }
    println!("(host reports {host_parallelism} hardware threads)");
    println!(
        "\npipeline on lossy link (drop_every=3): stalled {stalled_latency_us} µs → pipelined \
         {pipelined_latency_us} µs (overlap: {pipeline_overlap}); pool ran {} replay tasks on \
         {} workers",
        pool.tasks, pool.workers
    );

    ParauditResult {
        units,
        serial_cpu_us,
        measured_unit_us,
        rows,
        all_identical,
        any_fallback,
        speedup4_x100,
        stalled_latency_us,
        pipelined_latency_us,
        pipeline_overlap,
        pool_tasks: pool.tasks,
        pool_workers: pool.workers as u64,
        host_parallelism,
        wall_reps,
    }
}

/// Flattens a [`ParauditResult`] into the `BENCH_paraudit.json` trajectory
/// metrics.  Makespans, speedups, pipeline latencies and pool task counts
/// are modelled/simulated and deterministic; only `wall_` keys (skipped by
/// the comparator) carry host noise.
pub fn paraudit_metrics(r: &ParauditResult, quick: bool) -> Vec<(String, u64)> {
    let mut m = vec![
        ("ok_quick".to_string(), quick as u64),
        ("ok_parallel_identical".to_string(), r.all_identical as u64),
        (
            "ok_no_serial_fallback".to_string(),
            (!r.any_fallback) as u64,
        ),
        (
            "ok_speedup4_ge_150".to_string(),
            (r.speedup4_x100 >= 150) as u64,
        ),
        (
            "ok_pipelined_beats_stalled".to_string(),
            r.pipeline_overlap as u64,
        ),
        ("ok_pool_engaged".to_string(), (r.pool_tasks > 0) as u64),
        ("units".to_string(), r.units),
        ("serial_cpu_us".to_string(), r.serial_cpu_us),
        ("pool_replay_tasks".to_string(), r.pool_tasks),
        ("stalled_latency_us".to_string(), r.stalled_latency_us),
        ("pipelined_latency_us".to_string(), r.pipelined_latency_us),
        (
            "pipeline_gain_x100".to_string(),
            r.stalled_latency_us * 100 / r.pipelined_latency_us.max(1),
        ),
    ];
    for row in &r.rows {
        m.push((format!("w{}_makespan_us", row.workers), row.makespan_us));
        m.push((format!("w{}_speedup_x100", row.workers), row.speedup_x100));
        m.push((format!("wall_w{}_us", row.workers), row.wall_us));
        // Measured multi-core wall (best of R samples): host-dependent by
        // construction, so it rides under the comparator-skipped `wall_`
        // prefix — telemetry, never a gate.
        m.push((
            format!("wall_parallel_w{}_us", row.workers),
            row.wall_best_us,
        ));
    }
    m.push(("wall_parallel_reps".to_string(), r.wall_reps));
    m.push(("wall_host_parallelism".to_string(), r.host_parallelism));
    m
}

// ---------------------------------------------------------------------------
// Accountable attestation: attest-then-audit at fleet scale (avm-attest)
// ---------------------------------------------------------------------------

/// One fleet-size row of the `attest` experiment.
#[derive(Debug, Clone, Copy)]
pub struct AttestRow {
    /// Concurrent attest-then-audit auditors (N).
    pub auditors: u64,
    /// Sessions whose launch verdict came back `Verified`.
    pub attested_ok: u64,
    /// Sessions that went on to a consistent spot-check verdict.
    pub audits_ok: u64,
    /// Simulated time from first session start to quiescence, µs.
    pub sim_elapsed_us: u64,
    /// Median session completion latency (challenge → audit verdict), µs.
    pub p50_us: u64,
    /// 99th-percentile session completion latency, µs.
    pub p99_us: u64,
    /// Framed bytes across every link, both directions.
    pub wire_bytes: u64,
    /// Requests the provider scheduler served (one attest challenge plus
    /// the audit traffic, per session).
    pub requests_served: u64,
    /// Shared-cache hits (quotes are nonce-bound and bypass the cache, so
    /// these all come from the audit traffic).
    pub cache_hits: u64,
    /// Host wall-clock time this row took to simulate, µs.
    pub wall_run_us: u64,
}

/// Result of the `attest` experiment.
#[derive(Debug, Clone)]
pub struct AttestResult {
    /// Honest attested-fleet sweep.
    pub rows: Vec<AttestRow>,
    /// Encoded attestation envelope size, bytes.
    pub envelope_bytes: u64,
    /// Encoded quote size for one challenge, bytes.
    pub quote_bytes: u64,
    /// One SimNet session: attest verified, then the on-demand spot check
    /// continued over the same session and passed.
    pub honest_session: bool,
    /// Every session in every sweep row: launch `Verified` and audit
    /// consistent.
    pub honest_fleet: bool,
    /// Launch verdict for the provider that booted a tampered image.
    pub image_tamper: AttestVerdict,
    /// Launch verdict for the boot event log extended after sealing.
    pub log_fork: AttestVerdict,
    /// Launch verdict for the replayed (stale-nonce) quote.
    pub stale_nonce: AttestVerdict,
    /// Honest + three tamper verdicts were pairwise distinct.
    pub verdicts_distinct: bool,
    /// Post-launch execution tamper: the launch attestation still verifies
    /// (the envelope only covers the launch)...
    pub post_launch_attest_verified: bool,
    /// ...but the spot check over the tampered chunk catches it.
    pub post_launch_audit_caught: bool,
    /// A fleet pointed at the tampered-image provider: every session was
    /// rejected at the attest step with `ImageMismatch`...
    pub reject_fleet_all_mismatch: bool,
    /// ...after exactly one served request per session — rejected sessions
    /// produce no audit traffic.
    pub reject_fleet_one_request_each: bool,
    /// The crash-recovered provider re-served envelope bytes identical to
    /// its unkilled twin's.
    pub recovered_envelope_identical: bool,
    /// ...and identical to the live (non-durable) recorder's — the envelope
    /// is deterministic across provider instances.
    pub recovered_matches_live: bool,
    /// A fresh attested fleet against the recovered provider produced the
    /// same verdicts and reports as against the unkilled twin.
    pub recovered_fleet_matches: bool,
    /// Host wall-clock µs of the crash recovery.
    pub wall_recover_us: u64,
}

/// Accountable attestation at fleet scale: the avm-db server runs as an
/// attested workload under client churn; a fleet of N auditors each opens a
/// session, challenges the provider's launch (nonce'd
/// [`AttestChallenge`](avm_wire::attest::AttestChallenge) → signed quote →
/// [`LaunchPolicy`](avm_core::attest::LaunchPolicy) verdict) and only then
/// continues into spot-check auditing over the same session.
///
/// Alongside the honest sweep, each tamper class gets its distinct verdict:
/// a tampered initial image (`ImageMismatch`, including a rejected fleet
/// that generates no audit traffic), a boot event log extended after
/// sealing (`BootLogForged`), a replayed stale-nonce quote (`StaleNonce`),
/// and post-launch execution tampering — which attestation *cannot* see
/// (the envelope covers only the launch) and the spot check catches.  A
/// crash/recovery pass pins that a durable provider re-serves byte-identical
/// envelope bytes and passes the same fleet as its unkilled twin.
pub fn exp_attest(quick: bool) -> AttestResult {
    use avm_attest::{AttestationEnvelope, BootEvent, BootEventLog};
    use avm_core::attest::{challenge_nonce, Attestor, LaunchPolicy};
    use avm_core::endpoint::{AuditClient, AuditServer, SimNetTransport};
    use avm_core::fleet::{run_attested_fleet, FleetConfig, FleetOutcome};
    use avm_crypto::sha256::sha256;
    use avm_net::LinkConfig;
    use avm_wire::attest::AttestChallenge;
    use avm_wire::{Decode, Reader};
    use std::collections::HashSet;

    let registry = db_registry();
    let scheme = SignatureScheme::Rsa(512);
    let mut rng = StdRng::seed_from_u64(31);
    let operator = Identity::generate(&mut rng, "db-host", scheme);
    let client_id = Identity::generate(&mut rng, "client", scheme);
    let cfg = DbConfig::new("client");
    let image = db_image(&cfg);
    let options = || AvmmOptions::default().with_scheme(scheme);
    let rows_n: u64 = if quick { 8 } else { 24 };
    let snapshot_every: u64 = if quick { 8 } else { 16 };

    // Churn driver: the sql-bench-style request stream delivered as signed
    // envelopes, snapshotting every `snapshot_every` requests.  When
    // `tamper_before` names a snapshot, guest memory is overwritten right
    // before that snapshot is captured — execution tampering the launch
    // attestation cannot see.
    let drive = |avmm: &mut Avmm, tamper_before: Option<u64>| {
        let mut workload = WorkloadGen::new(rows_n);
        let mut clock = HostClock::at(1_000);
        let mut msg_id = 0u64;
        let mut since = 0u64;
        let mut snaps = 0u64;
        avmm.run_slice(&clock, 50_000).unwrap();
        while let Some(payload) = workload.next_packet("db-host") {
            msg_id += 1;
            clock.advance_to(clock.now() + 5_000);
            let env = Envelope::create(
                EnvelopeKind::Data,
                "client",
                "db-host",
                msg_id,
                payload,
                &client_id.signing_key,
                None,
            );
            avmm.deliver(&env).unwrap();
            avmm.run_slice(&clock, 100_000).unwrap();
            since += 1;
            if since >= snapshot_every {
                if tamper_before == Some(snaps) {
                    let addr = avmm.machine_mut().memory().size() - 64;
                    avmm.machine_mut()
                        .memory_mut()
                        .write_u8(addr, 0xAA)
                        .unwrap();
                }
                avmm.take_snapshot();
                snaps += 1;
                since = 0;
            }
        }
        avmm.take_snapshot();
    };

    let mut avmm = Avmm::new(
        "db-host",
        &image,
        &registry,
        operator.signing_key.clone(),
        options(),
    )
    .unwrap();
    avmm.add_peer("client", client_id.verifying_key());
    drive(&mut avmm, None);
    let n_snapshots = avmm.snapshots().len() as u64;
    let start = n_snapshots - 2;
    let k = 1u64;
    let link = LinkConfig::default();

    let attestor = Attestor::for_avmm(&avmm, &image).unwrap();
    let policy = LaunchPolicy::new(&image, "db-host", scheme, operator.verifying_key());
    let envelope_bytes = attestor.envelope_bytes().len() as u64;

    // 1. One honest session over SimNetTransport: challenge → verify →
    //    continue into the on-demand spot check on the same session.
    let server = AuditServer::new(avmm.log(), avmm.snapshots()).with_attestor(&attestor);
    let mut session = AuditClient::new(SimNetTransport::new(server, link));
    let challenge = AttestChallenge {
        nonce: challenge_nonce(900, 10_000),
        issued_at_us: 10_000,
    };
    let quote_bytes = attestor.quote(&challenge).encode_to_vec().len() as u64;
    let (session_verdict, session_envelope) = session.attest(&challenge, &policy, 10_500).unwrap();
    let audit_after = session
        .spot_check_on_demand(start, k, &image, &registry)
        .unwrap();
    let honest_session = session_verdict == AttestVerdict::Verified
        && session_envelope.is_some()
        && audit_after.consistent;

    // 2. The honest attested-fleet sweep.
    let sweep: &[usize] = if quick { &[1, 10, 50] } else { &[1, 10, 100] };
    let mut fleet_rows = Vec::with_capacity(sweep.len());
    let mut honest_fleet = true;
    for &n in sweep {
        let config = FleetConfig {
            link,
            auditors: n,
            start_snapshot: start,
            chunk: k,
            inter_arrival_us: 200,
            ..FleetConfig::default()
        };
        let wall = Instant::now();
        let outcome = run_attested_fleet(
            avmm.log(),
            avmm.snapshots(),
            &image,
            &registry,
            &config,
            &attestor,
            &policy,
        );
        let wall_run_us = wall.elapsed().as_micros() as u64;
        assert!(
            outcome.event_loop.quiescent,
            "attested fleet of {n} must quiesce"
        );
        let attested_ok = outcome
            .attest_verdicts
            .iter()
            .filter(|v| **v == Some(AttestVerdict::Verified))
            .count() as u64;
        let audits_ok = outcome
            .reports
            .iter()
            .filter(|r| r.as_ref().is_ok_and(|rep| rep.consistent))
            .count() as u64;
        honest_fleet &= attested_ok == n as u64 && audits_ok == n as u64;
        let mut latencies = outcome.latencies_us.clone();
        latencies.sort_unstable();
        let sim_elapsed_us = outcome.event_loop.now_us.max(1);
        let provider = outcome.providers[0];
        fleet_rows.push(AttestRow {
            auditors: n as u64,
            attested_ok,
            audits_ok,
            sim_elapsed_us,
            p50_us: percentile_us(&latencies, 50, 100),
            p99_us: percentile_us(&latencies, 99, 100),
            wire_bytes: outcome.node_stats.iter().map(|(_, s)| s.tx_bytes).sum(),
            requests_served: provider.requests_served,
            cache_hits: provider.cache.hits,
            wall_run_us,
        });
    }

    // 3. Tampered initial image: a provider that booted something else.
    //    Verified directly, then as a fleet — rejected sessions must end at
    //    the challenge, generating no audit traffic.
    let tampered_image = image.clone().with_disk(vec![0xEEu8; 512]);
    let tampered_avmm = Avmm::new(
        "db-host",
        &tampered_image,
        &registry,
        operator.signing_key.clone(),
        options(),
    )
    .unwrap();
    let tampered_attestor = Attestor::for_avmm(&tampered_avmm, &tampered_image).unwrap();
    let ch = AttestChallenge {
        nonce: challenge_nonce(901, 20_000),
        issued_at_us: 20_000,
    };
    let (image_tamper, _) = policy.verify(&tampered_attestor.quote(&ch), &ch, 20_500);
    let reject_n = 4usize;
    let reject_cfg = FleetConfig {
        link,
        auditors: reject_n,
        start_snapshot: 0,
        chunk: k,
        inter_arrival_us: 200,
        ..FleetConfig::default()
    };
    let rejected = run_attested_fleet(
        tampered_avmm.log(),
        tampered_avmm.snapshots(),
        &image,
        &registry,
        &reject_cfg,
        &tampered_attestor,
        &policy,
    );
    let reject_fleet_all_mismatch = rejected
        .attest_verdicts
        .iter()
        .all(|v| *v == Some(AttestVerdict::ImageMismatch))
        && rejected.reports.iter().all(|r| r.is_err());
    let reject_fleet_one_request_each = rejected.providers[0].requests_served == reject_n as u64;

    // 4. Boot event log extended after sealing: keep the original seal,
    //    append one event — the recomputed register breaks the seal.
    let envelope = AttestationEnvelope::decode_exact(attestor.envelope_bytes()).unwrap();
    let boot_bytes = envelope.boot.encode_to_vec();
    let mut reader = Reader::new(&boot_bytes);
    let mut events = Vec::<BootEvent>::decode(&mut reader).unwrap();
    let seal = Option::<Vec<u8>>::decode(&mut reader).unwrap();
    events.push(BootEvent {
        label: "avm.extra".to_string(),
        payload_digest: sha256(b"measured after the seal"),
    });
    let forged = AttestationEnvelope {
        boot: BootEventLog::from_parts(events, seal),
        ..envelope
    };
    let forger = Attestor::new(&forged, operator.signing_key.clone());
    let ch = AttestChallenge {
        nonce: challenge_nonce(902, 30_000),
        issued_at_us: 30_000,
    };
    let (log_fork, _) = policy.verify(&forger.quote(&ch), &ch, 30_500);

    // 5. Replayed (stale-nonce) attestation: a canned quote for an old
    //    challenge answered to a fresh one.
    let old = AttestChallenge {
        nonce: challenge_nonce(77, 1_000),
        issued_at_us: 1_000,
    };
    let replayer = attestor.clone().with_replayed_quote(attestor.quote(&old));
    let fresh = AttestChallenge {
        nonce: challenge_nonce(903, 50_000),
        issued_at_us: 50_000,
    };
    let (stale_nonce, _) = policy.verify(&replayer.quote(&fresh), &fresh, 50_500);

    let verdicts: HashSet<AttestVerdict> =
        [AttestVerdict::Verified, image_tamper, log_fork, stale_nonce]
            .into_iter()
            .collect();
    let verdicts_distinct = verdicts.len() == 4;

    // 6. Post-launch execution tampering: same honest launch, guest memory
    //    overwritten mid-run.  The launch attestation stays green — and the
    //    spot check over the tampered chunk goes red.  Launch measurement
    //    alone is not accountability; the audit continues where the
    //    envelope's coverage ends.
    let mut tampered_exec = Avmm::new(
        "db-host",
        &image,
        &registry,
        operator.signing_key.clone(),
        options(),
    )
    .unwrap();
    tampered_exec.add_peer("client", client_id.verifying_key());
    let tamper_snapshot = n_snapshots - 2;
    drive(&mut tampered_exec, Some(tamper_snapshot));
    let exec_attestor = Attestor::for_avmm(&tampered_exec, &image).unwrap();
    let ch = AttestChallenge {
        nonce: challenge_nonce(904, 60_000),
        issued_at_us: 60_000,
    };
    let (post_verdict, _) = policy.verify(&exec_attestor.quote(&ch), &ch, 60_500);
    let post_launch_attest_verified = post_verdict == AttestVerdict::Verified;
    let post_report = spot_check(
        tampered_exec.log(),
        tampered_exec.snapshots(),
        tamper_snapshot - 1,
        k,
        &image,
        &registry,
    )
    .unwrap();
    let post_launch_audit_caught = !post_report.consistent;

    // 7. Crash/recovery: a durable twin pair over avm-store.  The recovered
    //    provider must re-serve *the* envelope (byte-identical) and pass
    //    the same fleet attest-then-audit as the unkilled twin.
    let pcfg = persist_cfg(SyncPolicy::PerBatch, FsyncModel::DISK_2010);
    let provider_rounds: u64 = 12;
    let make_provider = |storage: SimStorage| {
        let mut p = Provider::create(
            storage,
            "db-host",
            &image,
            &registry,
            operator.signing_key.clone(),
            options(),
            pcfg,
        )
        .unwrap();
        p.add_peer("client", client_id.verifying_key());
        let mut workload = WorkloadGen::new(provider_rounds / 4);
        let mut clock = HostClock::at(1_000);
        let mut msg_id = 0u64;
        p.run_slice(&clock, 50_000).unwrap();
        while let Some(payload) = workload.next_packet("db-host") {
            msg_id += 1;
            clock.advance_to(clock.now() + 5_000);
            let env = Envelope::create(
                EnvelopeKind::Data,
                "client",
                "db-host",
                msg_id,
                payload,
                &client_id.signing_key,
                None,
            );
            p.deliver(&env).unwrap();
            p.run_slice(&clock, 100_000).unwrap();
            p.take_snapshot().unwrap();
        }
        p
    };
    let twin = make_provider(SimStorage::new());
    let storage = SimStorage::new();
    let victim = make_provider(storage.clone());
    drop(victim); // the process dies; only the bytes in `storage` survive
    let t = Instant::now();
    let (recovered, _) = Provider::recover(
        storage.reboot(),
        "db-host",
        &image,
        &registry,
        operator.signing_key.clone(),
        options(),
        pcfg,
    )
    .unwrap();
    let wall_recover_us = t.elapsed().as_micros() as u64;
    let recovered_envelope_identical =
        recovered.attestation_envelope_bytes() == twin.attestation_envelope_bytes();
    let recovered_matches_live =
        recovered.attestation_envelope_bytes() == attestor.envelope_bytes();
    let p_start = twin.avmm().snapshots().len() as u64 - 2;
    let fleet_cfg = FleetConfig {
        link,
        auditors: 4,
        start_snapshot: p_start,
        chunk: k,
        inter_arrival_us: 200,
        ..FleetConfig::default()
    };
    let run_provider_fleet = |p: &Provider<SimStorage>, att: &Attestor| {
        run_attested_fleet(
            p.avmm().log(),
            p.avmm().snapshots(),
            &image,
            &registry,
            &fleet_cfg,
            att,
            &policy,
        )
    };
    let twin_out = run_provider_fleet(&twin, twin.attestor());
    let rec_out = run_provider_fleet(&recovered, recovered.attestor());
    let semantic = |o: &FleetOutcome| {
        o.reports
            .iter()
            .map(|r| r.as_ref().ok().cloned())
            .collect::<Vec<_>>()
    };
    let recovered_fleet_matches = rec_out.attest_verdicts == twin_out.attest_verdicts
        && rec_out
            .attest_verdicts
            .iter()
            .all(|v| *v == Some(AttestVerdict::Verified))
        && semantic(&rec_out) == semantic(&twin_out)
        && semantic(&rec_out)
            .iter()
            .all(|r| r.as_ref().is_some_and(|rep| rep.consistent));

    println!("# Accountable attestation: attest-then-audit fleet (start={start}, k={k})");
    println!("envelope: {envelope_bytes} B, quote: {quote_bytes} B");
    println!("| N | attested | audits ok | p50 µs | p99 µs | wire MB | served | cache hits |");
    println!("|---|---|---|---|---|---|---|---|");
    for row in &fleet_rows {
        println!(
            "| {} | {} | {} | {} | {} | {:.2} | {} | {} |",
            row.auditors,
            row.attested_ok,
            row.audits_ok,
            row.p50_us,
            row.p99_us,
            row.wire_bytes as f64 / 1e6,
            row.requests_served,
            row.cache_hits,
        );
    }
    println!(
        "\ntamper verdicts: image={image_tamper}, boot-log fork={log_fork}, replay={stale_nonce} \
         (distinct: {verdicts_distinct}); post-launch tamper: attest says {post_verdict}, \
         audit caught: {post_launch_audit_caught}"
    );
    println!(
        "rejected fleet: all ImageMismatch={reject_fleet_all_mismatch}, one request per \
         session={reject_fleet_one_request_each}"
    );
    println!(
        "crash recovery: envelope identical={recovered_envelope_identical} (matches live \
         recorder: {recovered_matches_live}), recovered fleet matches twin: \
         {recovered_fleet_matches} ({wall_recover_us} µs to recover)"
    );

    AttestResult {
        rows: fleet_rows,
        envelope_bytes,
        quote_bytes,
        honest_session,
        honest_fleet,
        image_tamper,
        log_fork,
        stale_nonce,
        verdicts_distinct,
        post_launch_attest_verified,
        post_launch_audit_caught,
        reject_fleet_all_mismatch,
        reject_fleet_one_request_each,
        recovered_envelope_identical,
        recovered_matches_live,
        recovered_fleet_matches,
        wall_recover_us,
    }
}

/// Flattens an [`AttestResult`] into the `BENCH_attest.json` trajectory
/// metrics.  All the `ok_` flags are hard gates; sizes, latencies and wire
/// bytes are simulated and deterministic; `wall_` keys carry host noise and
/// are skipped by the comparator.
pub fn attest_metrics(r: &AttestResult, quick: bool) -> Vec<(String, u64)> {
    let mut m = vec![
        ("ok_quick".to_string(), quick as u64),
        ("ok_honest_session".to_string(), r.honest_session as u64),
        ("ok_honest_fleet".to_string(), r.honest_fleet as u64),
        (
            "ok_image_tamper_distinct".to_string(),
            (r.image_tamper == AttestVerdict::ImageMismatch) as u64,
        ),
        (
            "ok_log_fork_distinct".to_string(),
            (r.log_fork == AttestVerdict::BootLogForged) as u64,
        ),
        (
            "ok_stale_nonce_distinct".to_string(),
            (r.stale_nonce == AttestVerdict::StaleNonce) as u64,
        ),
        (
            "ok_verdicts_distinct".to_string(),
            r.verdicts_distinct as u64,
        ),
        (
            "ok_post_launch_detected".to_string(),
            (r.post_launch_attest_verified && r.post_launch_audit_caught) as u64,
        ),
        (
            "ok_reject_no_audit_traffic".to_string(),
            (r.reject_fleet_all_mismatch && r.reject_fleet_one_request_each) as u64,
        ),
        (
            "ok_recovered_envelope_identical".to_string(),
            r.recovered_envelope_identical as u64,
        ),
        (
            "ok_recovered_matches_live".to_string(),
            r.recovered_matches_live as u64,
        ),
        (
            "ok_recovered_fleet_matches".to_string(),
            r.recovered_fleet_matches as u64,
        ),
        ("envelope_bytes".to_string(), r.envelope_bytes),
        // Envelope and quote sizes are exactly deterministic (fixed image,
        // fixed keys, deterministic signing): graduate them from the
        // blanket threshold to zero-tolerance hard gates.
        ("tolerance_envelope_bytes".to_string(), 0),
        ("quote_bytes".to_string(), r.quote_bytes),
        ("tolerance_quote_bytes".to_string(), 0),
        ("wall_recover_us".to_string(), r.wall_recover_us),
    ];
    for row in &r.rows {
        let n = row.auditors;
        m.push((format!("n{n}_p50_us"), row.p50_us));
        m.push((format!("n{n}_wire_bytes"), row.wire_bytes));
        m.push((format!("n{n}_requests_served"), row.requests_served));
        // Requests served is schedule-deterministic (one challenge plus a
        // fixed audit exchange per session): another zero-tolerance gate.
        m.push((format!("tolerance_n{n}_requests_served"), 0));
        m.push((format!("n{n}_cache_hits"), row.cache_hits));
        m.push((format!("wall_n{n}_run_us"), row.wall_run_us));
    }
    m
}

/// Runs every experiment (used by the `experiments` binary with `all`).
pub fn run_all(quick: bool) {
    let model = HostCostModel::calibrated();
    exp_table1(quick);
    exp_functionality(quick);
    exp_log_growth(quick);
    exp_clock_optimization(quick);
    exp_audit_cost(quick);
    exp_traffic(quick);
    exp_ping_rtt(&model);
    exp_cpu_utilization(quick, &model);
    exp_frame_rate(quick, &model);
    exp_online_audit_frame_rate(quick, &model);
    exp_spotcheck(quick);
    exp_snapshot_incremental(quick);
    exp_snapshot_dedup(quick);
    exp_ondemand(quick);
    exp_chunked(quick);
    exp_netaudit(quick);
    exp_persist(quick);
    exp_fleet(quick);
    exp_paraudit(quick);
    exp_attest(quick);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_rtt_shape_matches_figure5() {
        let model = HostCostModel::test_defaults();
        let rows = exp_ping_rtt(&model);
        assert_eq!(rows.len(), 5);
        // Monotonically increasing; bare-hw well under 1 ms; rsa768 the largest.
        for w in rows.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
        assert!(rows[0].1 < 500.0);
        assert!(rows[4].1 > rows[3].1 * 1.5);
    }

    #[test]
    fn clock_optimization_shape_matches_section_6_5() {
        let r = exp_clock_optimization(true);
        assert!(
            r.capped_reads > 3 * r.uncapped_reads,
            "frame cap should multiply clock reads: capped={} uncapped={}",
            r.capped_reads,
            r.uncapped_reads
        );
        assert!(
            r.capped_optimized_reads < r.capped_reads / 2,
            "optimisation should recover most of the growth: optimized={} capped={}",
            r.capped_optimized_reads,
            r.capped_reads
        );
    }

    #[test]
    fn frame_rate_shape_matches_figure7() {
        let model = HostCostModel::test_defaults();
        let rows = exp_frame_rate(true, &model);
        assert_eq!(rows.len(), 5);
        let bare = rows[0].1;
        let avmm = rows[4].1;
        for w in rows.windows(2) {
            assert!(
                w[1].1 <= w[0].1 * 1.0001,
                "fps must not increase across configs"
            );
        }
        let drop = 1.0 - avmm / bare;
        assert!(drop > 0.05 && drop < 0.40, "relative drop {drop}");
    }

    #[test]
    fn incremental_roots_equal_full_and_beat_it_at_scale() {
        // Root equality (incremental == uncached rebuild) is asserted inside
        // the experiment for every snapshot; this test exists to run it.
        // The >=5x acceptance bar lives in the fig6_snapshot_incremental
        // criterion bench, not here: a wall-clock ratio assertion in the
        // default debug test suite would be at the mercy of CI scheduling.
        // With a ~160x release-mode margin, requiring >1x is a safe guard
        // against e.g. accidentally swapping the two measurements.
        let rows = exp_snapshot_incremental(true);
        assert_eq!(rows.len(), 3);
        let big = rows
            .iter()
            .find(|r| r.pages == 256 && r.dirty_per_snapshot == 1)
            .unwrap();
        assert!(
            big.speedup > 1.0,
            "incremental refresh slower than full rebuild: {:.2}x",
            big.speedup
        );
    }

    #[test]
    fn spotcheck_cost_grows_with_k() {
        let rows = exp_spotcheck(true);
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(w[1].relative_replay >= w[0].relative_replay);
            assert!(w[1].relative_transfer >= w[0].relative_transfer);
        }
        for row in &rows {
            assert!(
                row.relative_transfer_compressed > 0.0
                    && row.relative_transfer_compressed < row.relative_transfer,
                "compressed transfer should undercut raw: {row:?}"
            );
        }
    }

    /// Acceptance for the §3.5 reproduction: on-demand transfer strictly
    /// below the dedup full-state download (raw AND compressed), which in
    /// turn undercuts the full dump; verdicts agree between modes; a warm
    /// cache never re-downloads.
    #[test]
    fn ondemand_transfer_strictly_below_dedup_and_full() {
        let r = exp_ondemand(true);
        assert!(r.verdicts_agree);
        assert!(
            r.ondemand_raw < r.dedup_raw,
            "on-demand raw {} must be strictly below dedup raw {}",
            r.ondemand_raw,
            r.dedup_raw
        );
        assert!(
            r.ondemand_compressed < r.dedup_compressed,
            "on-demand compressed {} must be strictly below dedup compressed {}",
            r.ondemand_compressed,
            r.dedup_compressed
        );
        assert!(
            r.dedup_raw < r.full_raw,
            "dedup raw {} must undercut the full dump {}",
            r.dedup_raw,
            r.full_raw
        );
        assert!(r.chunks_faulted > 0);
        assert!(
            r.untouched_staged > 0,
            "a sparse-touch chunk must leave divergent state untouched"
        );
        assert_eq!(r.warm_refetches, 0);
    }

    /// Acceptance for the chunk-granular pipeline: snapshot stored bytes and
    /// on-demand transfer bytes strictly below the page-granular
    /// equivalents on the sparse-writer workload, batched round trips
    /// strictly below unbatched, verdicts agreeing between modes, and the
    /// prune actually freeing pooled payload.
    #[test]
    fn chunked_pipeline_beats_page_granularity() {
        let r = exp_chunked(true);
        assert!(r.verdicts_agree);
        assert!(
            r.chunk_stored_bytes < r.page_stored_bytes,
            "chunk pool {} B must be strictly below the page-equivalent pool {} B",
            r.chunk_stored_bytes,
            r.page_stored_bytes
        );
        assert!(
            r.chunk_ondemand_bytes < r.page_ondemand_bytes,
            "chunk on-demand {} B must be strictly below the page equivalent {} B",
            r.chunk_ondemand_bytes,
            r.page_ondemand_bytes
        );
        assert!(
            r.chunk_logical_bytes < r.page_logical_bytes,
            "sparse incremental captures must ship fewer bytes at chunk granularity"
        );
        assert!(
            r.rtts_batched < r.rtts_unbatched,
            "batched exchange must save round trips: {} vs {}",
            r.rtts_batched,
            r.rtts_unbatched
        );
        assert!(r.latency_batched_us < r.latency_unbatched_us);
        assert!(r.pruned_freed_bytes > 0);
    }

    /// The netaudit acceptance bar: identical semantics on every transport,
    /// lossless simulated latency within 1% of (and per-packet equal to)
    /// the RttModel prediction, and a correct finish through loss.
    #[test]
    fn netaudit_transports_agree_and_match_the_model() {
        let r = exp_netaudit(true);
        assert!(r.semantic_match_clean && r.semantic_match_lossy && r.semantic_match_full);
        assert_eq!(r.measured_clean_us, r.direct_modelled_us);
        assert!(r.within_one_percent);
        assert!(r.retransmissions_lossy > 0);
        assert!(r.measured_lossy_us > r.measured_clean_us);
    }

    /// Acceptance for durable accountability: the fsync-policy ladder is
    /// ordered the way the cost model predicts (without changing what is
    /// written), a clean restart reproduces field-identical audits, and a
    /// mid-write crash recovers by torn-tail truncation and still passes.
    #[test]
    fn persist_policies_ordered_and_recovered_audits_pass() {
        let r = exp_persist(true);
        let by = |label: &str| {
            r.policies
                .iter()
                .find(|p| p.label == label)
                .copied()
                .unwrap()
        };
        let (entry, batch, seal) = (by("per_entry"), by("per_batch"), by("per_seal"));
        let ssd = by("per_entry_ssd");
        assert!(
            entry.syncs > batch.syncs && batch.syncs > seal.syncs,
            "sync counts must fall from per-entry to per-seal: {} / {} / {}",
            entry.syncs,
            batch.syncs,
            seal.syncs
        );
        assert_eq!(
            entry.appended_bytes, seal.appended_bytes,
            "the sync policy must not change what is written"
        );
        assert!(
            entry.modelled_sync_micros > batch.modelled_sync_micros
                && batch.modelled_sync_micros > seal.modelled_sync_micros
        );
        assert!(
            ssd.modelled_sync_micros * 10 < entry.modelled_sync_micros,
            "the SSD model must undercut the 2010 disk by an order of magnitude"
        );
        assert!(r.audit_identical_after_clean_recovery);
        assert!(r.audit_consistent_after_crash_recovery);
        assert_eq!(r.clean.torn_bytes_truncated, 0);
        assert!(
            r.crash.torn_bytes_truncated > 0,
            "the crash budget must land mid-record"
        );
        assert!(r.clean.snapshots_verified > 0 && r.crash.snapshots_verified > 0);
        // The emitted trajectory metrics carry every pinned key class.
        let metrics = persist_metrics(&r, true);
        assert!(metrics
            .iter()
            .any(|(k, _)| k == "per_seal_modelled_sync_micros"));
        assert!(metrics
            .iter()
            .any(|(k, _)| k == "crash_torn_bytes_truncated"));
        assert!(metrics
            .iter()
            .any(|(k, v)| k == "ok_audit_identical_after_clean_recovery" && *v == 1));
    }

    #[test]
    fn dedup_store_is_o_unique_pages() {
        let r = exp_snapshot_dedup(true);
        // Idle full captures added exactly zero stored payload (asserted
        // inside the experiment too) while the logical volume kept growing.
        assert_eq!(r.stored_bytes, r.stored_before_idle);
        assert!(r.logical_bytes > 4 * r.stored_bytes, "{r:?}");
        // The modelled auditor download reports both raw and compressed, and
        // the idle guest compresses heavily.
        assert!(r.transfer_raw > 0);
        assert!(r.transfer_compressed > 0);
        assert!(r.transfer_compressed < r.transfer_raw / 4, "{r:?}");
    }
}
