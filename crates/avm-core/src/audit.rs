//! The audit tool: syntactic check, semantic check, and evidence.
//!
//! "The audit tool performs two checks on `L_ij`, a syntactic check and a
//! semantic check.  The syntactic check determines whether the log itself is
//! well-formed, whereas the semantic check determines whether the information
//! in the log corresponds to a correct execution of `M_R`" (paper §4.5).
//! When either check fails, the auditor packages the log segment and the
//! authenticators into [`Evidence`] that any third party can verify
//! independently — without trusting the auditor or the audited machine.

use avm_crypto::keys::VerifyingKey;
use avm_log::{verify_segment, Authenticator, EntryKind, LogEntry};
use avm_vm::{GuestRegistry, VmImage};
use avm_wire::Decode;

use crate::error::FaultReason;
use crate::events::{AckRecord, NdDetail, NdEventRecord, RecvRecord};
use crate::replay::{ReplayOutcome, ReplaySummary, Replayer};

/// Verdict of an audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditOutcome {
    /// The machine's log is consistent with a correct execution.
    Pass(ReplaySummary),
    /// The machine is faulty; evidence is attached.
    Fail(Box<Evidence>),
}

/// Full report of one audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Name of the audited machine.
    pub machine: String,
    /// The verdict.
    pub outcome: AuditOutcome,
    /// Number of log entries examined.
    pub entries_examined: u64,
    /// Whether the syntactic check passed.
    pub syntactic_ok: bool,
}

impl AuditReport {
    /// True if the audit found no fault.
    pub fn passed(&self) -> bool {
        matches!(self.outcome, AuditOutcome::Pass(_))
    }

    /// The fault reason, if the audit failed.
    pub fn fault(&self) -> Option<&FaultReason> {
        match &self.outcome {
            AuditOutcome::Fail(evidence) => Some(&evidence.fault),
            AuditOutcome::Pass(_) => None,
        }
    }
}

/// Transferable evidence of a fault.
///
/// Evidence contains everything a third party needs to repeat the auditor's
/// checks: the reference image digest (the third party must hold the same
/// reference image), the log segment, the authenticators, and the fault the
/// auditor claims.  Verification re-runs both checks from scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// Name of the accused machine.
    pub machine: String,
    /// The fault the auditor claims to have found.
    pub fault: FaultReason,
    /// Hash of the entry preceding the segment (chain anchor).
    pub prev_hash: avm_crypto::sha256::Digest,
    /// The log segment.
    pub segment: Vec<LogEntry>,
    /// Authenticators collected from the machine's messages.
    pub authenticators: Vec<Authenticator>,
    /// Digest of the reference image the auditor replayed against.
    pub reference_image: avm_crypto::sha256::Digest,
}

impl Evidence {
    /// Independently verifies this evidence, as a third party would:
    /// re-run the syntactic check and the semantic check and confirm that a
    /// fault (not necessarily byte-identical in its description) is found.
    ///
    /// Returns `true` if the evidence indeed demonstrates a fault.  Evidence
    /// must be substantiated: an empty segment proves nothing (the paper's
    /// "machine returns no log" case leads to *suspicion*, resolved by the
    /// challenge protocol of §4.6, not to offline-verifiable proof), and any
    /// included authenticator must carry the accused machine's genuine
    /// signature — otherwise the auditor could frame an honest machine with
    /// fabricated data.
    pub fn verify(
        &self,
        machine_key: &VerifyingKey,
        reference: &VmImage,
        registry: &GuestRegistry,
    ) -> bool {
        if reference.digest() != self.reference_image {
            return false;
        }
        if self.segment.is_empty() {
            return false;
        }
        if self
            .authenticators
            .iter()
            .any(|a| a.verify_signature(machine_key).is_err())
        {
            return false;
        }
        let report = audit_log(
            &self.machine,
            &self.prev_hash,
            &self.segment,
            &self.authenticators,
            machine_key,
            reference,
            registry,
        );
        !report.passed()
    }
}

/// Audits a log segment: syntactic check, cross-reference checks, then
/// deterministic replay against the reference image.
///
/// This is the full-audit entry point ("replaying the log from the beginning
/// of the execution"); spot checks go through [`crate::spotcheck`].
#[allow(clippy::too_many_arguments)]
pub fn audit_log(
    machine_name: &str,
    prev_hash: &avm_crypto::sha256::Digest,
    segment: &[LogEntry],
    authenticators: &[Authenticator],
    machine_key: &VerifyingKey,
    reference: &VmImage,
    registry: &GuestRegistry,
) -> AuditReport {
    let entries_examined = segment.len() as u64;
    let fail = |syntactic_ok: bool, fault: FaultReason| AuditReport {
        machine: machine_name.to_string(),
        outcome: AuditOutcome::Fail(Box::new(Evidence {
            machine: machine_name.to_string(),
            fault,
            prev_hash: *prev_hash,
            segment: segment.to_vec(),
            authenticators: authenticators.to_vec(),
            reference_image: reference.digest(),
        })),
        entries_examined,
        syntactic_ok,
    };

    // --- Syntactic check -------------------------------------------------
    if let Err(e) = verify_segment(prev_hash, segment, authenticators, machine_key) {
        return fail(false, FaultReason::SyntacticFailure(e.to_string()));
    }
    if let Err(fault) = syntactic_content_checks(segment) {
        return fail(false, fault);
    }

    // --- Semantic check (deterministic replay) ---------------------------
    let mut replayer = match Replayer::from_image(reference, registry) {
        Ok(r) => r,
        Err(e) => {
            return fail(
                true,
                FaultReason::SyntacticFailure(format!(
                    "could not instantiate reference machine: {e}"
                )),
            )
        }
    };
    match replayer.replay(segment) {
        ReplayOutcome::Consistent(summary) => AuditReport {
            machine: machine_name.to_string(),
            outcome: AuditOutcome::Pass(summary),
            entries_examined,
            syntactic_ok: true,
        },
        ReplayOutcome::Fault(fault) => fail(true, fault),
    }
}

/// Additional syntactic checks on entry contents: every entry must decode,
/// and every packet injection must cross-reference a logged RECV entry with
/// a matching payload hash (paper §4.4: "the AVMM cross-references messages
/// and inputs in such a way that any discrepancies can easily be detected").
fn syntactic_content_checks(segment: &[LogEntry]) -> Result<(), FaultReason> {
    use std::collections::HashMap;
    let mut recvs: HashMap<u64, RecvRecord> = HashMap::new();
    let mut send_seqs: Vec<u64> = Vec::new();
    for entry in segment {
        match entry.kind {
            EntryKind::Recv => {
                let rec = RecvRecord::decode_exact(&entry.content)
                    .map_err(|_| FaultReason::MalformedLog { seq: entry.seq })?;
                recvs.insert(entry.seq, rec);
            }
            EntryKind::Send => {
                send_seqs.push(entry.seq);
            }
            EntryKind::Ack => {
                let rec = AckRecord::decode_exact(&entry.content)
                    .map_err(|_| FaultReason::MalformedLog { seq: entry.seq })?;
                if !send_seqs.contains(&rec.send_seq) {
                    return Err(FaultReason::CrossReferenceFailure {
                        seq: entry.seq,
                        detail: format!(
                            "acknowledgment refers to SEND entry {} which is not in the segment",
                            rec.send_seq
                        ),
                    });
                }
            }
            EntryKind::NdEvent => {
                let rec = NdEventRecord::decode_exact(&entry.content)
                    .map_err(|_| FaultReason::MalformedLog { seq: entry.seq })?;
                if let NdDetail::PacketInjected {
                    recv_seq,
                    payload_hash,
                } = rec.detail
                {
                    match recvs.get(&recv_seq) {
                        Some(recv) if recv.payload_hash() == payload_hash => {}
                        Some(_) => {
                            return Err(FaultReason::CrossReferenceFailure {
                                seq: entry.seq,
                                detail: "injected payload differs from the logged RECV message".into(),
                            })
                        }
                        None => {
                            return Err(FaultReason::CrossReferenceFailure {
                                seq: entry.seq,
                                detail: format!("injection references RECV entry {recv_seq} not present in the segment"),
                            })
                        }
                    }
                }
            }
            EntryKind::Meta | EntryKind::Snapshot => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AvmmOptions;
    use crate::envelope::{Envelope, EnvelopeKind};
    use crate::recorder::{Avmm, HostClock};
    use avm_crypto::keys::{SignatureScheme, SigningKey};
    use avm_vm::bytecode::assemble;
    use avm_vm::packet::encode_guest_packet;
    use avm_wire::Encode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> SigningKey {
        let mut rng = StdRng::seed_from_u64(seed);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    fn echo_image() -> VmImage {
        let src = r"
                movi r1, 0x8000
                movi r2, 512
            loop:
                clock r4
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                send r1, r0
                jmp loop
            ";
        VmImage::bytecode("echo", 128 * 1024, assemble(src, 0).unwrap(), 0, 0)
    }

    /// Records a session where Alice exchanges packets with Bob's AVMM and
    /// collects the authenticators Bob's machine hands out.
    fn record(bob_key: SigningKey, image: &VmImage) -> (Avmm, Vec<Authenticator>, SigningKey) {
        let alice_key = key(2);
        let mut bob = Avmm::new(
            "bob",
            image,
            &GuestRegistry::new(),
            bob_key,
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
        )
        .unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let mut collected = Vec::new();
        let mut clock = HostClock::at(100);
        bob.run_slice(&clock, 10_000).unwrap();
        for i in 0..3u8 {
            clock.advance_to(clock.now() + 500);
            let payload = encode_guest_packet("alice", &[b'p', i]);
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                i as u64 + 1,
                payload,
                &alice_key,
                None,
            );
            let ack = bob.deliver(&env).unwrap().unwrap();
            // Alice keeps the authenticator from Bob's acknowledgment.
            if let Some(a) = ack.decode_ack().unwrap().authenticator {
                collected.push(a);
            }
            for out in bob.run_slice(&clock, 50_000).unwrap() {
                // Alice also keeps the authenticators attached to Bob's data.
                if let Some(a) = &out.envelope.authenticator {
                    collected.push(a.clone());
                }
            }
        }
        (bob, collected, alice_key)
    }

    #[test]
    fn honest_machine_passes_full_audit() {
        let image = echo_image();
        let bob_key = key(1);
        let bob_pub = bob_key.verifying_key();
        let (bob, auths, _) = record(bob_key, &image);
        let (prev, segment) = bob.log().segment(1, bob.log().len() as u64).unwrap();
        let report = audit_log(
            "bob",
            &prev,
            &segment,
            &auths,
            &bob_pub,
            &image,
            &GuestRegistry::new(),
        );
        assert!(report.passed(), "{:?}", report.fault());
        assert!(report.syntactic_ok);
        assert_eq!(report.entries_examined, bob.log().len() as u64);
    }

    #[test]
    fn rewritten_log_fails_syntactic_check_and_evidence_verifies() {
        let image = echo_image();
        let bob_key = key(1);
        let bob_pub = bob_key.verifying_key();
        let (bob, auths, _) = record(bob_key, &image);
        let (prev, mut segment) = bob.log().segment(1, bob.log().len() as u64).unwrap();
        // Bob tampers with a logged entry after the fact.
        let idx = segment
            .iter()
            .position(|e| e.kind == EntryKind::Send)
            .unwrap();
        segment[idx].content[3] ^= 0x01;
        let report = audit_log(
            "bob",
            &prev,
            &segment,
            &auths,
            &bob_pub,
            &image,
            &GuestRegistry::new(),
        );
        assert!(!report.passed());
        assert!(!report.syntactic_ok);
        let AuditOutcome::Fail(evidence) = &report.outcome else {
            panic!()
        };
        assert!(matches!(evidence.fault, FaultReason::SyntacticFailure(_)));
        // A third party can verify the evidence without trusting the auditor.
        assert!(evidence.verify(&bob_pub, &image, &GuestRegistry::new()));
        // Evidence against the wrong reference image does not verify.
        let other = VmImage::bytecode("x", 4096, assemble("halt", 0).unwrap(), 0, 0);
        assert!(!evidence.verify(&bob_pub, &other, &GuestRegistry::new()));
    }

    #[test]
    fn injection_without_recv_fails_cross_reference_check() {
        let image = echo_image();
        let bob_key = key(1);
        let bob_pub = bob_key.verifying_key();
        let (bob, _, _) = record(bob_key, &image);
        // Drop all RECV entries but keep the injections, then rebuild the
        // chain (so the hash chain itself is valid).
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        for e in bob.log().entries() {
            if e.kind == EntryKind::Recv {
                continue;
            }
            rebuilt.append(e.kind, e.content.clone());
        }
        let (prev, segment) = rebuilt.segment(1, rebuilt.len() as u64).unwrap();
        let report = audit_log(
            "bob",
            &prev,
            &segment,
            &[],
            &bob_pub,
            &image,
            &GuestRegistry::new(),
        );
        assert!(!report.passed());
        assert!(matches!(
            report.fault(),
            Some(FaultReason::CrossReferenceFailure { .. })
        ));
    }

    #[test]
    fn semantic_failure_produces_verifiable_evidence() {
        let image = echo_image();
        let bob_key = key(1);
        let bob_pub = bob_key.verifying_key();
        let (bob, _, _) = record(bob_key, &image);
        // Bob rebuilds his log from scratch with a modified SEND payload and
        // fresh authenticators — syntactically valid, semantically wrong.
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        for e in bob.log().entries() {
            let content = if e.kind == EntryKind::Send {
                let mut rec = crate::events::SendRecord::decode_exact(&e.content).unwrap();
                rec.payload = encode_guest_packet("alice", b"fabricated!");
                rec.encode_to_vec()
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        let (prev, segment) = rebuilt.segment(1, rebuilt.len() as u64).unwrap();
        let report = audit_log(
            "bob",
            &prev,
            &segment,
            &[],
            &bob_pub,
            &image,
            &GuestRegistry::new(),
        );
        assert!(!report.passed());
        assert!(report.syntactic_ok);
        let AuditOutcome::Fail(evidence) = &report.outcome else {
            panic!()
        };
        assert!(evidence.verify(&bob_pub, &image, &GuestRegistry::new()));
    }

    #[test]
    fn evidence_for_honest_machine_does_not_verify() {
        // Accuracy: nobody can fabricate evidence against a correct machine
        // out of its genuine log.
        let image = echo_image();
        let bob_key = key(1);
        let bob_pub = bob_key.verifying_key();
        let (bob, auths, _) = record(bob_key, &image);
        let (prev, segment) = bob.log().segment(1, bob.log().len() as u64).unwrap();
        let forged_evidence = Evidence {
            machine: "bob".into(),
            fault: FaultReason::MissingLog,
            prev_hash: prev,
            segment,
            authenticators: auths,
            reference_image: image.digest(),
        };
        assert!(!forged_evidence.verify(&bob_pub, &image, &GuestRegistry::new()));
    }
}
