//! Spot checking: partial audits of `k`-chunks between snapshots.
//!
//! "For long-running, compute-intensive applications, Alice may want to save
//! time by doing spot checks on a few log segments instead.  The AVMM can
//! enable her to do this by periodically taking a snapshot of the AVM's
//! state.  Thus, Alice can independently inspect any segment that begins and
//! ends at a snapshot" (paper §3.5).  Figure 9 reports the replay time and
//! the data that must be transferred as a function of the chunk size `k`.

use avm_compress::{CompressionLevel, CompressionStats};
use avm_crypto::sha256::Digest;
use avm_log::{EntryKind, LogEntry, TamperEvidentLog};
use avm_vm::{GuestRegistry, VmImage};
use avm_wire::{Decode, Encode};

use crate::error::{CoreError, FaultReason};
use crate::events::SnapshotRecord;
use crate::replay::{ReplayOutcome, Replayer};
use crate::snapshot::SnapshotStore;

/// Compression level used to model transferred state and log segments; the
/// audit tool compresses downloads at the default level.  Public so
/// experiments comparing spot checks against a full-audit baseline compress
/// both sides of the ratio identically.
pub const TRANSFER_COMPRESSION: CompressionLevel = CompressionLevel::Default;

/// Outcome and cost accounting of one spot check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpotCheckReport {
    /// Index of the first segment in the chunk (snapshot id the check starts from).
    pub start_snapshot: u64,
    /// Number of consecutive segments covered (`k`).
    pub chunk_size: u64,
    /// Whether the chunk replayed consistently.
    pub consistent: bool,
    /// The fault, if one was found.
    pub fault: Option<FaultReason>,
    /// Log entries replayed.  On a fault this counts entries processed up to
    /// and including the faulting one — the truthful partial cost.
    pub entries_replayed: u64,
    /// Machine steps replayed (also truthful on a faulted chunk).
    pub steps_replayed: u64,
    /// Bytes of snapshot state that had to be transferred to start the check.
    pub snapshot_transfer_bytes: u64,
    /// Bytes of log that had to be transferred for the chunk.
    pub log_transfer_bytes: u64,
    /// Compressed size of the transferred snapshot state (the §6.12 numbers
    /// report compressed snapshots).
    pub snapshot_transfer_compressed_bytes: u64,
    /// Compressed size of the transferred log segment.
    pub log_transfer_compressed_bytes: u64,
}

impl SpotCheckReport {
    /// Total raw bytes transferred for this spot check.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.snapshot_transfer_bytes + self.log_transfer_bytes
    }

    /// Total compressed bytes transferred for this spot check.
    pub fn total_transfer_compressed_bytes(&self) -> u64 {
        self.snapshot_transfer_compressed_bytes + self.log_transfer_compressed_bytes
    }
}

/// Locates the log positions of all snapshot entries.
///
/// Returns `(entry index, snapshot id, state root)` for each SNAPSHOT entry.
/// A SNAPSHOT entry whose payload does not decode is log corruption the
/// recorder signed — it surfaces as [`FaultReason::MalformedLog`] rather than
/// being silently dropped (which would later masquerade as "snapshot N not
/// in log").
pub fn snapshot_positions(
    log: &TamperEvidentLog,
) -> Result<Vec<(usize, u64, Digest)>, FaultReason> {
    log.entries()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == EntryKind::Snapshot)
        .map(|(i, e)| {
            SnapshotRecord::decode_exact(&e.content)
                .map(|rec| (i, rec.snapshot_id, rec.state_root))
                .map_err(|_| FaultReason::MalformedLog { seq: e.seq })
        })
        .collect()
}

/// Spot-checks the `k`-chunk starting at snapshot `start_snapshot`.
///
/// The chunk consists of the log entries between the SNAPSHOT entry for
/// `start_snapshot` (exclusive) and the SNAPSHOT entry `k` snapshots later
/// (inclusive), or the end of the log if there are fewer snapshots.  The
/// auditor "can either download an entire snapshot or incrementally request
/// the parts of the state that are accessed during replay"; we account for a
/// full download of the snapshot chain.
pub fn spot_check(
    log: &TamperEvidentLog,
    snapshots: &SnapshotStore,
    start_snapshot: u64,
    k: u64,
    image: &VmImage,
    registry: &GuestRegistry,
) -> Result<SpotCheckReport, CoreError> {
    let positions = match snapshot_positions(log) {
        Ok(positions) => positions,
        // A corrupt SNAPSHOT record is itself the audit's verdict.  The
        // check stops before downloading any snapshot state or replaying,
        // but discovering the corruption still cost the auditor the log up
        // to and including the corrupt entry — count it truthfully.
        Err(fault) => {
            let scanned = match fault {
                FaultReason::MalformedLog { seq } => {
                    let upto = log
                        .entries()
                        .iter()
                        .position(|e| e.seq == seq)
                        .map_or(log.entries().len(), |i| i + 1);
                    &log.entries()[..upto]
                }
                _ => log.entries(),
            };
            let log_cost = CompressionStats::measure_stream(
                scanned.iter().map(|e| e.encode_to_vec()),
                TRANSFER_COMPRESSION,
            );
            return Ok(SpotCheckReport {
                start_snapshot,
                chunk_size: k,
                consistent: false,
                fault: Some(fault),
                entries_replayed: 0,
                steps_replayed: 0,
                snapshot_transfer_bytes: 0,
                log_transfer_bytes: log_cost.raw_bytes,
                snapshot_transfer_compressed_bytes: 0,
                log_transfer_compressed_bytes: log_cost.compressed_bytes,
            });
        }
    };
    let start_pos = positions
        .iter()
        .find(|(_, id, _)| *id == start_snapshot)
        .map(|(i, _, _)| *i)
        .ok_or_else(|| CoreError::Snapshot(format!("snapshot {start_snapshot} not in log")))?;
    let end_idx = positions
        .iter()
        .find(|(_, id, _)| *id == start_snapshot + k)
        .map(|(i, _, _)| *i);
    let entries: &[LogEntry] = match end_idx {
        Some(end) => &log.entries()[start_pos + 1..=end],
        None => &log.entries()[start_pos + 1..],
    };

    let snapshot_cost = snapshots.transfer_cost_upto(start_snapshot, TRANSFER_COMPRESSION);
    debug_assert_eq!(
        snapshot_cost.raw_bytes,
        snapshots.transfer_bytes_upto(start_snapshot),
        "transfer stream and byte accounting diverged"
    );
    let log_cost = CompressionStats::measure_stream(
        entries.iter().map(|e| e.encode_to_vec()),
        TRANSFER_COMPRESSION,
    );

    let mut replayer = Replayer::from_snapshot(image, registry, snapshots, start_snapshot)?;
    let (consistent, fault) = match replayer.replay(entries) {
        ReplayOutcome::Consistent(_) => (true, None),
        ReplayOutcome::Fault(f) => (false, Some(f)),
    };
    // Progress counters come from the replayer itself so faulted chunks
    // report how far replay actually got, not `entries.len()` and zero steps.
    let progress = replayer.summary();

    Ok(SpotCheckReport {
        start_snapshot,
        chunk_size: k,
        consistent,
        fault,
        entries_replayed: progress.entries_replayed,
        steps_replayed: progress.steps_executed,
        snapshot_transfer_bytes: snapshot_cost.raw_bytes,
        log_transfer_bytes: log_cost.raw_bytes,
        snapshot_transfer_compressed_bytes: snapshot_cost.compressed_bytes,
        log_transfer_compressed_bytes: log_cost.compressed_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AvmmOptions;
    use crate::envelope::{Envelope, EnvelopeKind};
    use crate::recorder::{Avmm, HostClock};
    use avm_crypto::keys::{SignatureScheme, SigningKey};
    use avm_vm::bytecode::assemble;
    use avm_vm::packet::encode_guest_packet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> SigningKey {
        let mut rng = StdRng::seed_from_u64(seed);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    /// A guest that accumulates received bytes into memory and periodically
    /// writes a counter to disk, so snapshots have real content.
    fn worker_image() -> VmImage {
        let src = r"
                movi r1, 0x8000
                movi r2, 512
                movi r5, 0x9000
            loop:
                clock r4
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                load r3, r5
                add r3, r0
                store r3, r5
                movi r7, 0
                movi r8, 8
                diskwr r7, r5, r8
                send r1, r0
                jmp loop
            ";
        VmImage::bytecode("worker", 128 * 1024, assemble(src, 0).unwrap(), 0, 0)
            .with_disk(vec![0u8; 8192])
    }

    /// Records a session with `n_snapshots` snapshots, one after every
    /// delivered packet.
    fn record_with_snapshots(n_snapshots: u64) -> (Avmm, VmImage) {
        let image = worker_image();
        let alice_key = key(2);
        let mut bob = Avmm::new(
            "bob",
            &image,
            &GuestRegistry::new(),
            key(1),
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
        )
        .unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let mut clock = HostClock::at(10);
        bob.run_slice(&clock, 10_000).unwrap();
        for i in 0..n_snapshots {
            clock.advance_to(clock.now() + 1_000);
            let payload = encode_guest_packet("alice", format!("work-{i}").as_bytes());
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                i + 1,
                payload,
                &alice_key,
                None,
            );
            bob.deliver(&env).unwrap();
            bob.run_slice(&clock, 100_000).unwrap();
            bob.take_snapshot();
        }
        (bob, image)
    }

    #[test]
    fn honest_chunks_pass_for_various_k() {
        let (bob, image) = record_with_snapshots(5);
        assert_eq!(bob.snapshots().len(), 5);
        for (start, k) in [(0u64, 1u64), (0, 3), (1, 2), (2, 2), (4, 1)] {
            let report = spot_check(
                bob.log(),
                bob.snapshots(),
                start,
                k,
                &image,
                &GuestRegistry::new(),
            )
            .unwrap();
            assert!(report.consistent, "chunk ({start},{k}): {:?}", report.fault);
            assert!(report.snapshot_transfer_bytes > 0 || start == 0);
            assert!(report.log_transfer_bytes > 0 || report.entries_replayed == 0);
            assert_eq!(report.chunk_size, k);
        }
    }

    #[test]
    fn larger_chunks_cost_more_replay_but_share_snapshot_cost() {
        let (bob, image) = record_with_snapshots(5);
        let k1 = spot_check(
            bob.log(),
            bob.snapshots(),
            1,
            1,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        let k3 = spot_check(
            bob.log(),
            bob.snapshots(),
            1,
            3,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        assert!(k3.entries_replayed > k1.entries_replayed);
        assert!(k3.log_transfer_bytes > k1.log_transfer_bytes);
        assert_eq!(k3.snapshot_transfer_bytes, k1.snapshot_transfer_bytes);
        assert!(k3.total_transfer_bytes() > k1.total_transfer_bytes());
    }

    #[test]
    fn spot_check_detects_fault_inside_the_chunk() {
        let (bob, image) = record_with_snapshots(3);
        // Tamper with the last SEND payload in the log, then rebuild the
        // chain so the syntactic layer would not object.
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        let last_send_seq = bob
            .log()
            .entries()
            .iter()
            .filter(|e| e.kind == EntryKind::Send)
            .last()
            .unwrap()
            .seq;
        for e in bob.log().entries() {
            let content = if e.seq == last_send_seq {
                let mut rec = crate::events::SendRecord::decode_exact(&e.content).unwrap();
                rec.payload = encode_guest_packet("alice", b"cheated");
                use avm_wire::Encode;
                rec.encode_to_vec()
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        // The fault is in the last segment: a chunk covering it fails ...
        let report = spot_check(
            &rebuilt,
            bob.snapshots(),
            1,
            2,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        assert!(!report.consistent);
        assert!(report.fault.is_some());
        // ... and reports truthful partial progress: the replayer got through
        // part of the chunk before diverging, so the Fig. 9 cost is neither
        // "everything" nor zero.
        let chunk_entries = {
            let positions = snapshot_positions(&rebuilt).unwrap();
            let start = positions.iter().find(|(_, id, _)| *id == 1).unwrap().0;
            rebuilt.entries().len() - (start + 1)
        };
        assert!(report.entries_replayed > 0);
        assert!(
            (report.entries_replayed as usize) < chunk_entries,
            "fault in the last segment must stop replay early: {} vs {}",
            report.entries_replayed,
            chunk_entries
        );
        assert!(
            report.steps_replayed > 0,
            "replay executed real steps before faulting"
        );
        // ... while a chunk before it still passes (spot checking only sees
        // faults that manifest in the inspected segments, §3.5).
        let earlier = spot_check(
            &rebuilt,
            bob.snapshots(),
            0,
            1,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        assert!(earlier.consistent);
    }

    #[test]
    fn unknown_snapshot_is_an_error() {
        let (bob, image) = record_with_snapshots(2);
        assert!(spot_check(
            bob.log(),
            bob.snapshots(),
            9,
            1,
            &image,
            &GuestRegistry::new()
        )
        .is_err());
    }

    #[test]
    fn snapshot_positions_found() {
        let (bob, _) = record_with_snapshots(3);
        let pos = snapshot_positions(bob.log()).unwrap();
        assert_eq!(pos.len(), 3);
        assert_eq!(pos[0].1, 0);
        assert_eq!(pos[2].1, 2);
        assert!(pos[0].0 < pos[1].0 && pos[1].0 < pos[2].0);
    }

    #[test]
    fn corrupt_snapshot_record_is_a_fault_not_a_missing_snapshot() {
        let (bob, image) = record_with_snapshots(3);
        // Corrupt the payload of the second SNAPSHOT entry and rebuild the
        // chain so the syntactic layer would not object.
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        let mut snapshot_entries_seen = 0;
        let mut corrupted_seq = 0;
        for e in bob.log().entries() {
            let content = if e.kind == EntryKind::Snapshot {
                snapshot_entries_seen += 1;
                if snapshot_entries_seen == 2 {
                    corrupted_seq = rebuilt.len() as u64 + 1;
                    vec![0xff, 0x01] // does not decode as a SnapshotRecord
                } else {
                    e.content.clone()
                }
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        assert!(matches!(
            snapshot_positions(&rebuilt),
            Err(FaultReason::MalformedLog { .. })
        ));
        // The spot check surfaces the corruption as a fault verdict (with the
        // corrupt entry's seq), not as the misleading "snapshot not in log".
        let report = spot_check(
            &rebuilt,
            bob.snapshots(),
            0,
            1,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        assert!(!report.consistent);
        assert!(
            matches!(report.fault, Some(FaultReason::MalformedLog { seq }) if seq == corrupted_seq),
            "expected MalformedLog at seq {corrupted_seq}, got {:?}",
            report.fault
        );
        assert_eq!(report.entries_replayed, 0);
        // No snapshot state was downloaded, but discovering the corruption
        // cost the auditor the log up to the corrupt entry.
        assert_eq!(report.snapshot_transfer_bytes, 0);
        let scanned_bytes: u64 = bob
            .log()
            .entries()
            .iter()
            .take(corrupted_seq as usize - 1)
            .map(|e| e.wire_size() as u64)
            .sum();
        // Entries before the corrupt one are identical in the rebuilt log,
        // and the corrupt entry itself is counted on top.
        assert!(report.log_transfer_bytes > scanned_bytes);
        assert!(report.log_transfer_compressed_bytes > 0);
        assert!(report.log_transfer_compressed_bytes < report.log_transfer_bytes);
    }

    #[test]
    fn transfer_accounting_reports_compressed_alongside_raw() {
        let (bob, image) = record_with_snapshots(4);
        let report = spot_check(
            bob.log(),
            bob.snapshots(),
            1,
            2,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        assert!(report.consistent);
        // Compressed sizes are measured on the real transfer streams; guest
        // state and replay logs are highly compressible, so the modelled
        // download must come in under the raw size.
        assert!(report.snapshot_transfer_compressed_bytes > 0);
        assert!(report.log_transfer_compressed_bytes > 0);
        assert!(report.snapshot_transfer_compressed_bytes < report.snapshot_transfer_bytes);
        assert!(report.log_transfer_compressed_bytes < report.log_transfer_bytes);
        assert_eq!(
            report.total_transfer_compressed_bytes(),
            report.snapshot_transfer_compressed_bytes + report.log_transfer_compressed_bytes
        );
    }
}
