//! Spot checking: partial audits of `k`-chunks between snapshots.
//!
//! "For long-running, compute-intensive applications, Alice may want to save
//! time by doing spot checks on a few log segments instead.  The AVMM can
//! enable her to do this by periodically taking a snapshot of the AVM's
//! state.  Thus, Alice can independently inspect any segment that begins and
//! ends at a snapshot" (paper §3.5).  Figure 9 reports the replay time and
//! the data that must be transferred as a function of the chunk size `k`.

use avm_crypto::sha256::Digest;
use avm_log::{EntryKind, LogEntry, TamperEvidentLog};
use avm_vm::{GuestRegistry, VmImage};
use avm_wire::Decode;

use crate::error::{CoreError, FaultReason};
use crate::events::SnapshotRecord;
use crate::replay::{ReplayOutcome, Replayer};
use crate::snapshot::SnapshotStore;

/// Outcome and cost accounting of one spot check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpotCheckReport {
    /// Index of the first segment in the chunk (snapshot id the check starts from).
    pub start_snapshot: u64,
    /// Number of consecutive segments covered (`k`).
    pub chunk_size: u64,
    /// Whether the chunk replayed consistently.
    pub consistent: bool,
    /// The fault, if one was found.
    pub fault: Option<FaultReason>,
    /// Log entries replayed.
    pub entries_replayed: u64,
    /// Machine steps replayed.
    pub steps_replayed: u64,
    /// Bytes of snapshot state that had to be transferred to start the check.
    pub snapshot_transfer_bytes: u64,
    /// Bytes of log that had to be transferred for the chunk.
    pub log_transfer_bytes: u64,
}

impl SpotCheckReport {
    /// Total bytes transferred for this spot check.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.snapshot_transfer_bytes + self.log_transfer_bytes
    }
}

/// Locates the log positions of all snapshot entries.
///
/// Returns `(entry index, snapshot id, state root)` for each SNAPSHOT entry.
pub fn snapshot_positions(log: &TamperEvidentLog) -> Vec<(usize, u64, Digest)> {
    log.entries()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == EntryKind::Snapshot)
        .filter_map(|(i, e)| {
            SnapshotRecord::decode_exact(&e.content)
                .ok()
                .map(|rec| (i, rec.snapshot_id, rec.state_root))
        })
        .collect()
}

/// Spot-checks the `k`-chunk starting at snapshot `start_snapshot`.
///
/// The chunk consists of the log entries between the SNAPSHOT entry for
/// `start_snapshot` (exclusive) and the SNAPSHOT entry `k` snapshots later
/// (inclusive), or the end of the log if there are fewer snapshots.  The
/// auditor "can either download an entire snapshot or incrementally request
/// the parts of the state that are accessed during replay"; we account for a
/// full download of the snapshot chain.
pub fn spot_check(
    log: &TamperEvidentLog,
    snapshots: &SnapshotStore,
    start_snapshot: u64,
    k: u64,
    image: &VmImage,
    registry: &GuestRegistry,
) -> Result<SpotCheckReport, CoreError> {
    let positions = snapshot_positions(log);
    let start_pos = positions
        .iter()
        .find(|(_, id, _)| *id == start_snapshot)
        .map(|(i, _, _)| *i)
        .ok_or_else(|| CoreError::Snapshot(format!("snapshot {start_snapshot} not in log")))?;
    let end_idx = positions
        .iter()
        .find(|(_, id, _)| *id == start_snapshot + k)
        .map(|(i, _, _)| *i);
    let entries: &[LogEntry] = match end_idx {
        Some(end) => &log.entries()[start_pos + 1..=end],
        None => &log.entries()[start_pos + 1..],
    };

    let snapshot_transfer_bytes = snapshots.transfer_bytes_upto(start_snapshot);
    let log_transfer_bytes: u64 = entries.iter().map(|e| e.wire_size() as u64).sum();

    let mut replayer = Replayer::from_snapshot(image, registry, snapshots, start_snapshot)?;
    let (consistent, fault, entries_replayed, steps_replayed) = match replayer.replay(entries) {
        ReplayOutcome::Consistent(summary) => {
            (true, None, summary.entries_replayed, summary.steps_executed)
        }
        ReplayOutcome::Fault(f) => (false, Some(f), entries.len() as u64, 0),
    };

    Ok(SpotCheckReport {
        start_snapshot,
        chunk_size: k,
        consistent,
        fault,
        entries_replayed,
        steps_replayed,
        snapshot_transfer_bytes,
        log_transfer_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AvmmOptions;
    use crate::envelope::{Envelope, EnvelopeKind};
    use crate::recorder::{Avmm, HostClock};
    use avm_crypto::keys::{SignatureScheme, SigningKey};
    use avm_vm::bytecode::assemble;
    use avm_vm::packet::encode_guest_packet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> SigningKey {
        let mut rng = StdRng::seed_from_u64(seed);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    /// A guest that accumulates received bytes into memory and periodically
    /// writes a counter to disk, so snapshots have real content.
    fn worker_image() -> VmImage {
        let src = r"
                movi r1, 0x8000
                movi r2, 512
                movi r5, 0x9000
            loop:
                clock r4
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                load r3, r5
                add r3, r0
                store r3, r5
                movi r7, 0
                movi r8, 8
                diskwr r7, r5, r8
                send r1, r0
                jmp loop
            ";
        VmImage::bytecode("worker", 128 * 1024, assemble(src, 0).unwrap(), 0, 0)
            .with_disk(vec![0u8; 8192])
    }

    /// Records a session with `n_snapshots` snapshots, one after every
    /// delivered packet.
    fn record_with_snapshots(n_snapshots: u64) -> (Avmm, VmImage) {
        let image = worker_image();
        let alice_key = key(2);
        let mut bob = Avmm::new(
            "bob",
            &image,
            &GuestRegistry::new(),
            key(1),
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
        )
        .unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let mut clock = HostClock::at(10);
        bob.run_slice(&clock, 10_000).unwrap();
        for i in 0..n_snapshots {
            clock.advance_to(clock.now() + 1_000);
            let payload = encode_guest_packet("alice", format!("work-{i}").as_bytes());
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                i + 1,
                payload,
                &alice_key,
                None,
            );
            bob.deliver(&env).unwrap();
            bob.run_slice(&clock, 100_000).unwrap();
            bob.take_snapshot();
        }
        (bob, image)
    }

    #[test]
    fn honest_chunks_pass_for_various_k() {
        let (bob, image) = record_with_snapshots(5);
        assert_eq!(bob.snapshots().len(), 5);
        for (start, k) in [(0u64, 1u64), (0, 3), (1, 2), (2, 2), (4, 1)] {
            let report = spot_check(
                bob.log(),
                bob.snapshots(),
                start,
                k,
                &image,
                &GuestRegistry::new(),
            )
            .unwrap();
            assert!(report.consistent, "chunk ({start},{k}): {:?}", report.fault);
            assert!(report.snapshot_transfer_bytes > 0 || start == 0);
            assert!(report.log_transfer_bytes > 0 || report.entries_replayed == 0);
            assert_eq!(report.chunk_size, k);
        }
    }

    #[test]
    fn larger_chunks_cost_more_replay_but_share_snapshot_cost() {
        let (bob, image) = record_with_snapshots(5);
        let k1 = spot_check(bob.log(), bob.snapshots(), 1, 1, &image, &GuestRegistry::new()).unwrap();
        let k3 = spot_check(bob.log(), bob.snapshots(), 1, 3, &image, &GuestRegistry::new()).unwrap();
        assert!(k3.entries_replayed > k1.entries_replayed);
        assert!(k3.log_transfer_bytes > k1.log_transfer_bytes);
        assert_eq!(k3.snapshot_transfer_bytes, k1.snapshot_transfer_bytes);
        assert!(k3.total_transfer_bytes() > k1.total_transfer_bytes());
    }

    #[test]
    fn spot_check_detects_fault_inside_the_chunk() {
        let (bob, image) = record_with_snapshots(3);
        // Tamper with the last SEND payload in the log, then rebuild the
        // chain so the syntactic layer would not object.
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        let last_send_seq = bob
            .log()
            .entries()
            .iter()
            .filter(|e| e.kind == EntryKind::Send)
            .last()
            .unwrap()
            .seq;
        for e in bob.log().entries() {
            let content = if e.seq == last_send_seq {
                let mut rec = crate::events::SendRecord::decode_exact(&e.content).unwrap();
                rec.payload = encode_guest_packet("alice", b"cheated");
                use avm_wire::Encode;
                rec.encode_to_vec()
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        // The fault is in the last segment: a chunk covering it fails ...
        let report = spot_check(&rebuilt, bob.snapshots(), 1, 2, &image, &GuestRegistry::new()).unwrap();
        assert!(!report.consistent);
        assert!(report.fault.is_some());
        // ... while a chunk before it still passes (spot checking only sees
        // faults that manifest in the inspected segments, §3.5).
        let earlier = spot_check(&rebuilt, bob.snapshots(), 0, 1, &image, &GuestRegistry::new()).unwrap();
        assert!(earlier.consistent);
    }

    #[test]
    fn unknown_snapshot_is_an_error() {
        let (bob, image) = record_with_snapshots(2);
        assert!(spot_check(bob.log(), bob.snapshots(), 9, 1, &image, &GuestRegistry::new()).is_err());
    }

    #[test]
    fn snapshot_positions_found() {
        let (bob, _) = record_with_snapshots(3);
        let pos = snapshot_positions(bob.log());
        assert_eq!(pos.len(), 3);
        assert_eq!(pos[0].1, 0);
        assert_eq!(pos[2].1, 2);
        assert!(pos[0].0 < pos[1].0 && pos[1].0 < pos[2].0);
    }
}
