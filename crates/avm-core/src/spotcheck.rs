//! Spot checking: partial audits of `k`-chunks between snapshots.
//!
//! "For long-running, compute-intensive applications, Alice may want to save
//! time by doing spot checks on a few log segments instead.  The AVMM can
//! enable her to do this by periodically taking a snapshot of the AVM's
//! state.  Thus, Alice can independently inspect any segment that begins and
//! ends at a snapshot" (paper §3.5).  Figure 9 reports the replay time and
//! the data that must be transferred as a function of the chunk size `k`.
//!
//! For the state an auditor must download to *start* a chunk, §3.5 offers a
//! choice — "download an entire snapshot or incrementally request the parts
//! of the state that are accessed during replay" — and every
//! [`SpotCheckReport`] therefore accounts up to three transfer models side
//! by side:
//!
//! 1. **full dump** — the snapshot chain shipped as whole sections
//!    ([`SnapshotStore::transfer_cost_upto`]);
//! 2. **dedup transfer** — the same state downloaded digest-addressed, so
//!    duplicate/derivable/cached content never crosses the wire
//!    ([`crate::ondemand::dedup_transfer_upto`]);
//! 3. **on-demand** — metadata up front, blobs fetched only as replay
//!    touches them ([`spot_check_on_demand`]).
//!
//! The on-demand column is additionally priced in **round trips**: the blob
//! exchange is batched (multi-digest [`avm_wire::BlobRequest`]s), and the
//! report carries both the batched round-trip count and what a naive
//! fault-at-a-time auditor would have paid, convertible to modelled wall
//! time through a configurable [`RttModel`] (default: [`TRANSFER_RTT`]).
//!
//! Since the endpoint redesign, every spot check is *driven through the
//! audit protocol* ([`crate::endpoint`]): the free functions here are thin
//! wrappers building an [`crate::endpoint::AuditClient`] over an in-process
//! [`crate::endpoint::DirectTransport`], and the report's
//! [`SpotCheckReport::transport`] column records the wire-level accounting
//! of the exchanges the check actually performed — measured simulated time
//! when the same check runs over [`crate::endpoint::SimNetTransport`].

use avm_compress::CompressionLevel;
use avm_crypto::sha256::Digest;
use avm_log::{EntryKind, LogEntry, TamperEvidentLog};
use avm_vm::{GuestRegistry, VmImage};
use avm_wire::{Decode, RttModel};

use crate::endpoint::{AuditClient, AuditServer, DirectTransport, TransportStats};
use crate::error::{CoreError, FaultReason};
use crate::events::SnapshotRecord;
use crate::ondemand::{AuditorBlobCache, OnDemandCost};
use crate::snapshot::SnapshotStore;

/// Compression level used to model transferred state and log segments; the
/// audit tool compresses downloads at the default level.  Public so
/// experiments comparing spot checks against a full-audit baseline compress
/// both sides of the ratio identically.
pub const TRANSFER_COMPRESSION: CompressionLevel = CompressionLevel::Default;

/// Round-trip model used when spot-check reports convert round-trip counts
/// into modelled latency.  Public so experiments price batched and unbatched
/// variants of the same download identically; pass a different [`RttModel`]
/// to the report accessors to re-price under other link assumptions.
pub const TRANSFER_RTT: RttModel = RttModel::DEFAULT;

/// Outcome and cost accounting of one spot check — one data point of the
/// paper's Figure 9, with the verdict, truthful replay-progress counters,
/// and the log/snapshot download priced under the §3.5 transfer models (see
/// the module docs for the three snapshot columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpotCheckReport {
    /// Index of the first segment in the chunk (snapshot id the check starts from).
    pub start_snapshot: u64,
    /// Number of consecutive segments covered (`k`).
    pub chunk_size: u64,
    /// Whether the chunk replayed consistently.
    pub consistent: bool,
    /// The fault, if one was found.
    pub fault: Option<FaultReason>,
    /// Log entries replayed.  On a fault this counts entries processed up to
    /// and including the faulting one — the truthful partial cost.
    pub entries_replayed: u64,
    /// Machine steps replayed (also truthful on a faulted chunk).
    pub steps_replayed: u64,
    /// Bytes of snapshot state that had to be transferred to start the check.
    pub snapshot_transfer_bytes: u64,
    /// Bytes of log that had to be transferred for the chunk.
    pub log_transfer_bytes: u64,
    /// Compressed size of the transferred snapshot state (the §6.12 numbers
    /// report compressed snapshots).
    pub snapshot_transfer_compressed_bytes: u64,
    /// Compressed size of the transferred log segment.
    pub log_transfer_compressed_bytes: u64,
    /// Raw bytes of a digest-addressed full-state download of the same
    /// snapshot state (manifest + blobs the auditor cannot derive locally or
    /// from its cache) — the "dedup transfer" column.  Priced only by
    /// [`spot_check_on_demand`] (zero in plain full-download checks, whose
    /// callers should not pay the pricing cost for columns they never read).
    pub snapshot_transfer_dedup_bytes: u64,
    /// Compressed size of the dedup-transfer download (zero in plain
    /// full-download checks, like the raw column).
    pub snapshot_transfer_dedup_compressed_bytes: u64,
    /// On-demand accounting — the state actually transferred because replay
    /// touched it.  Present when the check ran via [`spot_check_on_demand`]
    /// *and* replay started; absent in full-download mode and on the
    /// malformed-log early return, where the corruption verdict is reached
    /// before any snapshot state is downloaded (the dedup columns are zero
    /// there for the same reason).
    pub on_demand: Option<OnDemandCost>,
    /// Wire-level accounting of the exchanges this check drove through its
    /// [`crate::endpoint::AuditTransport`]: round trips, framed bytes,
    /// retransmissions, and the **measured** latency — simulated network
    /// time over `SimNetTransport`, [`RttModel`]-priced time over
    /// `DirectTransport` — beside the modelled columns above.
    pub transport: TransportStats,
}

impl SpotCheckReport {
    /// Total raw bytes transferred for this spot check (full-dump snapshot
    /// model).
    pub fn total_transfer_bytes(&self) -> u64 {
        self.snapshot_transfer_bytes + self.log_transfer_bytes
    }

    /// Total compressed bytes transferred for this spot check (full-dump
    /// snapshot model).
    pub fn total_transfer_compressed_bytes(&self) -> u64 {
        self.snapshot_transfer_compressed_bytes + self.log_transfer_compressed_bytes
    }

    /// Raw snapshot-state bytes under the on-demand model, when available.
    pub fn snapshot_transfer_on_demand_bytes(&self) -> Option<u64> {
        self.on_demand.as_ref().map(|c| c.transfer_bytes())
    }

    /// Compressed snapshot-state bytes under the on-demand model, when
    /// available.
    pub fn snapshot_transfer_on_demand_compressed_bytes(&self) -> Option<u64> {
        self.on_demand
            .as_ref()
            .map(|c| c.transfer_compressed_bytes())
    }

    /// Round trips the on-demand download performed with batched blob
    /// requests (manifest + one per multi-digest request), when available.
    pub fn on_demand_round_trips(&self) -> Option<u64> {
        self.on_demand.as_ref().map(|c| c.round_trips)
    }

    /// Round trips a fault-at-a-time auditor would have paid for the same
    /// on-demand download (manifest + one per fetched blob), when available.
    pub fn on_demand_round_trips_unbatched(&self) -> Option<u64> {
        self.on_demand.as_ref().map(|c| c.round_trips_unbatched)
    }

    /// Modelled wall time of the batched on-demand download under `model`
    /// ([`TRANSFER_RTT`] for the default link), when available.
    pub fn on_demand_latency_micros(&self, model: &RttModel) -> Option<u64> {
        self.on_demand.as_ref().map(|c| c.latency_micros(model))
    }

    /// Modelled wall time of the unbatched (one round trip per fault)
    /// variant of the same download — the RTT-modelled column batching is
    /// measured against.
    pub fn on_demand_latency_micros_unbatched(&self, model: &RttModel) -> Option<u64> {
        self.on_demand
            .as_ref()
            .map(|c| c.latency_micros_unbatched(model))
    }

    /// The **measured** latency of this check's actual exchanges, in
    /// microseconds: real simulated network time when the check ran over
    /// [`crate::endpoint::SimNetTransport`], per-exchange [`RttModel`]
    /// pricing over [`crate::endpoint::DirectTransport`].
    pub fn measured_latency_micros(&self) -> u64 {
        self.transport.elapsed_micros
    }

    /// What `model` predicts for this check's wire exchanges (`round_trips`
    /// RTTs plus serialising every framed byte both ways) — the prediction
    /// the measured column is validated against in the `netaudit`
    /// experiment.
    pub fn predicted_latency_micros(&self, model: &RttModel) -> u64 {
        model.latency_micros(self.transport.round_trips, self.transport.wire_bytes())
    }

    /// This report with the wire-level column cleared — what the check
    /// looks like independent of the transport that carried it.  Two
    /// reports whose `semantic()` forms are equal reached identical
    /// verdicts, faults, progress counters and transfer accounting.
    pub fn semantic(&self) -> SpotCheckReport {
        SpotCheckReport {
            transport: TransportStats::default(),
            ..self.clone()
        }
    }
}

/// Locates the log positions of all snapshot entries.
///
/// Returns `(entry index, snapshot id, state root)` for each SNAPSHOT entry.
/// A SNAPSHOT entry whose payload does not decode is log corruption the
/// recorder signed — it surfaces as [`FaultReason::MalformedLog`] rather than
/// being silently dropped (which would later masquerade as "snapshot N not
/// in log").
pub fn snapshot_positions(
    log: &TamperEvidentLog,
) -> Result<Vec<(usize, u64, Digest)>, FaultReason> {
    snapshot_positions_in(log.entries())
}

/// [`snapshot_positions`] over a slice of entries — the form an auditor
/// applies to a log segment it *downloaded* (it never trusts the provider's
/// own classification of its log).
pub fn snapshot_positions_in(
    entries: &[LogEntry],
) -> Result<Vec<(usize, u64, Digest)>, FaultReason> {
    entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == EntryKind::Snapshot)
        .map(|(i, e)| {
            SnapshotRecord::decode_exact(&e.content)
                .map(|rec| (i, rec.snapshot_id, rec.state_root))
                .map_err(|_| FaultReason::MalformedLog { seq: e.seq })
        })
        .collect()
}

/// Spot-checks the `k`-chunk starting at snapshot `start_snapshot`, with the
/// snapshot state downloaded in full (sections) — verdict by replay from a
/// materialized snapshot.
///
/// The chunk consists of the log entries between the SNAPSHOT entry for
/// `start_snapshot` (exclusive) and the SNAPSHOT entry `k` snapshots later
/// (inclusive), or the end of the log if there are fewer snapshots.  This
/// mode prices only the full-dump and log columns; use
/// [`spot_check_on_demand`] for the incremental-request mode, which also
/// fills the dedup and on-demand columns.
///
/// Thin wrapper over [`crate::endpoint::AuditClient::spot_check`] on an
/// in-process [`DirectTransport`]; drive the same check over
/// [`crate::endpoint::SimNetTransport`] to pay every exchange on the
/// simulated network instead.
pub fn spot_check(
    log: &TamperEvidentLog,
    snapshots: &SnapshotStore,
    start_snapshot: u64,
    k: u64,
    image: &VmImage,
    registry: &GuestRegistry,
) -> Result<SpotCheckReport, CoreError> {
    let server = AuditServer::new(log, snapshots);
    let mut client = AuditClient::new(DirectTransport::new(server));
    client.spot_check(start_snapshot, k, image, registry)
}

/// [`spot_check`] with the chunk's segments replayed in parallel on up to
/// `workers` lanes (§6) — field-identical to the serial report (see
/// [`crate::paraudit`]).
///
/// Thin wrapper over
/// [`crate::endpoint::AuditClient::spot_check_parallel`] on an in-process
/// [`DirectTransport`].
pub fn spot_check_parallel(
    log: &TamperEvidentLog,
    snapshots: &SnapshotStore,
    start_snapshot: u64,
    k: u64,
    image: &VmImage,
    registry: &GuestRegistry,
    workers: usize,
) -> Result<SpotCheckReport, CoreError> {
    let server = AuditServer::new(log, snapshots);
    let mut client = AuditClient::new(DirectTransport::new(server));
    client.spot_check_parallel(start_snapshot, k, image, registry, workers)
}

/// Spot-checks the `k`-chunk starting at snapshot `start_snapshot` in
/// on-demand mode (§3.5's "incrementally request the parts of the state
/// that are accessed during replay").
///
/// The replayer starts from snapshot metadata only; divergent state faults
/// in lazily as replay touches it.  Blobs the persistent `cache` already
/// holds are never re-downloaded, and blobs fetched by this check are added
/// to it — consecutive checks by the same auditor get cheaper.  The verdict
/// is produced by the on-demand replay itself and equals the full-download
/// verdict (both modes authenticate the same roots).
///
/// Thin wrapper over
/// [`crate::endpoint::AuditClient::spot_check_on_demand`]: the client
/// temporarily adopts `cache` as its persistent blob cache and hands it
/// back (with the fetched blobs added) when the check settles.
pub fn spot_check_on_demand(
    log: &TamperEvidentLog,
    snapshots: &SnapshotStore,
    start_snapshot: u64,
    k: u64,
    image: &VmImage,
    registry: &GuestRegistry,
    cache: &mut AuditorBlobCache,
) -> Result<SpotCheckReport, CoreError> {
    let server = AuditServer::new(log, snapshots);
    let mut client = AuditClient::with_cache(DirectTransport::new(server), std::mem::take(cache));
    let result = client.spot_check_on_demand(start_snapshot, k, image, registry);
    *cache = client.into_cache();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record_with_snapshots;
    use avm_vm::packet::encode_guest_packet;
    use avm_wire::Encode;

    #[test]
    fn honest_chunks_pass_for_various_k() {
        let (bob, image) = record_with_snapshots(5);
        assert_eq!(bob.snapshots().len(), 5);
        for (start, k) in [(0u64, 1u64), (0, 3), (1, 2), (2, 2), (4, 1)] {
            let report = spot_check(
                bob.log(),
                bob.snapshots(),
                start,
                k,
                &image,
                &GuestRegistry::new(),
            )
            .unwrap();
            assert!(report.consistent, "chunk ({start},{k}): {:?}", report.fault);
            assert!(report.snapshot_transfer_bytes > 0 || start == 0);
            assert!(report.log_transfer_bytes > 0 || report.entries_replayed == 0);
            assert_eq!(report.chunk_size, k);
        }
    }

    #[test]
    fn larger_chunks_cost_more_replay_but_share_snapshot_cost() {
        let (bob, image) = record_with_snapshots(5);
        let k1 = spot_check(
            bob.log(),
            bob.snapshots(),
            1,
            1,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        let k3 = spot_check(
            bob.log(),
            bob.snapshots(),
            1,
            3,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        assert!(k3.entries_replayed > k1.entries_replayed);
        assert!(k3.log_transfer_bytes > k1.log_transfer_bytes);
        assert_eq!(k3.snapshot_transfer_bytes, k1.snapshot_transfer_bytes);
        assert!(k3.total_transfer_bytes() > k1.total_transfer_bytes());
    }

    #[test]
    fn spot_check_detects_fault_inside_the_chunk() {
        let (bob, image) = record_with_snapshots(3);
        // Tamper with the last SEND payload in the log, then rebuild the
        // chain so the syntactic layer would not object.
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        let last_send_seq = bob
            .log()
            .entries()
            .iter()
            .rfind(|e| e.kind == EntryKind::Send)
            .unwrap()
            .seq;
        for e in bob.log().entries() {
            let content = if e.seq == last_send_seq {
                let mut rec = crate::events::SendRecord::decode_exact(&e.content).unwrap();
                rec.payload = encode_guest_packet("alice", b"cheated");
                use avm_wire::Encode;
                rec.encode_to_vec()
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        // The fault is in the last segment: a chunk covering it fails ...
        let report = spot_check(
            &rebuilt,
            bob.snapshots(),
            1,
            2,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        assert!(!report.consistent);
        assert!(report.fault.is_some());
        // ... and reports truthful partial progress: the replayer got through
        // part of the chunk before diverging, so the Fig. 9 cost is neither
        // "everything" nor zero.
        let chunk_entries = {
            let positions = snapshot_positions(&rebuilt).unwrap();
            let start = positions.iter().find(|(_, id, _)| *id == 1).unwrap().0;
            rebuilt.entries().len() - (start + 1)
        };
        assert!(report.entries_replayed > 0);
        assert!(
            (report.entries_replayed as usize) < chunk_entries,
            "fault in the last segment must stop replay early: {} vs {}",
            report.entries_replayed,
            chunk_entries
        );
        assert!(
            report.steps_replayed > 0,
            "replay executed real steps before faulting"
        );
        // ... while a chunk before it still passes (spot checking only sees
        // faults that manifest in the inspected segments, §3.5).
        let earlier = spot_check(
            &rebuilt,
            bob.snapshots(),
            0,
            1,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        assert!(earlier.consistent);
    }

    #[test]
    fn unknown_snapshot_is_an_error() {
        let (bob, image) = record_with_snapshots(2);
        assert!(spot_check(
            bob.log(),
            bob.snapshots(),
            9,
            1,
            &image,
            &GuestRegistry::new()
        )
        .is_err());
    }

    #[test]
    fn snapshot_positions_found() {
        let (bob, _) = record_with_snapshots(3);
        let pos = snapshot_positions(bob.log()).unwrap();
        assert_eq!(pos.len(), 3);
        assert_eq!(pos[0].1, 0);
        assert_eq!(pos[2].1, 2);
        assert!(pos[0].0 < pos[1].0 && pos[1].0 < pos[2].0);
    }

    #[test]
    fn corrupt_snapshot_record_is_a_fault_not_a_missing_snapshot() {
        let (bob, image) = record_with_snapshots(3);
        // Corrupt the payload of the second SNAPSHOT entry and rebuild the
        // chain so the syntactic layer would not object.
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        let mut snapshot_entries_seen = 0;
        let mut corrupted_seq = 0;
        for e in bob.log().entries() {
            let content = if e.kind == EntryKind::Snapshot {
                snapshot_entries_seen += 1;
                if snapshot_entries_seen == 2 {
                    corrupted_seq = rebuilt.len() as u64 + 1;
                    vec![0xff, 0x01] // does not decode as a SnapshotRecord
                } else {
                    e.content.clone()
                }
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        assert!(matches!(
            snapshot_positions(&rebuilt),
            Err(FaultReason::MalformedLog { .. })
        ));
        // The spot check surfaces the corruption as a fault verdict (with the
        // corrupt entry's seq), not as the misleading "snapshot not in log".
        let report = spot_check(
            &rebuilt,
            bob.snapshots(),
            0,
            1,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        assert!(!report.consistent);
        assert!(
            matches!(report.fault, Some(FaultReason::MalformedLog { seq }) if seq == corrupted_seq),
            "expected MalformedLog at seq {corrupted_seq}, got {:?}",
            report.fault
        );
        assert_eq!(report.entries_replayed, 0);
        // No snapshot state was downloaded, but discovering the corruption
        // cost the auditor the log up to the corrupt entry.
        assert_eq!(report.snapshot_transfer_bytes, 0);
        let scanned_bytes: u64 = bob
            .log()
            .entries()
            .iter()
            .take(corrupted_seq as usize - 1)
            .map(|e| e.wire_size() as u64)
            .sum();
        // Entries before the corrupt one are identical in the rebuilt log,
        // and the corrupt entry itself is counted on top.
        assert!(report.log_transfer_bytes > scanned_bytes);
        assert!(report.log_transfer_compressed_bytes > 0);
        assert!(report.log_transfer_compressed_bytes < report.log_transfer_bytes);
    }

    /// The three snapshot-transfer columns order as the paper predicts
    /// (on-demand ≤ dedup ≤ full dump for this workload), the on-demand
    /// verdict equals the full verdict, and a second check against the same
    /// cache re-downloads nothing.
    #[test]
    fn on_demand_spot_check_columns_and_cache() {
        let (bob, image) = record_with_snapshots(4);
        let registry = GuestRegistry::new();
        let full = spot_check(bob.log(), bob.snapshots(), 2, 1, &image, &registry).unwrap();
        assert!(full.consistent);
        // Plain full-download checks do not pay for pricing the dedup and
        // on-demand columns.
        assert!(full.on_demand.is_none());
        assert_eq!(full.snapshot_transfer_dedup_bytes, 0);
        assert_eq!(full.snapshot_transfer_dedup_compressed_bytes, 0);

        let mut cache = AuditorBlobCache::new();
        let od = spot_check_on_demand(
            bob.log(),
            bob.snapshots(),
            2,
            1,
            &image,
            &registry,
            &mut cache,
        )
        .unwrap();
        assert!(od.consistent);
        assert_eq!(od.entries_replayed, full.entries_replayed);
        assert_eq!(od.steps_replayed, full.steps_replayed);
        let cost = od.on_demand.as_ref().unwrap();
        assert!(cost.transfer_bytes() > 0);
        assert!(od.snapshot_transfer_dedup_bytes > 0);
        assert!(
            od.snapshot_transfer_dedup_bytes < od.snapshot_transfer_bytes,
            "digest-addressed download must undercut whole sections: {} vs {}",
            od.snapshot_transfer_dedup_bytes,
            od.snapshot_transfer_bytes
        );
        assert!(
            cost.transfer_bytes() <= od.snapshot_transfer_dedup_bytes,
            "on-demand must not exceed the dedup full-state download: {} vs {}",
            cost.transfer_bytes(),
            od.snapshot_transfer_dedup_bytes
        );
        assert_eq!(
            od.snapshot_transfer_on_demand_bytes(),
            Some(cost.transfer_bytes())
        );
        // RTT-modelled column: the batched exchange never pays more round
        // trips than fault-at-a-time, and the latency pricing follows.
        let rtts = od.on_demand_round_trips().unwrap();
        let rtts_unbatched = od.on_demand_round_trips_unbatched().unwrap();
        assert!(rtts >= 1);
        assert!(rtts <= rtts_unbatched);
        assert!(
            od.on_demand_latency_micros(&TRANSFER_RTT).unwrap()
                <= od
                    .on_demand_latency_micros_unbatched(&TRANSFER_RTT)
                    .unwrap()
        );

        // Warm cache: the same check again fetches zero blobs.
        let again = spot_check_on_demand(
            bob.log(),
            bob.snapshots(),
            2,
            1,
            &image,
            &registry,
            &mut cache,
        )
        .unwrap();
        assert!(again.consistent);
        let again_cost = again.on_demand.as_ref().unwrap();
        assert!(
            again_cost.fetched.is_empty(),
            "cache must prevent re-downloading held digests"
        );
    }

    /// A fault inside the chunk is detected identically in on-demand mode,
    /// with truthful partial progress.
    #[test]
    fn on_demand_spot_check_detects_fault() {
        let (bob, image) = record_with_snapshots(3);
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        let last_send_seq = bob
            .log()
            .entries()
            .iter()
            .rfind(|e| e.kind == EntryKind::Send)
            .unwrap()
            .seq;
        for e in bob.log().entries() {
            let content = if e.seq == last_send_seq {
                let mut rec = crate::events::SendRecord::decode_exact(&e.content).unwrap();
                rec.payload = encode_guest_packet("alice", b"cheated");
                rec.encode_to_vec()
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        let mut cache = AuditorBlobCache::new();
        let report = spot_check_on_demand(
            &rebuilt,
            bob.snapshots(),
            1,
            2,
            &image,
            &GuestRegistry::new(),
            &mut cache,
        )
        .unwrap();
        assert!(!report.consistent);
        assert!(report.fault.is_some());
        assert!(report.entries_replayed > 0);
        assert!(report.steps_replayed > 0);
        // The faulted check still settles its transfer accounting.
        assert!(report.on_demand.is_some());
    }

    #[test]
    fn transfer_accounting_reports_compressed_alongside_raw() {
        let (bob, image) = record_with_snapshots(4);
        let report = spot_check(
            bob.log(),
            bob.snapshots(),
            1,
            2,
            &image,
            &GuestRegistry::new(),
        )
        .unwrap();
        assert!(report.consistent);
        // Compressed sizes are measured on the real transfer streams; guest
        // state and replay logs are highly compressible, so the modelled
        // download must come in under the raw size.
        assert!(report.snapshot_transfer_compressed_bytes > 0);
        assert!(report.log_transfer_compressed_bytes > 0);
        assert!(report.snapshot_transfer_compressed_bytes < report.snapshot_transfer_bytes);
        assert!(report.log_transfer_compressed_bytes < report.log_transfer_bytes);
        assert_eq!(
            report.total_transfer_compressed_bytes(),
            report.snapshot_transfer_compressed_bytes + report.log_transfer_compressed_bytes
        );
    }
}
