//! The signed, authenticated wire format exchanged between machines.
//!
//! Every packet the guest emits is wrapped in an [`Envelope`] before it
//! leaves the machine: the AVMM "adds a cryptographic signature to each
//! packet" and "attaches an authenticator to each outgoing message"
//! (paper §4.3, §6.7).  Acknowledgments, challenges and challenge responses
//! use the same envelope with a different [`EnvelopeKind`].

use avm_crypto::keys::{KeyError, SigningKey, VerifyingKey};
use avm_log::{Acknowledgment, Authenticator};
use avm_wire::{Decode, Encode, Reader, WireError, WireResult, Writer};

/// What an envelope carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvelopeKind {
    /// Application data produced by the guest.
    Data,
    /// An acknowledgment for a previously received Data envelope.
    Ack,
    /// A forwarded challenge: "please answer this request or be suspected"
    /// (multi-party protocol, §4.6).
    Challenge,
    /// A response to a challenge.
    ChallengeResponse,
}

impl EnvelopeKind {
    fn tag(&self) -> u8 {
        match self {
            EnvelopeKind::Data => 1,
            EnvelopeKind::Ack => 2,
            EnvelopeKind::Challenge => 3,
            EnvelopeKind::ChallengeResponse => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<EnvelopeKind> {
        Some(match tag {
            1 => EnvelopeKind::Data,
            2 => EnvelopeKind::Ack,
            3 => EnvelopeKind::Challenge,
            4 => EnvelopeKind::ChallengeResponse,
            _ => return None,
        })
    }
}

/// A network-visible message between machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Message class.
    pub kind: EnvelopeKind,
    /// Sender node name.
    pub from: String,
    /// Recipient node name.
    pub to: String,
    /// Sender-local message number (used to match acknowledgments and
    /// retransmissions).
    pub msg_id: u64,
    /// The guest payload (Data), or an encoded [`Acknowledgment`] (Ack), or
    /// challenge material.
    pub payload: Vec<u8>,
    /// Sender's signature over the envelope header and payload.
    pub signature: Vec<u8>,
    /// Authenticator for the sender's SEND log entry (Data envelopes from an
    /// AVMM; `None` for plain user messages and acks).
    pub authenticator: Option<Authenticator>,
}

impl Envelope {
    /// Bytes covered by the envelope signature.
    fn signed_payload(
        kind: EnvelopeKind,
        from: &str,
        to: &str,
        msg_id: u64,
        payload: &[u8],
    ) -> Vec<u8> {
        let mut w = Writer::with_capacity(payload.len() + 64);
        w.put_raw(b"avm-envelope-v1");
        w.put_u8(kind.tag());
        w.put_str(from);
        w.put_str(to);
        w.put_varint(msg_id);
        w.put_bytes(payload);
        w.into_bytes()
    }

    /// Creates and signs an envelope.
    pub fn create(
        kind: EnvelopeKind,
        from: &str,
        to: &str,
        msg_id: u64,
        payload: Vec<u8>,
        key: &SigningKey,
        authenticator: Option<Authenticator>,
    ) -> Envelope {
        let signature = key.sign(&Self::signed_payload(kind, from, to, msg_id, &payload));
        Envelope {
            kind,
            from: from.to_string(),
            to: to.to_string(),
            msg_id,
            payload,
            signature,
            authenticator,
        }
    }

    /// Creates a Data envelope carrying an acknowledgment payload.
    pub fn ack(
        from: &str,
        to: &str,
        msg_id: u64,
        ack: &Acknowledgment,
        key: &SigningKey,
    ) -> Envelope {
        Envelope::create(
            EnvelopeKind::Ack,
            from,
            to,
            msg_id,
            ack.encode_to_vec(),
            key,
            None,
        )
    }

    /// Verifies the envelope signature under the sender's key.
    pub fn verify_signature(&self, sender_key: &VerifyingKey) -> Result<(), KeyError> {
        sender_key.verify(
            &Self::signed_payload(self.kind, &self.from, &self.to, self.msg_id, &self.payload),
            &self.signature,
        )
    }

    /// Decodes the acknowledgment carried by an Ack envelope.
    pub fn decode_ack(&self) -> Option<Acknowledgment> {
        if self.kind != EnvelopeKind::Ack {
            return None;
        }
        Acknowledgment::decode_exact(&self.payload).ok()
    }

    /// Size of the envelope on the wire, in bytes (traffic accounting, §6.7).
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for Envelope {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.kind.tag());
        w.put_str(&self.from);
        w.put_str(&self.to);
        w.put_varint(self.msg_id);
        w.put_bytes(&self.payload);
        w.put_bytes(&self.signature);
        self.authenticator.encode(w);
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let tag = r.get_u8()?;
        let kind = EnvelopeKind::from_tag(tag).ok_or(WireError::InvalidTag {
            what: "EnvelopeKind",
            tag: tag as u64,
        })?;
        Ok(Envelope {
            kind,
            from: r.get_string()?,
            to: r.get_string()?,
            msg_id: r.get_varint()?,
            payload: r.get_bytes()?.to_vec(),
            signature: r.get_bytes()?.to_vec(),
            authenticator: Option::<Authenticator>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_crypto::keys::SignatureScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> SigningKey {
        let mut rng = StdRng::seed_from_u64(seed);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    #[test]
    fn envelope_sign_verify_roundtrip() {
        let k = key(1);
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            7,
            b"game update".to_vec(),
            &k,
            None,
        );
        env.verify_signature(&k.verifying_key()).unwrap();
        let bytes = env.encode_to_vec();
        let decoded = Envelope::decode_exact(&bytes).unwrap();
        assert_eq!(decoded, env);
        assert_eq!(env.wire_size(), bytes.len());
    }

    #[test]
    fn tampered_envelope_rejected() {
        let k = key(2);
        let mut env = Envelope::create(EnvelopeKind::Data, "a", "b", 1, b"x".to_vec(), &k, None);
        env.payload = b"y".to_vec();
        assert!(env.verify_signature(&k.verifying_key()).is_err());

        let mut env2 = Envelope::create(EnvelopeKind::Data, "a", "b", 1, b"x".to_vec(), &k, None);
        env2.to = "mallory".to_string();
        assert!(env2.verify_signature(&k.verifying_key()).is_err());
    }

    #[test]
    fn wrong_sender_key_rejected() {
        let k1 = key(3);
        let k2 = key(4);
        let env = Envelope::create(EnvelopeKind::Data, "a", "b", 1, b"x".to_vec(), &k1, None);
        assert!(env.verify_signature(&k2.verifying_key()).is_err());
    }

    #[test]
    fn ack_envelope_carries_acknowledgment() {
        let k = key(5);
        let ack = Acknowledgment::user_ack(&k, b"message");
        let env = Envelope::ack("bob", "alice", 3, &ack, &k);
        assert_eq!(env.kind, EnvelopeKind::Ack);
        assert_eq!(env.decode_ack().unwrap(), ack);

        let data = Envelope::create(EnvelopeKind::Data, "a", "b", 1, vec![], &k, None);
        assert!(data.decode_ack().is_none());
    }

    #[test]
    fn null_scheme_envelopes_have_empty_signatures() {
        let mut rng = StdRng::seed_from_u64(6);
        let k = SigningKey::generate(&mut rng, SignatureScheme::Null);
        let env = Envelope::create(EnvelopeKind::Data, "a", "b", 1, b"x".to_vec(), &k, None);
        assert!(env.signature.is_empty());
        env.verify_signature(&k.verifying_key()).unwrap();
    }

    #[test]
    fn invalid_kind_tag_rejected() {
        let k = key(7);
        let env = Envelope::create(EnvelopeKind::Data, "a", "b", 1, vec![], &k, None);
        let mut bytes = env.encode_to_vec();
        bytes[0] = 99;
        assert!(Envelope::decode_exact(&bytes).is_err());
    }
}
