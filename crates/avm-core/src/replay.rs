//! Deterministic replay — the semantic half of an audit.
//!
//! The replayer "locally instantiates a virtual machine that implements
//! `M_R`, initializes the machine with the snapshot, if any, or `S`," then
//! "reads `L_ij` from beginning to end, replaying the inputs, checking the
//! outputs against the outputs in `L_ij`, and verifying any snapshot hashes"
//! (paper §4.5).  Any discrepancy whatsoever — an output that is not in the
//! log, an input requested in a different order or at a different position,
//! a snapshot hash that does not match — terminates replay and is reported
//! as a fault.
//!
//! Spot checks can start the replayer two ways (paper §3.5): from a fully
//! downloaded snapshot ([`Replayer::from_snapshot`]) or from snapshot
//! *metadata only* ([`Replayer::from_snapshot_on_demand`]), where divergent
//! memory chunks and disk blocks fault in lazily as the replayed workload
//! touches them and the auditor pays transfer only for what was accessed
//! (see [`crate::ondemand`]).  Both modes verify the same roots and reach
//! the same verdicts; they differ only in what is downloaded.

use std::collections::HashMap;

use avm_crypto::sha256::Digest;
use avm_log::{EntryKind, LogEntry};
use avm_vm::{GuestRegistry, Machine, StopCondition, VmExit, VmImage};
use avm_wire::Decode;

use crate::error::{CoreError, FaultReason};
use crate::events::{MetaRecord, NdDetail, NdEventRecord, RecvRecord, SendRecord, SnapshotRecord};
use crate::ondemand::{materialize_on_demand, AuditorBlobCache, OnDemandSession};
use crate::snapshot::{SnapshotStore, StateTreeCache};

/// Result of replaying a log segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The log is consistent with a correct execution of the reference image.
    Consistent(ReplaySummary),
    /// The log is *not* consistent: the machine is faulty.
    Fault(FaultReason),
}

impl ReplayOutcome {
    /// True if replay succeeded.
    pub fn is_consistent(&self) -> bool {
        matches!(self, ReplayOutcome::Consistent(_))
    }

    /// The fault, if any.
    pub fn fault(&self) -> Option<&FaultReason> {
        match self {
            ReplayOutcome::Fault(f) => Some(f),
            ReplayOutcome::Consistent(_) => None,
        }
    }
}

/// Statistics about a successful replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplaySummary {
    /// Number of log entries processed.
    pub entries_replayed: u64,
    /// Machine steps executed during replay.
    pub steps_executed: u64,
    /// Outgoing messages re-produced and matched against the log.
    pub outputs_matched: u64,
    /// Nondeterministic inputs re-injected.
    pub inputs_reinjected: u64,
    /// Snapshot roots verified.
    pub snapshots_verified: u64,
    /// Merkle state root of the final machine state (the same commitment
    /// snapshot records carry).  Derived from the authenticated per-leaf
    /// hashes, so it is identical between full-download and on-demand
    /// replay of the same log.
    pub final_state: Option<Digest>,
}

/// The deterministic replayer — the paper's semantic audit check (§4.5).
///
/// Construct it from the reference image ([`Replayer::from_image`], full
/// audits), from a downloaded snapshot ([`Replayer::from_snapshot`], spot
/// checks) or from snapshot metadata with lazy state fault-in
/// ([`Replayer::from_snapshot_on_demand`], §3.5 on-demand spot checks), then
/// feed it the log: it re-injects every recorded nondeterministic input at
/// its recorded step, re-derives every output and snapshot root, and reports
/// the first discrepancy as a [`FaultReason`].
pub struct Replayer {
    machine: Machine,
    reference_digest: Digest,
    /// Long-lived state tree mirroring the recorder's: each snapshot entry
    /// re-derives only the leaves dirtied since the previous one, so
    /// replay-side root checks cost O(dirty + log n) like recording does.
    state_tree: StateTreeCache,
    /// RECV entries seen so far, keyed by sequence number, for
    /// cross-referencing packet injections (paper §4.4).
    pending_recvs: HashMap<u64, RecvRecord>,
    summary: ReplaySummary,
    start_step: u64,
    /// True when a clock value has been provided but the guest has not yet
    /// been resumed to consume it (the recorder always resumes immediately;
    /// replay mirrors that lazily, see `drain_pending_clock`).
    pending_clock_response: bool,
}

impl Replayer {
    /// Creates a replayer starting from the reference image's initial state.
    pub fn from_image(image: &VmImage, registry: &GuestRegistry) -> Result<Replayer, CoreError> {
        let machine = Machine::from_image(image, registry)?;
        Ok(Self::with_machine(machine, image.digest()))
    }

    /// Creates a replayer starting from a materialized snapshot (spot checks).
    pub fn from_snapshot(
        image: &VmImage,
        registry: &GuestRegistry,
        snapshots: &SnapshotStore,
        snapshot_id: u64,
    ) -> Result<Replayer, CoreError> {
        let machine = snapshots.materialize(snapshot_id, image, registry)?;
        Ok(Self::with_machine(machine, image.digest()))
    }

    /// Creates a replayer starting from snapshot *metadata only* (§3.5
    /// on-demand spot checks): state that diverges from the reference image
    /// is staged and faults in lazily as replay touches it.
    ///
    /// The returned [`OnDemandSession`] settles the accounting after replay:
    /// call [`OnDemandSession::finish`] with [`Replayer::machine`] to obtain
    /// the blobs actually transferred (blobs already in `cache` are free).
    pub fn from_snapshot_on_demand(
        image: &VmImage,
        registry: &GuestRegistry,
        snapshots: &SnapshotStore,
        snapshot_id: u64,
        cache: &AuditorBlobCache,
    ) -> Result<(Replayer, OnDemandSession), CoreError> {
        let (machine, session) =
            materialize_on_demand(snapshots, snapshot_id, image, registry, cache)?;
        Ok((Self::with_machine(machine, image.digest()), session))
    }

    /// Creates a replayer from a manifest an audit endpoint already
    /// downloaded ([`crate::ondemand::materialize_with_manifest`]):
    /// `snapshots` is the staging oracle, the manifest authenticates against
    /// the recorded root before the replayer is returned.
    pub fn from_manifest_on_demand(
        manifest: crate::ondemand::ChainManifest,
        image: &VmImage,
        registry: &GuestRegistry,
        snapshots: &SnapshotStore,
        cache: &AuditorBlobCache,
    ) -> Result<(Replayer, OnDemandSession), CoreError> {
        let (machine, session) = crate::ondemand::materialize_with_manifest(
            manifest, snapshots, image, registry, cache,
        )?;
        Ok((Self::with_machine(machine, image.digest()), session))
    }

    fn with_machine(machine: Machine, reference_digest: Digest) -> Replayer {
        let start_step = machine.step_count();
        Replayer {
            machine,
            reference_digest,
            state_tree: StateTreeCache::new(),
            pending_recvs: HashMap::new(),
            summary: ReplaySummary::default(),
            start_step,
            pending_clock_response: false,
        }
    }

    /// The machine being replayed (for inspection after replay).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Seeds the RECV cross-reference table from entries that precede the
    /// segment this replayer will replay, without replaying them.
    ///
    /// A serial replayer that processed `entries` before the segment holds
    /// every decodable RECV record in its table; a parallel replay unit that
    /// starts mid-chunk must hold the same table, or an injection whose RECV
    /// landed before the unit's starting snapshot would misreport a
    /// [`FaultReason::CrossReferenceFailure`] the serial replay does not.
    /// Undecodable RECV entries are skipped — the serial replay faults *at*
    /// such an entry, which lives in an earlier unit, so the merged verdict
    /// never reaches this one.
    pub fn preload_recvs(&mut self, entries: &[LogEntry]) {
        for entry in entries {
            if entry.kind != EntryKind::Recv {
                continue;
            }
            if let Ok(rec) = RecvRecord::decode_exact(&entry.content) {
                self.pending_recvs.insert(entry.seq, rec);
            }
        }
    }

    /// Consumes the replayer, handing its machine and warmed state tree to
    /// a caller that keeps executing from the replayed point (crash
    /// recovery resumes the live AVMM this way).
    pub(crate) fn into_parts(self) -> (Machine, StateTreeCache) {
        (self.machine, self.state_tree)
    }

    /// Machine steps executed since this replayer was created — valid at any
    /// point, including after a fault terminated replay.
    pub fn steps_executed(&self) -> u64 {
        self.machine.step_count() - self.start_step
    }

    /// Merkle root over the machine's current state, derived through the
    /// replayer's incremental state tree.
    ///
    /// Valid in both replay modes: on a partially-resident on-demand machine
    /// the root comes from the authenticated per-leaf hashes, so it equals
    /// what a fully downloaded replay computes at the same point — the
    /// comparison tests use to pin mode equivalence.
    pub fn current_state_root(&mut self) -> Digest {
        self.state_tree.refresh(&self.machine)
    }

    /// Progress counters so far, with `steps_executed` brought up to date.
    ///
    /// Unlike the summary carried by [`ReplayOutcome::Consistent`], this is
    /// also meaningful after a fault: `entries_replayed` counts entries
    /// processed up to and including the faulting one, and `steps_executed`
    /// reflects how far the machine actually ran — the truthful replay cost
    /// a spot check must report (Fig. 9).
    pub fn summary(&self) -> ReplaySummary {
        let mut summary = self.summary.clone();
        summary.steps_executed = self.steps_executed();
        summary
    }

    /// Replays a complete segment of log entries.
    pub fn replay(&mut self, entries: &[LogEntry]) -> ReplayOutcome {
        for entry in entries {
            match self.replay_entry(entry) {
                Ok(()) => {}
                Err(fault) => {
                    self.summary.steps_executed = self.steps_executed();
                    return ReplayOutcome::Fault(fault);
                }
            }
        }
        self.summary.steps_executed = self.steps_executed();
        // The state root, not Machine::state_digest(): the latter hashes raw
        // contents and would be wrong on a partially-resident on-demand
        // machine whose untouched staged pages still hold local bytes.
        self.summary.final_state = Some(self.state_tree.refresh(&self.machine));
        ReplayOutcome::Consistent(self.summary.clone())
    }

    /// Replays a single log entry (exposed for online/incremental auditing).
    pub fn replay_entry(&mut self, entry: &LogEntry) -> Result<(), FaultReason> {
        self.summary.entries_replayed += 1;
        match entry.kind {
            EntryKind::Meta => self.replay_meta(entry),
            EntryKind::Recv => self.replay_recv(entry),
            EntryKind::Ack => Ok(()), // checked by the syntactic phase
            EntryKind::Send => self.replay_send(entry),
            EntryKind::NdEvent => self.replay_nd(entry),
            EntryKind::Snapshot => self.replay_snapshot(entry),
        }
    }

    fn replay_meta(&mut self, entry: &LogEntry) -> Result<(), FaultReason> {
        let meta = MetaRecord::decode_exact(&entry.content)
            .map_err(|_| FaultReason::MalformedLog { seq: entry.seq })?;
        if meta.image_digest != self.reference_digest {
            return Err(FaultReason::ImageMismatch {
                recorded: meta.image_digest.short_hex(),
                reference: self.reference_digest.short_hex(),
            });
        }
        Ok(())
    }

    fn replay_recv(&mut self, entry: &LogEntry) -> Result<(), FaultReason> {
        let rec = RecvRecord::decode_exact(&entry.content)
            .map_err(|_| FaultReason::MalformedLog { seq: entry.seq })?;
        self.pending_recvs.insert(entry.seq, rec);
        Ok(())
    }

    fn replay_send(&mut self, entry: &LogEntry) -> Result<(), FaultReason> {
        let rec = SendRecord::decode_exact(&entry.content)
            .map_err(|_| FaultReason::MalformedLog { seq: entry.seq })?;
        // The reference execution must produce the same packet at the same
        // instruction-stream position.  The recorded step bounds the search
        // (plus one, so the emitting instruction itself can execute), so
        // replay terminates even if the reference execution idles forever.
        let exit = self.run_until_interesting(entry.seq, Some(rec.step + 1))?;
        match exit {
            VmExit::NetTx(payload) => {
                if self.machine.step_count() != rec.step {
                    return Err(FaultReason::OutputDivergence {
                        seq: entry.seq,
                        detail: format!(
                            "output produced at step {} but log records step {}",
                            self.machine.step_count(),
                            rec.step
                        ),
                    });
                }
                if payload != rec.payload {
                    return Err(FaultReason::OutputDivergence {
                        seq: entry.seq,
                        detail: format!(
                            "payload mismatch: replay produced {} bytes, log records {} bytes",
                            payload.len(),
                            rec.payload.len()
                        ),
                    });
                }
                self.summary.outputs_matched += 1;
                Ok(())
            }
            other => Err(FaultReason::OutputDivergence {
                seq: entry.seq,
                detail: format!(
                    "log records an outgoing message but the reference execution produced '{}'",
                    other.label()
                ),
            }),
        }
    }

    fn replay_nd(&mut self, entry: &LogEntry) -> Result<(), FaultReason> {
        let rec = NdEventRecord::decode_exact(&entry.content)
            .map_err(|_| FaultReason::MalformedLog { seq: entry.seq })?;
        match rec.detail {
            NdDetail::ClockRead { value } => {
                // The clock-read pause does not consume a step, so allow the
                // bound to pass the recorded position by one instruction.
                let exit = self.run_until_interesting(entry.seq, Some(rec.step + 1))?;
                if exit != VmExit::ClockRead {
                    return Err(FaultReason::EventDivergence {
                        seq: entry.seq,
                        detail: format!(
                            "log records a clock read but the reference execution produced '{}'",
                            exit.label()
                        ),
                    });
                }
                if self.machine.step_count() != rec.step {
                    return Err(FaultReason::EventDivergence {
                        seq: entry.seq,
                        detail: format!(
                            "clock read at step {} but log records step {}",
                            self.machine.step_count(),
                            rec.step
                        ),
                    });
                }
                self.machine
                    .provide_clock(value)
                    .map_err(|e| FaultReason::GuestFault {
                        seq: entry.seq,
                        detail: e.to_string(),
                    })?;
                self.pending_clock_response = true;
                self.summary.inputs_reinjected += 1;
                Ok(())
            }
            NdDetail::PacketInjected {
                recv_seq,
                payload_hash,
            } => {
                let rec_recv = self.pending_recvs.get(&recv_seq).cloned().ok_or(
                    FaultReason::CrossReferenceFailure {
                        seq: entry.seq,
                        detail: format!("injection references unknown RECV entry {recv_seq}"),
                    },
                )?;
                if rec_recv.payload_hash() != payload_hash {
                    return Err(FaultReason::CrossReferenceFailure {
                        seq: entry.seq,
                        detail: "injected payload does not match the logged RECV message".into(),
                    });
                }
                self.run_to_step(entry.seq, rec.step)?;
                self.machine.inject_packet(rec_recv.payload.clone());
                self.summary.inputs_reinjected += 1;
                Ok(())
            }
            NdDetail::InputInjected { event } => {
                self.run_to_step(entry.seq, rec.step)?;
                self.machine.inject_input(event);
                self.summary.inputs_reinjected += 1;
                Ok(())
            }
        }
    }

    fn replay_snapshot(&mut self, entry: &LogEntry) -> Result<(), FaultReason> {
        let rec = SnapshotRecord::decode_exact(&entry.content)
            .map_err(|_| FaultReason::MalformedLog { seq: entry.seq })?;
        self.run_to_step(entry.seq, rec.step)?;
        let root = self.state_tree.refresh(&self.machine);
        if root != rec.state_root {
            return Err(FaultReason::SnapshotMismatch { seq: entry.seq });
        }
        // The recorder clears dirty tracking when it snapshots; mirror that
        // so later incremental captures stay comparable.
        self.machine.clear_dirty_tracking();
        self.summary.snapshots_verified += 1;
        Ok(())
    }

    /// Runs the machine until it produces an "interesting" exit: an output,
    /// a clock request, a halt or the step bound.  Idle exits are transparent
    /// (the recorder resumed idle guests too); console output is not part of
    /// the fault model and is skipped.  A guest that idles without making any
    /// step progress is reported as divergent rather than spinning forever.
    fn run_until_interesting(
        &mut self,
        seq: u64,
        step_bound: Option<u64>,
    ) -> Result<VmExit, FaultReason> {
        // A guest already paused on a clock read (e.g. left there by
        // `drain_pending_clock`) is itself the interesting event.
        if self.machine.is_waiting_clock() {
            return Ok(VmExit::ClockRead);
        }
        // Running the machine lets the guest consume any provided clock value.
        self.pending_clock_response = false;
        let mut last_idle_step: Option<u64> = None;
        loop {
            let stop = match step_bound {
                Some(s) => StopCondition::AtStep(s),
                None => StopCondition::Unbounded,
            };
            let exit = self
                .machine
                .run(stop)
                .map_err(|e| FaultReason::GuestFault {
                    seq,
                    detail: e.to_string(),
                })?;
            match exit {
                VmExit::Idle => {
                    let step = self.machine.step_count();
                    if last_idle_step == Some(step) {
                        return Err(FaultReason::EventDivergence {
                            seq,
                            detail: format!(
                                "reference execution is idle at step {step} waiting for input the log does not provide"
                            ),
                        });
                    }
                    last_idle_step = Some(step);
                    continue;
                }
                VmExit::ConsoleOut(_) => continue,
                other => return Ok(other),
            }
        }
    }

    /// Resumes the guest after a provided-but-unconsumed clock value, exactly
    /// as the recorder did: the recorder's run loop always continues after
    /// answering a clock read, so by the time it injects the next input the
    /// guest has consumed the value and gone idle.  Any output produced here
    /// would have appeared in the log before the current entry, so producing
    /// one now is a divergence.
    fn drain_pending_clock(&mut self, seq: u64, upto_step: u64) -> Result<(), FaultReason> {
        if !self.pending_clock_response {
            return Ok(());
        }
        self.pending_clock_response = false;
        let _ = upto_step;
        loop {
            // Unbounded: the guest must be resumed at least once so it can
            // consume the value, exactly as the recorder's run loop did.  It
            // stops at its next pause (idle or a further clock read).
            let exit = self.machine.run(StopCondition::Unbounded).map_err(|e| {
                FaultReason::GuestFault {
                    seq,
                    detail: e.to_string(),
                }
            })?;
            match exit {
                VmExit::Idle | VmExit::StepLimit | VmExit::Halted | VmExit::ClockRead => {
                    return Ok(())
                }
                VmExit::ConsoleOut(_) => continue,
                other => {
                    return Err(FaultReason::EventDivergence {
                        seq,
                        detail: format!(
                            "unexpected '{}' while resuming the guest after a clock read",
                            other.label()
                        ),
                    })
                }
            }
        }
    }

    /// Runs the machine until its step counter reaches exactly `step`.
    ///
    /// Encountering an output or a clock request on the way means the
    /// reference execution diverges from the log (those events would have
    /// been logged before this point).
    fn run_to_step(&mut self, seq: u64, step: u64) -> Result<(), FaultReason> {
        self.drain_pending_clock(seq, step)?;
        if self.machine.step_count() > step {
            return Err(FaultReason::EventDivergence {
                seq,
                detail: format!(
                    "log positions an event at step {step} but replay is already at step {}",
                    self.machine.step_count()
                ),
            });
        }
        if self.machine.step_count() == step {
            return Ok(());
        }
        let exit = self.run_until_interesting(seq, Some(step))?;
        match exit {
            VmExit::StepLimit if self.machine.step_count() == step => Ok(()),
            VmExit::Halted => Err(FaultReason::EventDivergence {
                seq,
                detail: format!(
                    "reference execution halted at step {} before reaching step {step}",
                    self.machine.step_count()
                ),
            }),
            other => Err(FaultReason::EventDivergence {
                seq,
                detail: format!(
                    "unexpected '{}' at step {} while positioning an event at step {step}",
                    other.label(),
                    self.machine.step_count()
                ),
            }),
        }
    }
}

impl core::fmt::Debug for Replayer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Replayer")
            .field("step_count", &self.machine.step_count())
            .field("entries_replayed", &self.summary.entries_replayed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AvmmOptions;
    use crate::envelope::{Envelope, EnvelopeKind};
    use crate::recorder::{Avmm, HostClock};
    use avm_crypto::keys::{SignatureScheme, SigningKey};
    use avm_vm::bytecode::assemble;
    use avm_vm::packet::encode_guest_packet;
    use avm_wire::Encode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> SigningKey {
        let mut rng = StdRng::seed_from_u64(seed);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    fn opts() -> AvmmOptions {
        AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512))
    }

    /// Guest: every received packet is echoed back; reads the clock each loop.
    fn echo_image() -> VmImage {
        let src = r"
                movi r1, 0x8000
                movi r2, 512
            loop:
                clock r4
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                send r1, r0
                jmp loop
            ";
        let code = assemble(src, 0).unwrap();
        VmImage::bytecode("echo", 128 * 1024, code, 0, 0)
    }

    /// Records a short interaction and returns the AVMM.
    fn record_session(image: &VmImage) -> (Avmm, SigningKey) {
        let alice_key = key(2);
        let mut bob = Avmm::new("bob", image, &GuestRegistry::new(), key(1), opts()).unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let mut clock = HostClock::at(100);
        bob.run_slice(&clock, 10_000).unwrap();
        for i in 0..3u8 {
            clock.advance_to(clock.now() + 1_000);
            let payload = encode_guest_packet("alice", &[b'm', i]);
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                i as u64 + 1,
                payload,
                &alice_key,
                None,
            );
            bob.deliver(&env).unwrap();
            bob.run_slice(&clock, 50_000).unwrap();
        }
        bob.take_snapshot();
        clock.advance_to(clock.now() + 1_000);
        bob.run_slice(&clock, 10_000).unwrap();
        (bob, alice_key)
    }

    #[test]
    fn honest_execution_replays_consistently() {
        let image = echo_image();
        let (bob, _) = record_session(&image);
        let mut replayer = Replayer::from_image(&image, &GuestRegistry::new()).unwrap();
        let outcome = replayer.replay(bob.log().entries());
        let ReplayOutcome::Consistent(summary) = outcome else {
            panic!("expected consistent replay, got {outcome:?}");
        };
        assert_eq!(summary.entries_replayed, bob.log().len() as u64);
        assert_eq!(summary.outputs_matched, 3);
        assert!(summary.inputs_reinjected >= 6); // 3 packets + clock reads
        assert_eq!(summary.snapshots_verified, 1);
        // The snapshot check above already ties the replayed state to the
        // recorded state; the recorder's machine has since run slightly past
        // the last logged event, so the final digests need not be equal.
        assert!(summary.final_state.is_some());
    }

    #[test]
    fn replay_side_roots_match_recorder_side_roots() {
        // The recorder derives roots from its long-lived StateTreeCache; the
        // replayer maintains its own. Every snapshot in an honest session
        // must verify — i.e. the two incremental pipelines agree root by
        // root — and the recorded roots must equal a from-scratch rebuild.
        let image = echo_image();
        let alice_key = key(2);
        let mut bob = Avmm::new("bob", &image, &GuestRegistry::new(), key(1), opts()).unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let mut clock = HostClock::at(100);
        bob.run_slice(&clock, 10_000).unwrap();
        for i in 0..4u8 {
            clock.advance_to(clock.now() + 1_000);
            let payload = encode_guest_packet("alice", &[b'm', i]);
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                i as u64 + 1,
                payload,
                &alice_key,
                None,
            );
            bob.deliver(&env).unwrap();
            bob.run_slice(&clock, 50_000).unwrap();
            let recorded_root = bob.take_snapshot().state_root;
            assert_eq!(
                recorded_root,
                crate::snapshot::build_state_tree_uncached(bob.machine()).root(),
                "recorder root {i} diverged from uncached rebuild"
            );
        }
        let mut replayer = Replayer::from_image(&image, &GuestRegistry::new()).unwrap();
        let outcome = replayer.replay(bob.log().entries());
        let ReplayOutcome::Consistent(summary) = outcome else {
            panic!("expected consistent replay, got {outcome:?}");
        };
        assert_eq!(summary.snapshots_verified, 4);
    }

    #[test]
    fn wrong_reference_image_detected() {
        let image = echo_image();
        let (bob, _) = record_session(&image);
        // The auditor's reference differs (e.g. a different game version).
        let other_src = "halt";
        let other = VmImage::bytecode("other", 128 * 1024, assemble(other_src, 0).unwrap(), 0, 0);
        let mut replayer = Replayer::from_image(&other, &GuestRegistry::new()).unwrap();
        let outcome = replayer.replay(bob.log().entries());
        assert!(matches!(
            outcome.fault(),
            Some(FaultReason::ImageMismatch { .. })
        ));
    }

    #[test]
    fn cheating_guest_image_detected_by_divergence() {
        // Bob *claims* to run the echo image (his log says so), but actually
        // runs a modified guest that appends a byte to every echoed packet —
        // the moral equivalent of an installed cheat.
        let honest_image = echo_image();
        let cheat_src = r"
                movi r1, 0x8000
                movi r2, 512
            loop:
                clock r4
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                addi r0, 1        ; lie about the packet length
                send r1, r0
                jmp loop
            ";
        let cheat_image = VmImage::bytecode(
            "echo", // same name, same memory size — only the code differs
            128 * 1024,
            assemble(cheat_src, 0).unwrap(),
            0,
            0,
        );
        let alice_key = key(2);
        let mut bob =
            Avmm::new("bob", &cheat_image, &GuestRegistry::new(), key(1), opts()).unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let clock = HostClock::at(50);
        bob.run_slice(&clock, 10_000).unwrap();
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            1,
            encode_guest_packet("alice", b"shoot"),
            &alice_key,
            None,
        );
        bob.deliver(&env).unwrap();
        bob.run_slice(&clock, 50_000).unwrap();

        // Forge the META entry aside: the honest auditor replays with the
        // *agreed-upon* image.  The cheat image has a different digest, so we
        // rebuild a log that claims the honest image (what a cheater would
        // do) by replaying all non-meta entries against the honest reference.
        let entries: Vec<LogEntry> = bob
            .log()
            .entries()
            .iter()
            .filter(|e| e.kind != EntryKind::Meta)
            .cloned()
            .collect();
        let mut replayer = Replayer::from_image(&honest_image, &GuestRegistry::new()).unwrap();
        let outcome = replayer.replay(&entries);
        assert!(
            matches!(
                outcome.fault(),
                Some(FaultReason::OutputDivergence { .. })
                    | Some(FaultReason::EventDivergence { .. })
            ),
            "expected divergence, got {outcome:?}"
        );
    }

    #[test]
    fn tampered_send_payload_detected() {
        let image = echo_image();
        let (bob, _) = record_session(&image);
        let entries = bob.log().entries().to_vec();
        // Bob rewrites an outgoing packet in his log (say, to hide what he
        // actually sent).  Rebuild the chain so the syntactic check would
        // pass; replay must still catch it.
        let idx = entries
            .iter()
            .position(|e| e.kind == EntryKind::Send)
            .unwrap();
        let mut rec = SendRecord::decode_exact(&entries[idx].content).unwrap();
        rec.payload[2] ^= 0xff;
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        for (i, e) in entries.iter().enumerate() {
            let content = if i == idx {
                rec.encode_to_vec()
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        let mut replayer = Replayer::from_image(&image, &GuestRegistry::new()).unwrap();
        let outcome = replayer.replay(rebuilt.entries());
        assert!(matches!(
            outcome.fault(),
            Some(FaultReason::OutputDivergence { .. })
        ));
    }

    #[test]
    fn forged_injection_detected_by_cross_reference() {
        let image = echo_image();
        let (bob, _) = record_session(&image);
        let entries = bob.log().entries().to_vec();
        // Change an injection event so it references the right RECV entry but
        // a different payload hash (i.e. the AVMM injected something other
        // than what was received).
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        for e in &entries {
            let content = if e.kind == EntryKind::NdEvent {
                let mut rec = NdEventRecord::decode_exact(&e.content).unwrap();
                if let NdDetail::PacketInjected { recv_seq, .. } = rec.detail {
                    rec.detail = NdDetail::PacketInjected {
                        recv_seq,
                        payload_hash: avm_crypto::sha256(b"forged"),
                    };
                }
                rec.encode_to_vec()
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        let mut replayer = Replayer::from_image(&image, &GuestRegistry::new()).unwrap();
        let outcome = replayer.replay(rebuilt.entries());
        assert!(matches!(
            outcome.fault(),
            Some(FaultReason::CrossReferenceFailure { .. })
        ));
    }

    #[test]
    fn snapshot_mismatch_detected() {
        let image = echo_image();
        let (bob, _) = record_session(&image);
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        for e in bob.log().entries() {
            let content = if e.kind == EntryKind::Snapshot {
                let mut rec = SnapshotRecord::decode_exact(&e.content).unwrap();
                rec.state_root = avm_crypto::sha256(b"wrong state");
                rec.encode_to_vec()
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        let mut replayer = Replayer::from_image(&image, &GuestRegistry::new()).unwrap();
        let outcome = replayer.replay(rebuilt.entries());
        assert!(matches!(
            outcome.fault(),
            Some(FaultReason::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn dropped_message_detected() {
        // Bob receives a message but omits the RECV/injection from his log:
        // the echo output he later sent has no explanation and replay fails.
        let image = echo_image();
        let (bob, _) = record_session(&image);
        let filtered: Vec<LogEntry> = bob
            .log()
            .entries()
            .iter()
            .filter(|e| {
                if e.kind == EntryKind::Recv && e.seq > 3 {
                    return false;
                }
                if e.kind == EntryKind::NdEvent {
                    if let Ok(rec) = NdEventRecord::decode_exact(&e.content) {
                        if matches!(rec.detail, NdDetail::PacketInjected { recv_seq, .. } if recv_seq > 3)
                        {
                            return false;
                        }
                    }
                }
                true
            })
            .cloned()
            .collect();
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        for e in &filtered {
            rebuilt.append(e.kind, e.content.clone());
        }
        let mut replayer = Replayer::from_image(&image, &GuestRegistry::new()).unwrap();
        let outcome = replayer.replay(rebuilt.entries());
        assert!(
            outcome.fault().is_some(),
            "expected a fault, got {outcome:?}"
        );
    }

    #[test]
    fn replay_from_snapshot_spot_checks_a_suffix() {
        let image = echo_image();
        let (bob, _) = record_session(&image);
        // Find the snapshot entry and replay only what follows it.
        let snap_entry_idx = bob
            .log()
            .entries()
            .iter()
            .position(|e| e.kind == EntryKind::Snapshot)
            .unwrap();
        let suffix: Vec<LogEntry> = bob.log().entries()[snap_entry_idx + 1..].to_vec();
        let mut replayer =
            Replayer::from_snapshot(&image, &GuestRegistry::new(), bob.snapshots(), 0).unwrap();
        let outcome = replayer.replay(&suffix);
        assert!(outcome.is_consistent(), "{outcome:?}");
    }

    /// On-demand replay (§3.5, metadata + lazy fault-in) must reach the same
    /// verdict and the same final state root as replay from a fully
    /// downloaded snapshot.
    #[test]
    fn on_demand_replay_matches_full_snapshot_replay() {
        let image = echo_image();
        let (bob, _) = record_session(&image);
        let registry = GuestRegistry::new();
        let snap_entry_idx = bob
            .log()
            .entries()
            .iter()
            .position(|e| e.kind == EntryKind::Snapshot)
            .unwrap();
        let suffix: Vec<LogEntry> = bob.log().entries()[snap_entry_idx + 1..].to_vec();

        let mut full = Replayer::from_snapshot(&image, &registry, bob.snapshots(), 0).unwrap();
        let full_outcome = full.replay(&suffix);
        assert!(full_outcome.is_consistent(), "{full_outcome:?}");

        let mut cache = crate::ondemand::AuditorBlobCache::new();
        let (mut lazy, session) =
            Replayer::from_snapshot_on_demand(&image, &registry, bob.snapshots(), 0, &cache)
                .unwrap();
        let lazy_outcome = lazy.replay(&suffix);
        assert!(lazy_outcome.is_consistent(), "{lazy_outcome:?}");

        // The summaries' final_state (a Merkle root) must agree even though
        // the lazy machine never downloaded its untouched pages.
        let (ReplayOutcome::Consistent(full_summary), ReplayOutcome::Consistent(lazy_summary)) =
            (&full_outcome, &lazy_outcome)
        else {
            unreachable!()
        };
        assert_eq!(full_summary.final_state, lazy_summary.final_state);
        assert!(full_summary.final_state.is_some());
        assert_eq!(full.current_state_root(), lazy.current_state_root());
        assert_eq!(
            full.summary().entries_replayed,
            lazy.summary().entries_replayed
        );
        assert_eq!(full.summary().steps_executed, lazy.summary().steps_executed);

        // Settling the session yields a valid accounting and primes the
        // cache for later checks.
        let cost = session
            .finish(
                lazy.machine(),
                bob.snapshots(),
                &mut cache,
                avm_compress::CompressionLevel::Default,
            )
            .unwrap();
        assert!(cost.manifest_bytes > 0);
        assert_eq!(cache.len(), cost.fetched.len());
    }
}
