//! Durable providers: crash recovery by checkpointed replay.
//!
//! A provider whose tamper-evident log lives only in RAM loses exactly the
//! evidence audits depend on when it restarts.  [`Provider`] wraps the
//! recording [`Avmm`] and mirrors everything an audit needs onto an
//! [`avm_store`] backend after every event:
//!
//! * every log entry goes to the append-only segment files, with the
//!   provider's own signed authenticators persisted as periodic *seals*;
//! * every snapshot's payload blobs and a [`SnapshotManifest`] (its
//!   metadata and content-hash references) go to the blob arenas, and a
//!   MANIFEST record ties the manifest digest into the segment stream;
//! * prunes append a PRUNE record (the new base and its rebased manifest)
//!   and then compact the arenas down to the live blob set.
//!
//! The write ordering is the durability invariant: for a snapshot, blobs →
//! manifest blob → MANIFEST record → SNAPSHOT log entry.  Appends are
//! sequential, so any crash that leaves the SNAPSHOT entry readable also
//! left everything the entry references readable.  [`Provider::recover`]
//! relies on this: it scans the segments (truncating a torn tail, refusing
//! on tampering), rebuilds the [`SnapshotStore`] from persisted manifests,
//! replays the log tail from the last durable snapshot — verifying state
//! roots exactly like an auditor — and resumes a live [`Avmm`] at the
//! recorded head.
//!
//! The crash-versus-tamper distinction (see [`avm_store::StoreError`])
//! carries through: a torn write recovers silently by truncation; a flipped
//! byte in sealed history, a broken hash chain or a forged seal fails
//! recovery with [`PersistError::Store`] carrying the tamper taxonomy, and
//! replay divergence fails with [`PersistError::Tampered`].

use std::collections::{BTreeMap, HashMap, HashSet};

use avm_crypto::keys::SigningKey;
use avm_crypto::sha256::{sha256, Digest};
use avm_log::{Authenticator, EntryKind, LogEntry, LogSource, TamperEvidentLog};
use avm_store::{ArenaStore, DurabilityStats, SegmentLog, SegmentStore, Storage, StoreError};
use avm_vm::devices::InputEvent;
use avm_vm::{GuestRegistry, VmImage};
use avm_wire::{Decode, Encode, Reader, WireError, WireResult, Writer};

use crate::attest::{build_envelope_from_parts, Attestor};
use crate::config::AvmmOptions;
use crate::endpoint::AuditServer;
use crate::envelope::Envelope;
use crate::error::{CoreError, FaultReason};
use crate::events::{MetaRecord, SnapshotRecord};
use crate::recorder::{Avmm, HostClock, OutboundMessage};
use crate::replay::{ReplayOutcome, Replayer};
use crate::snapshot::{Snapshot, SnapshotStore};

pub use avm_store::{ArenaConfig, SegmentConfig};

/// Configuration for a durable provider's storage layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct PersistConfig {
    /// Log segment rotation, sealing and sync policy.
    pub segments: SegmentConfig,
    /// Blob arena rotation and sync pricing.
    pub arenas: ArenaConfig,
}

/// Why a durable provider could not be created or recovered.
#[derive(Debug)]
pub enum PersistError {
    /// The storage layer failed — includes the tamper taxonomy
    /// ([`StoreError::Tamper`]) for damaged sealed bytes.
    Store(StoreError),
    /// The wrapped recorder failed.
    Core(CoreError),
    /// The persisted log is structurally intact but replay proved it
    /// inconsistent (or it claims a different image) — the same verdict an
    /// auditor would reach, raised at recovery time.
    Tampered(FaultReason),
    /// The persisted state is internally inconsistent in a way the tamper
    /// taxonomy does not cover (e.g. a SNAPSHOT entry whose manifest or
    /// blobs are missing from the arenas).
    Corrupt(String),
}

impl core::fmt::Display for PersistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PersistError::Store(e) => write!(f, "storage error: {e}"),
            PersistError::Core(e) => write!(f, "recorder error: {e}"),
            PersistError::Tampered(r) => write!(f, "persisted log is tampered: {r}"),
            PersistError::Corrupt(d) => write!(f, "persisted state corrupt: {d}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<StoreError> for PersistError {
    fn from(e: StoreError) -> Self {
        PersistError::Store(e)
    }
}

impl From<CoreError> for PersistError {
    fn from(e: CoreError) -> Self {
        PersistError::Core(e)
    }
}

impl PersistError {
    /// True when the failure is evidence of tampering (as opposed to a torn
    /// write, an I/O fault, or an internal inconsistency).
    pub fn is_tamper(&self) -> bool {
        match self {
            PersistError::Store(e) => e.is_tamper(),
            PersistError::Tampered(_) => true,
            _ => false,
        }
    }
}

/// The durable form of a [`crate::snapshot::StoredSnapshot`]: its metadata
/// plus content-hash references into the blob arenas.  The manifest itself
/// is stored as an arena blob under the SHA-256 of its encoding, and that
/// digest is what MANIFEST / PRUNE segment records carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotManifest {
    /// Snapshot id.
    pub id: u64,
    /// Machine step count at capture time.
    pub step: u64,
    /// Whether the memory section holds every chunk.
    pub full_memory: bool,
    /// Whether the guest had halted.
    pub halted: bool,
    /// Merkle root over the machine state at capture time.
    pub state_root: Digest,
    /// Serialized CPU state.
    pub cpu_state: Vec<u8>,
    /// Serialized volatile device state.
    pub dev_state: Vec<u8>,
    /// Memory chunks as `(chunk index, arena content hash)`.
    pub mem_chunks: Vec<(u32, Digest)>,
    /// Disk blocks as `(block index, arena content hash)`.
    pub disk_blocks: Vec<(u32, Digest)>,
}

impl SnapshotManifest {
    /// Digest under which the encoded manifest is stored in the arenas.
    pub fn digest(&self) -> Digest {
        sha256(&self.encode_to_vec())
    }
}

impl Encode for SnapshotManifest {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.id);
        w.put_varint(self.step);
        w.put_u8(self.full_memory as u8);
        w.put_u8(self.halted as u8);
        w.put_raw(self.state_root.as_bytes());
        w.put_bytes(&self.cpu_state);
        w.put_bytes(&self.dev_state);
        w.put_varint(self.mem_chunks.len() as u64);
        for (idx, hash) in &self.mem_chunks {
            w.put_varint(*idx as u64);
            w.put_raw(hash.as_bytes());
        }
        w.put_varint(self.disk_blocks.len() as u64);
        for (idx, hash) in &self.disk_blocks {
            w.put_varint(*idx as u64);
            w.put_raw(hash.as_bytes());
        }
    }
}

impl Decode for SnapshotManifest {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        fn digest(r: &mut Reader<'_>) -> WireResult<Digest> {
            Digest::from_slice(r.get_raw(32)?).ok_or(WireError::Corrupt("digest"))
        }
        fn refs(r: &mut Reader<'_>) -> WireResult<Vec<(u32, Digest)>> {
            let n = r.get_varint()? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let idx = u32::try_from(r.get_varint()?)
                    .map_err(|_| WireError::Corrupt("chunk index"))?;
                v.push((idx, digest(r)?));
            }
            Ok(v)
        }
        Ok(SnapshotManifest {
            id: r.get_varint()?,
            step: r.get_varint()?,
            full_memory: r.get_u8()? != 0,
            halted: r.get_u8()? != 0,
            state_root: digest(r)?,
            cpu_state: r.get_bytes()?.to_vec(),
            dev_state: r.get_bytes()?.to_vec(),
            mem_chunks: refs(r)?,
            disk_blocks: refs(r)?,
        })
    }
}

/// What [`Provider::recover`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log entries recovered from the segment files.
    pub entries_recovered: u64,
    /// Highest sequence number covered by a persisted seal.
    pub sealed_upto: u64,
    /// Bytes dropped as torn tails (segments + arenas); 0 on a clean start.
    pub torn_bytes_truncated: u64,
    /// Base (oldest retained) snapshot id of the rebuilt store.
    pub base_snapshot_id: u64,
    /// Snapshots rebuilt into the store from persisted manifests.
    pub snapshots_recovered: u64,
    /// Log entries re-executed from the last durable snapshot to the head.
    pub entries_replayed: u64,
    /// SNAPSHOT state roots verified during that replay.
    pub snapshots_verified: u64,
    /// Blobs live in the arenas after recovery.
    pub arena_blobs: u64,
    /// Payload bytes live in the arenas after recovery.
    pub arena_bytes: u64,
}

/// A recording [`Avmm`] whose log, snapshots and authenticator chain are
/// mirrored to durable storage after every event.
///
/// All recording entry points ([`Provider::run_slice`],
/// [`Provider::deliver`], [`Provider::take_snapshot`], …) delegate to the
/// wrapped AVMM and then flush the new log suffix to the segment files, so
/// the persisted chain head never trails the in-memory one across calls.
pub struct Provider<S: Storage + Clone> {
    avmm: Avmm,
    segments: SegmentStore<S>,
    arenas: ArenaStore<S>,
    /// Disk-image of the log, served to auditors (see
    /// [`Provider::audit_server`]) so audits read exactly what survives a
    /// crash.
    segment_log: SegmentLog,
    /// Manifest digest per retained snapshot id (the arenas' live set,
    /// together with the pooled payload digests).
    manifest_digests: BTreeMap<u64, Digest>,
    /// Entries of `avmm.log()` already written to the segment files.
    persisted_entries: u64,
    /// The launch attestation responder.  Its envelope bytes are persisted
    /// to the arenas at create time, and recovery re-derives the identical
    /// bytes from the durable META entry — so a recovered provider
    /// re-serves *the* envelope, byte for byte.
    attestor: Attestor,
}

impl<S: Storage + Clone> core::fmt::Debug for Provider<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Provider")
            .field("name", &self.avmm.name())
            .field("persisted_entries", &self.persisted_entries)
            .field("sealed_upto", &self.segments.sealed_upto())
            .field("arena_blobs", &self.arenas.blob_count())
            .finish_non_exhaustive()
    }
}

impl<S: Storage + Clone> Provider<S> {
    /// Creates a fresh durable provider on empty `storage`.
    ///
    /// The AVMM's initial META entry is persisted before this returns.
    pub fn create(
        storage: S,
        name: &str,
        image: &VmImage,
        registry: &GuestRegistry,
        signing_key: SigningKey,
        options: AvmmOptions,
        cfg: PersistConfig,
    ) -> Result<Provider<S>, PersistError> {
        let avmm = Avmm::new(name, image, registry, signing_key, options)?;
        let attestor = Attestor::for_avmm(&avmm, image)?;
        let segments = SegmentStore::create(storage.clone(), cfg.segments)?;
        let mut arenas = ArenaStore::create(storage, cfg.arenas)?;
        persist_envelope(&mut arenas, &attestor)?;
        let mut provider = Provider {
            avmm,
            segments,
            arenas,
            segment_log: SegmentLog::new(),
            manifest_digests: BTreeMap::new(),
            persisted_entries: 0,
            attestor,
        };
        provider.flush()?;
        Ok(provider)
    }

    /// Recovers a durable provider from the bytes in `storage`.
    ///
    /// Torn tails (a crash mid-append) are truncated silently; damage to
    /// sealed, durable bytes — a flipped byte, a broken hash chain, a bad
    /// seal signature — refuses recovery with a tamper-classified error.
    /// The log is then rebuilt and *re-verified*: the snapshot store is
    /// reconstructed from persisted manifests and the tail of the log is
    /// replayed from the last durable snapshot, checking recorded state
    /// roots exactly like an auditor's spot check, before the live AVMM
    /// resumes at the head.
    ///
    /// ```
    /// use avm_core::persist::{PersistConfig, Provider};
    /// use avm_core::{AvmmOptions, HostClock};
    /// use avm_crypto::keys::{SignatureScheme, SigningKey};
    /// use avm_store::SimStorage;
    /// use avm_vm::bytecode::assemble;
    /// use avm_vm::{GuestRegistry, VmImage};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let image = VmImage::bytecode("doc", 64 * 1024, assemble("halt", 0).unwrap(), 0, 0);
    /// let registry = GuestRegistry::new();
    /// let key = SigningKey::generate(&mut StdRng::seed_from_u64(7), SignatureScheme::Rsa(512));
    /// let storage = SimStorage::new();
    ///
    /// let mut provider = Provider::create(
    ///     storage.clone(), "alice", &image, &registry,
    ///     key.clone(), AvmmOptions::default(), PersistConfig::default(),
    /// ).unwrap();
    /// provider.run_slice(&HostClock::at(1_000), 10_000).unwrap();
    /// provider.take_snapshot().unwrap();
    /// let recorded = provider.avmm().log().len();
    /// drop(provider); // the process dies; only the bytes in `storage` survive
    ///
    /// let (recovered, report) = Provider::recover(
    ///     storage.reboot(), "alice", &image, &registry,
    ///     key, AvmmOptions::default(), PersistConfig::default(),
    /// ).unwrap();
    /// assert_eq!(recovered.avmm().log().len(), recorded);
    /// assert_eq!(report.snapshots_recovered, 1);
    /// assert_eq!(report.snapshots_verified, 1);
    /// ```
    pub fn recover(
        storage: S,
        name: &str,
        image: &VmImage,
        registry: &GuestRegistry,
        signing_key: SigningKey,
        options: AvmmOptions,
        cfg: PersistConfig,
    ) -> Result<(Provider<S>, RecoveryReport), PersistError> {
        let verifier = signing_key.verifying_key();
        let (segments, scan) =
            SegmentStore::recover(storage.clone(), cfg.segments, Some(&verifier))?;
        let (mut arenas, arena_scan) = ArenaStore::recover(storage, cfg.arenas)?;

        // A crash during create can die before the initial META entry became
        // durable.  Resuming over an empty log would record an AVMM that
        // never writes META — every later audit would reject the log as
        // malformed — so recovery re-runs the create path instead: a fresh
        // recorder whose initial META entry is persisted before this returns.
        if scan.entries.is_empty() {
            let avmm = Avmm::new(name, image, registry, signing_key, options)?;
            let attestor = Attestor::for_avmm(&avmm, image)?;
            persist_envelope(&mut arenas, &attestor)?;
            let report = RecoveryReport {
                torn_bytes_truncated: scan.torn_bytes + arena_scan.torn_bytes,
                arena_blobs: arenas.blob_count(),
                arena_bytes: arenas.stored_bytes(),
                ..RecoveryReport::default()
            };
            let mut provider = Provider {
                avmm,
                segments,
                arenas,
                segment_log: SegmentLog::new(),
                manifest_digests: BTreeMap::new(),
                persisted_entries: 0,
                attestor,
            };
            provider.flush()?;
            return Ok((provider, report));
        }

        // The scan already verified framing, chain and seals; from_entries
        // re-verifies the chain while building the in-memory log (defence
        // in depth — recovery must never trust a single pass).
        let log = TamperEvidentLog::from_entries(scan.entries.clone())
            .map_err(|e| PersistError::Tampered(FaultReason::SyntacticFailure(e.to_string())))?;

        // The log's META entry must commit to *our* image, like replay_meta
        // checks for an auditor.
        if let Some(first) = log.entries().first() {
            if first.kind != EntryKind::Meta {
                return Err(PersistError::Tampered(FaultReason::SyntacticFailure(
                    "log does not start with a META entry".into(),
                )));
            }
            let meta = MetaRecord::decode_exact(&first.content)
                .map_err(|_| PersistError::Tampered(FaultReason::MalformedLog { seq: 1 }))?;
            if meta.image_digest != image.digest() {
                return Err(PersistError::Tampered(FaultReason::ImageMismatch {
                    recorded: meta.image_digest.short_hex(),
                    reference: image.digest().short_hex(),
                }));
            }
        }

        let blobs: HashMap<Digest, Vec<u8>> = arena_scan.blobs.into_iter().collect();

        // Re-derive the attestation envelope from the durable META entry.
        // Every input is deterministic, so these are byte-for-byte the
        // bytes `create` served and persisted: a recovered provider
        // re-serves *the* envelope.  A persisted copy that disagrees is
        // tampering (content addressing makes that unreachable unless the
        // storage layer lies); a missing copy is a torn write at create
        // time and is simply re-persisted.
        let meta_entry = log.entries().first().expect("non-empty log scanned");
        let envelope = build_envelope_from_parts(image, meta_entry, &signing_key)?;
        let attestor = Attestor::new(&envelope, signing_key.clone());
        if let Some(persisted) = blobs.get(&attestor.envelope_digest()) {
            if persisted != attestor.envelope_bytes() {
                return Err(PersistError::Tampered(FaultReason::SyntacticFailure(
                    "persisted attestation envelope does not match the recorded launch".into(),
                )));
            }
        } else {
            persist_envelope(&mut arenas, &attestor)?;
        }

        // Last manifest per id wins: a crash can leave an orphaned manifest
        // record for a snapshot whose log entry never became durable, and a
        // prune rewrites the base's manifest.
        let mut manifest_digests: BTreeMap<u64, Digest> = BTreeMap::new();
        for (id, digest) in &scan.manifests {
            manifest_digests.insert(*id, *digest);
        }
        let mut store = match scan.prunes.last().copied() {
            Some((base_id, base_digest)) => {
                manifest_digests = manifest_digests.split_off(&base_id);
                manifest_digests.insert(base_id, base_digest);
                SnapshotStore::with_base(base_id)
            }
            None => SnapshotStore::new(),
        };

        // SNAPSHOT entries in the durable log, as (snapshot id, log position).
        let mut snapshot_entries: Vec<(u64, usize)> = Vec::new();
        for (pos, entry) in log.entries().iter().enumerate() {
            if entry.kind == EntryKind::Snapshot {
                let rec = SnapshotRecord::decode_exact(&entry.content).map_err(|_| {
                    PersistError::Tampered(FaultReason::MalformedLog { seq: entry.seq })
                })?;
                snapshot_entries.push((rec.snapshot_id, pos));
            }
        }

        // Rebuild the store: the pruned base from its PRUNE manifest, then
        // every later snapshot whose SNAPSHOT entry became durable.  The
        // write ordering guarantees their manifests and blobs are durable
        // too; a miss here is real corruption, not a crash artefact.
        if store.next_id() > 0 && manifest_digests.contains_key(&store.base_id()) {
            let base_id = store.base_id();
            store.push(rebuild_snapshot(base_id, &manifest_digests, &blobs)?);
        }
        let mut last_durable: Option<(u64, usize)> = None;
        for (id, pos) in &snapshot_entries {
            if *id >= store.next_id() {
                store.push(rebuild_snapshot(*id, &manifest_digests, &blobs)?);
            }
            if *id < store.next_id() && store.get(*id).is_some() {
                last_durable = Some((*id, *pos));
            }
        }

        // Checkpointed replay: start from the newest snapshot that has a
        // durable SNAPSHOT entry, re-execute the tail, verify roots.  The
        // tail includes the checkpoint's own SNAPSHOT entry: replaying it
        // runs zero steps and re-verifies the restored root against the
        // log before anything executes on top of it.
        let mut replayer = match last_durable {
            Some((id, _)) => Replayer::from_snapshot(image, registry, &store, id)?,
            None => Replayer::from_image(image, registry)?,
        };
        let tail_start = last_durable.map_or(0, |(_, pos)| pos);
        let summary = match replayer.replay(&log.entries()[tail_start..]) {
            ReplayOutcome::Consistent(summary) => summary,
            ReplayOutcome::Fault(reason) => return Err(PersistError::Tampered(reason)),
        };
        let (machine, state_tree) = replayer.into_parts();

        // A crash between a durable PRUNE record and the end of arena
        // compaction leaves blobs only pruned-away snapshots referenced
        // (likewise a snapshot whose blobs landed but whose log entry never
        // became durable).  Re-run the compaction the crash interrupted so
        // orphans cannot leak space indefinitely; a clean shutdown has no
        // orphans and skips the rewrite.
        let mut live: HashSet<Digest> = store.pooled_digests().into_iter().collect();
        live.extend(manifest_digests.values().copied());
        live.insert(attestor.envelope_digest());
        if arenas.orphan_count(&live) > 0 {
            arenas.compact(&live)?;
        }

        let report = RecoveryReport {
            entries_recovered: log.len() as u64,
            sealed_upto: scan.sealed_upto,
            torn_bytes_truncated: scan.torn_bytes + arena_scan.torn_bytes,
            base_snapshot_id: store.base_id(),
            snapshots_recovered: store.len() as u64,
            entries_replayed: summary.entries_replayed,
            snapshots_verified: summary.snapshots_verified,
            arena_blobs: arenas.blob_count(),
            arena_bytes: arenas.stored_bytes(),
        };

        let segment_log = SegmentLog::from_entries(log.entries().to_vec());
        let persisted_entries = log.len() as u64;
        let avmm = Avmm::resume(
            name,
            machine,
            state_tree,
            image.digest(),
            signing_key,
            options,
            log,
            store,
        );
        Ok((
            Provider {
                avmm,
                segments,
                arenas,
                segment_log,
                manifest_digests,
                persisted_entries,
                attestor,
            },
            report,
        ))
    }

    /// The wrapped recording AVMM (read-only; mutations go through the
    /// provider so they are persisted).
    pub fn avmm(&self) -> &Avmm {
        &self.avmm
    }

    /// Registers a peer's verification key on the wrapped AVMM.
    pub fn add_peer(&mut self, name: &str, key: avm_crypto::keys::VerifyingKey) {
        self.avmm.add_peer(name, key);
    }

    /// [`Avmm::run_slice`], with the produced log suffix persisted before
    /// the outbound messages are returned (an emitted message's SEND entry
    /// is durable before any peer can have seen the message).
    pub fn run_slice(
        &mut self,
        clock: &HostClock,
        max_steps: u64,
    ) -> Result<Vec<OutboundMessage>, PersistError> {
        let outbound = self.avmm.run_slice(clock, max_steps)?;
        self.flush()?;
        Ok(outbound)
    }

    /// [`Avmm::deliver`], persisted.
    pub fn deliver(&mut self, envelope: &Envelope) -> Result<Option<Envelope>, PersistError> {
        let ack = self.avmm.deliver(envelope)?;
        self.flush()?;
        Ok(ack)
    }

    /// [`Avmm::inject_input`], persisted.
    pub fn inject_input(&mut self, event: InputEvent) -> Result<(), PersistError> {
        self.avmm.inject_input(event);
        self.flush()
    }

    /// [`Avmm::take_snapshot`], persisted; returns the snapshot id.
    pub fn take_snapshot(&mut self) -> Result<u64, PersistError> {
        let id = self.avmm.take_snapshot().id;
        self.flush()?;
        Ok(id)
    }

    /// [`Avmm::prune_snapshots_upto`], with durable bookkeeping: the
    /// rebased base's manifest is persisted, a PRUNE record marks the new
    /// base in the segment stream (fsynced before any blob is dropped), and
    /// the arenas are compacted down to the blobs the surviving snapshots
    /// and manifests still reference.  Returns the in-memory payload bytes
    /// freed.
    pub fn prune_snapshots_upto(&mut self, id: u64) -> Result<u64, PersistError> {
        self.flush()?;
        let freed = self.avmm.prune_snapshots_upto(id)?;
        let base_id = self.avmm.snapshots().base_id();
        if base_id != id {
            // Prune at-or-below the existing base: nothing moved.
            return Ok(freed);
        }
        let base = self
            .avmm
            .snapshots()
            .get(base_id)
            .expect("prune_upto retains its target");
        let manifest = manifest_of_stored(base);
        let bytes = manifest.encode_to_vec();
        let digest = sha256(&bytes);
        self.arenas.put(digest, &bytes)?;
        self.arenas.flush()?;
        self.segments.append_prune(base_id, digest)?;
        self.manifest_digests = self.manifest_digests.split_off(&base_id);
        self.manifest_digests.insert(base_id, digest);
        let mut live: HashSet<Digest> =
            self.avmm.snapshots().pooled_digests().into_iter().collect();
        live.extend(self.manifest_digests.values().copied());
        live.insert(self.attestor.envelope_digest());
        self.arenas.compact(&live)?;
        Ok(freed)
    }

    /// An audit endpoint serving the *disk image* of the log (with the
    /// in-memory snapshot store), so what auditors download is exactly what
    /// survives a crash — with the provider's attestation responder
    /// attached, so sessions can attest-then-audit.
    pub fn audit_server(&self) -> AuditServer<'_> {
        AuditServer::with_log_source(&self.segment_log, self.avmm.snapshots())
            .with_attestor(&self.attestor)
    }

    /// The provider's attestation responder.
    pub fn attestor(&self) -> &Attestor {
        &self.attestor
    }

    /// The encoded attestation envelope this provider serves — stable,
    /// byte for byte, across crash and recovery.
    pub fn attestation_envelope_bytes(&self) -> &[u8] {
        self.attestor.envelope_bytes()
    }

    /// The persisted mirror of the log, in sequence order.
    pub fn segment_log(&self) -> &SegmentLog {
        &self.segment_log
    }

    /// Durable-write accounting for the segment files.
    pub fn segment_stats(&self) -> DurabilityStats {
        self.segments.stats()
    }

    /// Durable-write accounting for the blob arenas.
    pub fn arena_stats(&self) -> DurabilityStats {
        self.arenas.stats()
    }

    /// Combined durable-write accounting (segments + arenas).
    pub fn durability_stats(&self) -> DurabilityStats {
        self.segments.stats().merged(&self.arenas.stats())
    }

    /// Number of segment files written so far.
    pub fn segment_files(&self) -> u64 {
        self.segments.segment_files()
    }

    /// Highest sequence number covered by a persisted seal.
    pub fn sealed_upto(&self) -> u64 {
        self.segments.sealed_upto()
    }

    /// Blobs currently live in the arenas.
    pub fn arena_blob_count(&self) -> u64 {
        self.arenas.blob_count()
    }

    /// True when `digest` is already durable in the arenas — the test
    /// surface for "recovery and later snapshots never re-store a blob the
    /// arenas still hold".
    pub fn blob_persisted(&self, digest: &Digest) -> bool {
        self.arenas.contains(digest)
    }

    /// Mirrors the log entries the AVMM appended since the last flush to
    /// the segment files, persisting snapshot payloads ahead of the
    /// SNAPSHOT entries that reference them.
    fn flush(&mut self) -> Result<(), PersistError> {
        let start = self.persisted_entries as usize;
        if self.avmm.log().entries().len() == start {
            return Ok(());
        }
        let new_entries: Vec<LogEntry> = self.avmm.log().entries()[start..].to_vec();
        for entry in new_entries {
            if entry.kind == EntryKind::Snapshot {
                let rec = SnapshotRecord::decode_exact(&entry.content).map_err(|_| {
                    PersistError::Corrupt(format!("own SNAPSHOT entry {} undecodable", entry.seq))
                })?;
                self.persist_snapshot(rec.snapshot_id)?;
                // Blob and manifest appends precede the entry append in the
                // storage timeline: a durable SNAPSHOT entry implies its
                // manifest and blobs are durable.
                self.arenas.flush()?;
            }
            let prev = self
                .segment_log
                .entries()
                .last()
                .map_or(Digest::ZERO, |e| e.hash);
            self.segments.append_entry(&entry)?;
            self.segment_log.push(entry.clone());
            self.persisted_entries += 1;
            if self.segments.needs_seal() {
                let auth = Authenticator::create(self.avmm.signing_key(), &entry, prev);
                self.segments.seal(&auth)?;
            }
        }
        self.arenas.flush()?;
        self.segments.flush_batch()?;
        Ok(())
    }

    /// Writes snapshot `id`'s payload blobs and manifest to the arenas and
    /// ties the manifest digest into the segment stream.
    fn persist_snapshot(&mut self, id: u64) -> Result<(), PersistError> {
        let Provider {
            avmm,
            segments,
            arenas,
            manifest_digests,
            ..
        } = self;
        let snapshots = avmm.snapshots();
        let snap = snapshots.get(id).ok_or_else(|| {
            PersistError::Corrupt(format!("SNAPSHOT entry references unknown snapshot {id}"))
        })?;
        for (_, hash) in snap.mem_chunk_refs().iter().chain(snap.disk_block_refs()) {
            if !arenas.contains(hash) {
                let payload = snapshots.payload(hash).ok_or_else(|| {
                    PersistError::Corrupt(format!("snapshot {id} blob missing from pool"))
                })?;
                arenas.put(*hash, payload)?;
            }
        }
        let manifest = manifest_of_stored(snap);
        let bytes = manifest.encode_to_vec();
        let digest = sha256(&bytes);
        arenas.put(digest, &bytes)?;
        segments.append_manifest(id, digest)?;
        manifest_digests.insert(id, digest);
        Ok(())
    }
}

/// Makes `attestor`'s envelope bytes durable in the arenas (content
/// addressed under their digest, like every other blob).
fn persist_envelope<S: Storage + Clone>(
    arenas: &mut ArenaStore<S>,
    attestor: &Attestor,
) -> Result<(), PersistError> {
    let digest = attestor.envelope_digest();
    if !arenas.contains(&digest) {
        arenas.put(digest, attestor.envelope_bytes())?;
        arenas.flush()?;
    }
    Ok(())
}

/// The durable manifest of a stored snapshot.
fn manifest_of_stored(s: &crate::snapshot::StoredSnapshot) -> SnapshotManifest {
    SnapshotManifest {
        id: s.id,
        step: s.step,
        full_memory: s.full_memory,
        halted: s.halted,
        state_root: s.state_root,
        cpu_state: s.cpu_state.clone(),
        dev_state: s.dev_state.clone(),
        mem_chunks: s.mem_chunk_refs().to_vec(),
        disk_blocks: s.disk_block_refs().to_vec(),
    }
}

/// Rebuilds snapshot `id` from its persisted manifest and the arena blobs.
fn rebuild_snapshot(
    id: u64,
    manifest_digests: &BTreeMap<u64, Digest>,
    blobs: &HashMap<Digest, Vec<u8>>,
) -> Result<Snapshot, PersistError> {
    let digest = manifest_digests
        .get(&id)
        .ok_or_else(|| PersistError::Corrupt(format!("no persisted manifest for snapshot {id}")))?;
    let bytes = blobs.get(digest).ok_or_else(|| {
        PersistError::Corrupt(format!(
            "manifest blob for snapshot {id} missing from arenas"
        ))
    })?;
    let manifest = SnapshotManifest::decode_exact(bytes).map_err(|e| {
        PersistError::Corrupt(format!("manifest for snapshot {id} undecodable: {e}"))
    })?;
    if manifest.id != id {
        return Err(PersistError::Corrupt(format!(
            "manifest digest for snapshot {id} resolves to manifest of snapshot {}",
            manifest.id
        )));
    }
    let fetch = |refs: &[(u32, Digest)]| -> Result<Vec<(u32, Digest, Vec<u8>)>, PersistError> {
        refs.iter()
            .map(|(idx, hash)| {
                blobs
                    .get(hash)
                    .map(|payload| (*idx, *hash, payload.clone()))
                    .ok_or_else(|| {
                        PersistError::Corrupt(format!(
                            "snapshot {id} payload {} missing from arenas",
                            hash.short_hex()
                        ))
                    })
            })
            .collect()
    };
    Ok(Snapshot {
        id: manifest.id,
        step: manifest.step,
        full_memory: manifest.full_memory,
        mem_chunks: fetch(&manifest.mem_chunks)?,
        disk_blocks: fetch(&manifest.disk_blocks)?,
        cpu_state: manifest.cpu_state,
        dev_state: manifest.dev_state,
        halted: manifest.halted,
        state_root: manifest.state_root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::EnvelopeKind;
    use crate::testutil::{key, worker_image};
    use avm_crypto::keys::SignatureScheme;
    use avm_store::{SimStorage, SyncPolicy};
    use avm_vm::packet::encode_guest_packet;
    use avm_vm::GuestRegistry;

    fn small_cfg() -> PersistConfig {
        PersistConfig {
            segments: SegmentConfig {
                max_segment_bytes: 2048,
                seal_every_entries: 4,
                sync_policy: SyncPolicy::PerBatch,
                ..SegmentConfig::default()
            },
            arenas: ArenaConfig {
                max_arena_bytes: 16 * 1024,
                ..ArenaConfig::default()
            },
        }
    }

    /// Drives a durable provider through the same workload as
    /// `testutil::record_with_snapshots`: one delivered packet, an echo run
    /// and a snapshot per round.
    fn provider_with_snapshots(
        storage: SimStorage,
        n_snapshots: u64,
        cfg: PersistConfig,
    ) -> (Provider<SimStorage>, VmImage) {
        let image = worker_image();
        let alice_key = key(2);
        let mut bob = Provider::create(
            storage,
            "bob",
            &image,
            &GuestRegistry::new(),
            key(1),
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
            cfg,
        )
        .unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let mut clock = HostClock::at(10);
        bob.run_slice(&clock, 10_000).unwrap();
        for i in 0..n_snapshots {
            clock.advance_to(clock.now() + 1_000);
            let payload = encode_guest_packet("alice", format!("work-{i}").as_bytes());
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                i + 1,
                payload,
                &alice_key,
                None,
            );
            bob.deliver(&env).unwrap();
            bob.run_slice(&clock, 100_000).unwrap();
            bob.take_snapshot().unwrap();
        }
        (bob, image)
    }

    fn recover_bob(
        storage: SimStorage,
        image: &VmImage,
        cfg: PersistConfig,
    ) -> (Provider<SimStorage>, RecoveryReport) {
        Provider::recover(
            storage,
            "bob",
            image,
            &GuestRegistry::new(),
            key(1),
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
            cfg,
        )
        .unwrap()
    }

    fn spot_check_via(
        provider: &Provider<SimStorage>,
        image: &VmImage,
        start: u64,
        k: u64,
    ) -> crate::spotcheck::SpotCheckReport {
        let transport = crate::endpoint::DirectTransport::new(provider.audit_server());
        let mut client = crate::endpoint::AuditClient::new(transport);
        client
            .spot_check(start, k, image, &GuestRegistry::new())
            .unwrap()
    }

    #[test]
    fn clean_shutdown_recovers_identical_audits() {
        let storage = SimStorage::new();
        let (bob, image) = provider_with_snapshots(storage.clone(), 3, small_cfg());
        let live_log = bob.avmm().log().entries().to_vec();
        let live_report = spot_check_via(&bob, &image, 1, 2);
        assert!(live_report.consistent);
        assert!(bob.segment_files() >= 2, "workload should rotate segments");
        drop(bob);

        let (recovered, report) = recover_bob(storage.reboot(), &image, small_cfg());
        assert_eq!(report.entries_recovered, live_log.len() as u64);
        assert_eq!(report.torn_bytes_truncated, 0);
        assert_eq!(report.snapshots_recovered, 3);
        assert!(report.snapshots_verified >= 1);
        assert_eq!(recovered.avmm().log().entries(), &live_log[..]);
        // The recovered provider's audits — served from the disk image of
        // the log — are indistinguishable from the never-killed provider's.
        assert_eq!(spot_check_via(&recovered, &image, 1, 2), live_report);
    }

    #[test]
    fn crash_mid_append_recovers_a_clean_prefix() {
        let storage = SimStorage::new();
        let (bob, image) = provider_with_snapshots(storage.clone(), 1, small_cfg());
        // Kill the provider a few bytes into some future append: the next
        // workload round dies mid-write.
        storage.set_crash_point(300);
        let alice_key = key(2);
        let mut bob = bob;
        let clock = HostClock::at(50_000);
        let mut crashed = false;
        for i in 0..8u64 {
            let payload = encode_guest_packet("alice", format!("late-{i}").as_bytes());
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                i + 100,
                payload,
                &alice_key,
                None,
            );
            let died = bob.deliver(&env).is_err()
                || bob.run_slice(&clock, 100_000).is_err()
                || bob.take_snapshot().is_err();
            if died {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "crash budget should kill the provider");
        let live_log = bob.avmm().log().entries().to_vec();
        drop(bob);

        let (recovered, report) = recover_bob(storage.reboot(), &image, small_cfg());
        // The recovered log is a clean prefix of what the killed provider
        // had in memory — nothing reordered, nothing invented.
        let n = report.entries_recovered as usize;
        assert!(n >= 2, "the pre-crash workload was durable");
        assert!(n <= live_log.len());
        assert_eq!(recovered.avmm().log().entries(), &live_log[..n]);
        // And it keeps recording: the chain head extends without error.
        let mut recovered = recovered;
        recovered.take_snapshot().unwrap();
        assert_eq!(recovered.avmm().log().len(), n + 1);
    }

    #[test]
    fn crash_before_initial_meta_recovers_by_recreating() {
        let image = worker_image();
        let storage = SimStorage::new();
        // Die during create, inside the very first META entry's append (the
        // ~41-byte segment header fits; the META frame does not): nothing of
        // the log is durable.
        storage.set_crash_point(60);
        assert!(Provider::create(
            storage.clone(),
            "bob",
            &image,
            &GuestRegistry::new(),
            key(1),
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
            small_cfg(),
        )
        .is_err());

        let survivor = storage.reboot();
        let (recovered, report) = recover_bob(survivor.clone(), &image, small_cfg());
        assert_eq!(report.entries_recovered, 0);
        assert!(report.torn_bytes_truncated > 0);
        // Recovery re-ran the create path: the log starts with META again,
        // and it is durable — a further recovery sees it.
        assert_eq!(recovered.avmm().log().len(), 1);
        assert_eq!(recovered.avmm().log().entries()[0].kind, EntryKind::Meta);
        let mut recovered = recovered;
        recovered.run_slice(&HostClock::at(10), 10_000).unwrap();
        recovered.take_snapshot().unwrap();
        let live_log = recovered.avmm().log().entries().to_vec();
        drop(recovered);
        let (again, report) = recover_bob(survivor.reboot(), &image, small_cfg());
        assert_eq!(report.entries_recovered, live_log.len() as u64);
        assert_eq!(again.avmm().log().entries(), &live_log[..]);
    }

    #[test]
    fn crash_during_prune_compaction_recompacts_on_recovery() {
        // Reference: the same workload with an uninterrupted prune.
        let (mut clean, image) = provider_with_snapshots(SimStorage::new(), 4, small_cfg());
        clean.prune_snapshots_upto(2).unwrap();
        let compacted_blobs = clean.arena_blob_count();
        drop(clean);

        // Find a crash budget that lands after the PRUNE record is durable
        // but before compaction finishes rewriting the arenas.
        let mut exercised = false;
        for budget in (50..6000u64).step_by(200) {
            let storage = SimStorage::new();
            let (mut bob, _) = provider_with_snapshots(storage.clone(), 4, small_cfg());
            storage.set_crash_point(budget);
            if bob.prune_snapshots_upto(2).is_ok() {
                break; // budget outlived the whole prune; later ones will too
            }
            drop(bob);
            let (recovered, report) = recover_bob(storage.reboot(), &image, small_cfg());
            if report.base_snapshot_id != 2 {
                continue; // died before the PRUNE record became durable
            }
            exercised = true;
            // The interrupted compaction was re-run during recovery: the
            // arenas hold exactly what a clean prune leaves, no orphans.
            assert_eq!(report.arena_blobs, compacted_blobs);
            assert_eq!(recovered.arena_blob_count(), compacted_blobs);
            assert!(spot_check_via(&recovered, &image, 3, 1).consistent);
        }
        assert!(
            exercised,
            "no budget hit the PRUNE-durable, compaction-torn window"
        );
    }

    #[test]
    fn flipped_byte_in_sealed_history_is_tamper_not_torn() {
        let storage = SimStorage::new();
        let (bob, image) = provider_with_snapshots(storage.clone(), 2, small_cfg());
        drop(bob);
        // Flip one byte inside the first segment's first ENTRY record —
        // sealed, fsynced history, nowhere near the writable tail.
        let rebooted = storage.reboot();
        rebooted.corrupt("seg-000000", 60);
        let err = Provider::recover(
            rebooted,
            "bob",
            &image,
            &GuestRegistry::new(),
            key(1),
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
            small_cfg(),
        )
        .unwrap_err();
        assert!(err.is_tamper(), "got non-tamper error: {err}");
        assert!(matches!(err, PersistError::Store(StoreError::Tamper(_))));
    }

    #[test]
    fn prune_is_durable_and_compacts_arenas() {
        let storage = SimStorage::new();
        let (mut bob, image) = provider_with_snapshots(storage.clone(), 4, small_cfg());
        let blobs_before = bob.arena_blob_count();
        let freed = bob.prune_snapshots_upto(2).unwrap();
        assert!(freed > 0);
        assert!(bob.arena_blob_count() < blobs_before);
        let live_report = spot_check_via(&bob, &image, 3, 1);
        assert!(live_report.consistent);
        drop(bob);

        let (recovered, report) = recover_bob(storage.reboot(), &image, small_cfg());
        assert_eq!(report.base_snapshot_id, 2);
        assert_eq!(recovered.avmm().snapshots().base_id(), 2);
        assert_eq!(report.snapshots_recovered, 2);
        assert_eq!(spot_check_via(&recovered, &image, 3, 1), live_report);
        // Every blob the rebuilt store references survived compaction; a
        // post-recovery snapshot re-puts nothing.
        for digest in recovered.avmm().snapshots().pooled_digests() {
            assert!(recovered.arenas.contains(&digest));
        }
    }

    #[test]
    fn recovery_of_recovered_provider_is_stable() {
        let storage = SimStorage::new();
        let (bob, image) = provider_with_snapshots(storage.clone(), 2, small_cfg());
        drop(bob);
        let survivor = storage.reboot();
        let (mut once, _) = recover_bob(survivor.clone(), &image, small_cfg());
        // Keep working after recovery, then recover again from the result.
        once.take_snapshot().unwrap();
        let live_log = once.avmm().log().entries().to_vec();
        let live_report = spot_check_via(&once, &image, 1, 1);
        drop(once);
        let (twice, report) = recover_bob(survivor.reboot(), &image, small_cfg());
        assert_eq!(report.entries_recovered, live_log.len() as u64);
        assert_eq!(twice.avmm().log().entries(), &live_log[..]);
        assert_eq!(spot_check_via(&twice, &image, 1, 1), live_report);
    }

    /// The attestation envelope survives crash/recovery byte for byte: the
    /// recovered provider re-serves *the* envelope (same bytes, durable in
    /// the arenas), its audit endpoint answers challenges, and pruning's
    /// arena compaction never drops it.
    #[test]
    fn recovered_provider_serves_the_identical_envelope() {
        let storage = SimStorage::new();
        let (mut bob, image) = provider_with_snapshots(storage.clone(), 4, small_cfg());
        let live_envelope = bob.attestation_envelope_bytes().to_vec();
        let digest = bob.attestor().envelope_digest();
        assert!(bob.blob_persisted(&digest), "envelope is durable at create");
        bob.prune_snapshots_upto(2).unwrap();
        assert!(
            bob.blob_persisted(&digest),
            "compaction keeps the envelope live"
        );
        drop(bob);

        let (recovered, _) = recover_bob(storage.reboot(), &image, small_cfg());
        assert_eq!(recovered.attestation_envelope_bytes(), &live_envelope[..]);
        assert!(recovered.blob_persisted(&digest));

        // The recovered audit endpoint attests: challenge → verified quote.
        let policy = crate::attest::LaunchPolicy::new(
            &image,
            "bob",
            SignatureScheme::Rsa(512),
            key(1).verifying_key(),
        );
        let transport = crate::endpoint::DirectTransport::new(recovered.audit_server());
        let mut client = crate::endpoint::AuditClient::new(transport);
        let challenge = avm_wire::attest::AttestChallenge {
            nonce: crate::attest::challenge_nonce(1, 5_000),
            issued_at_us: 5_000,
        };
        let (verdict, envelope) = client.attest(&challenge, &policy, 6_000).unwrap();
        assert!(verdict.is_verified(), "verdict {verdict}");
        assert_eq!(
            avm_wire::Encode::encode_to_vec(&envelope.unwrap()),
            live_envelope
        );
    }

    #[test]
    fn per_entry_policy_syncs_more_than_per_seal() {
        let mk = |policy| PersistConfig {
            segments: SegmentConfig {
                sync_policy: policy,
                ..small_cfg().segments
            },
            arenas: small_cfg().arenas,
        };
        let (eager, _) = provider_with_snapshots(SimStorage::new(), 2, mk(SyncPolicy::PerEntry));
        let (lazy, _) = provider_with_snapshots(SimStorage::new(), 2, mk(SyncPolicy::PerSeal));
        let eager_stats = eager.segment_stats();
        let lazy_stats = lazy.segment_stats();
        assert!(eager_stats.syncs > lazy_stats.syncs);
        assert!(eager_stats.modelled_sync_micros > lazy_stats.modelled_sync_micros);
        assert_eq!(eager_stats.appended_bytes, lazy_stats.appended_bytes);
    }
}
