//! Errors and fault classifications for the AVMM.

use avm_log::LogVerifyError;
use avm_vm::VmError;

/// Why an audit concluded that a machine is faulty.
///
/// A `FaultReason` is the auditor's conclusion; it is carried inside
/// [`crate::audit::Evidence`] so a third party can re-derive it
/// independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultReason {
    /// The log segment failed syntactic verification (broken hash chain,
    /// mismatched authenticator, bad signature, missing acknowledgment).
    SyntacticFailure(String),
    /// The log claims the machine ran a different VM image than the reference.
    ImageMismatch {
        /// Digest recorded in the log's META entry (hex).
        recorded: String,
        /// Digest of the auditor's reference image (hex).
        reference: String,
    },
    /// Replay produced an output that is not in the log, or the log contains
    /// an output the reference execution does not produce.
    OutputDivergence {
        /// Log sequence number at which the divergence was detected.
        seq: u64,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A nondeterministic event could not be re-injected consistently
    /// (wrong step position, wrong event type requested by the guest).
    EventDivergence {
        /// Log sequence number at which the divergence was detected.
        seq: u64,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A snapshot hash recorded in the log does not match the replayed state.
    SnapshotMismatch {
        /// Log sequence number of the snapshot entry.
        seq: u64,
    },
    /// An injected packet does not cross-reference a logged RECV message
    /// (the machine forged or altered an incoming message, §4.4).
    CrossReferenceFailure {
        /// Log sequence number at which the check failed.
        seq: u64,
        /// Human-readable description.
        detail: String,
    },
    /// The log is malformed (undecodable entry content).
    MalformedLog {
        /// Log sequence number of the malformed entry.
        seq: u64,
    },
    /// The machine failed to produce a log segment it committed to
    /// (it is unresponsive or returned a corrupt segment).
    MissingLog,
    /// The replayed guest faulted (illegal instruction, memory error) where
    /// the log claims a successful execution.
    GuestFault {
        /// Log sequence number being replayed when the guest faulted.
        seq: u64,
        /// The guest fault.
        detail: String,
    },
}

impl core::fmt::Display for FaultReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultReason::SyntacticFailure(d) => write!(f, "syntactic check failed: {d}"),
            FaultReason::ImageMismatch {
                recorded,
                reference,
            } => {
                write!(
                    f,
                    "image mismatch: log records {recorded}, reference is {reference}"
                )
            }
            FaultReason::OutputDivergence { seq, detail } => {
                write!(f, "output divergence at seq {seq}: {detail}")
            }
            FaultReason::EventDivergence { seq, detail } => {
                write!(f, "event divergence at seq {seq}: {detail}")
            }
            FaultReason::SnapshotMismatch { seq } => {
                write!(f, "snapshot hash mismatch at seq {seq}")
            }
            FaultReason::CrossReferenceFailure { seq, detail } => {
                write!(f, "message cross-reference failure at seq {seq}: {detail}")
            }
            FaultReason::MalformedLog { seq } => write!(f, "malformed log entry at seq {seq}"),
            FaultReason::MissingLog => write!(f, "machine did not produce a committed log segment"),
            FaultReason::GuestFault { seq, detail } => {
                write!(f, "guest fault during replay at seq {seq}: {detail}")
            }
        }
    }
}

/// Errors from AVMM operations (distinct from *faults*, which are verdicts
/// about the audited machine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying virtual machine error.
    Vm(VmError),
    /// An incoming message failed signature verification and was rejected.
    BadMessageSignature,
    /// An acknowledgment did not match any outstanding message.
    UnknownAck,
    /// The log segment failed verification.
    LogVerify(LogVerifyError),
    /// A snapshot could not be materialized or restored.
    Snapshot(String),
    /// The recorder was asked to do something inconsistent with its
    /// configuration (e.g. snapshots while recording is disabled).
    InvalidConfiguration(String),
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Vm(e) => write!(f, "vm error: {e}"),
            CoreError::BadMessageSignature => write!(f, "incoming message signature invalid"),
            CoreError::UnknownAck => {
                write!(f, "acknowledgment does not match an outstanding message")
            }
            CoreError::LogVerify(e) => write!(f, "log verification failed: {e}"),
            CoreError::Snapshot(d) => write!(f, "snapshot error: {d}"),
            CoreError::InvalidConfiguration(d) => write!(f, "invalid configuration: {d}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<VmError> for CoreError {
    fn from(e: VmError) -> Self {
        CoreError::Vm(e)
    }
}

impl From<LogVerifyError> for CoreError {
    fn from(e: LogVerifyError) -> Self {
        CoreError::LogVerify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let f = FaultReason::OutputDivergence {
            seq: 12,
            detail: "payload mismatch".into(),
        };
        assert!(f.to_string().contains("seq 12"));
        assert!(FaultReason::MissingLog.to_string().contains("log"));
        let e = CoreError::Vm(VmError::Halted);
        assert!(e.to_string().contains("halted"));
        let e2: CoreError = LogVerifyError::EmptySegment.into();
        assert!(matches!(e2, CoreError::LogVerify(_)));
    }
}
